//! # edgeslice-repro
//!
//! Umbrella crate for the EdgeSlice (ICDCS 2020) reproduction: re-exports
//! the workspace crates and hosts the runnable examples under `examples/`
//! and the cross-crate integration tests under `tests/`.
//!
//! Start from [`edgeslice`] (the system) or run
//! `cargo run --release --example quickstart`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use edgeslice;
pub use edgeslice_netsim as netsim;
pub use edgeslice_nn as nn;
pub use edgeslice_optim as optim;
pub use edgeslice_rl as rl;

/// The arXiv identifier of the reproduced paper.
pub const PAPER_ARXIV_ID: &str = "2003.12911";

/// The paper's venue.
pub const PAPER_VENUE: &str = "IEEE ICDCS 2020";

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        let _ = crate::edgeslice::SystemConfig::prototype();
        assert_eq!(crate::PAPER_ARXIV_ID, "2003.12911");
    }
}
