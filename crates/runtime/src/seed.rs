//! Domain-separated RNG stream derivation.
//!
//! A parallel run is only reproducible if every worker owns its own
//! random stream: a shared generator would interleave draws in scheduling
//! order. Each worker therefore derives a private seed from the run's
//! master seed, a *domain* tag (orchestration vs training vs faults), and
//! its RA index. The derivation is a double SplitMix64 finalizer over the
//! mixed words — stateless, collision-resistant in practice, and
//! independent of how many workers exist or which thread runs them.

/// Domain tag for per-RA orchestration streams (traffic draws during
/// coordination rounds).
pub const DOMAIN_ORCH: u64 = 0x0E5E_0001_0000_0001;

/// Domain tag for per-RA offline-training streams.
pub const DOMAIN_TRAIN: u64 = 0x0E5E_0002_0000_0001;

/// Domain tag reserved for fault-schedule expansion (kept distinct from
/// the orchestration and training domains so a fault plan never perturbs
/// traffic or learning streams).
pub const DOMAIN_FAULTS: u64 = 0x0E5E_0003_0000_0001;

/// Domain tag for per-round re-derivation of a worker's stream: seeding
/// round `r` from `derive_stream_seed(worker_stream, DOMAIN_ROUND, r)`
/// makes a worker's RNG state a pure function of `(master, ra, round)` —
/// the property that lets a resumed or respawned worker rejoin mid-run
/// with bit-identical draws, without replaying every earlier round.
pub const DOMAIN_ROUND: u64 = 0x0E5E_0004_0000_0001;

/// Derives the seed of stream `index` in `domain` from `master`.
///
/// Properties relied on by the runtime:
/// * deterministic — a pure function of its three inputs;
/// * domain-separated — the same `(master, index)` yields unrelated
///   streams under different domains, so training draws never alias
///   orchestration draws;
/// * index-separated — adjacent indices yield unrelated seeds (SplitMix64
///   finalizers scramble single-bit input differences across all 64 bits).
#[must_use]
pub fn derive_stream_seed(master: u64, domain: u64, index: u64) -> u64 {
    let mut z = master
        ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    // Two rounds of the SplitMix64 finalizer.
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(
            derive_stream_seed(7, DOMAIN_ORCH, 3),
            derive_stream_seed(7, DOMAIN_ORCH, 3)
        );
    }

    #[test]
    fn domains_and_indices_separate_streams() {
        let base = derive_stream_seed(7, DOMAIN_ORCH, 0);
        assert_ne!(base, derive_stream_seed(7, DOMAIN_TRAIN, 0));
        assert_ne!(base, derive_stream_seed(7, DOMAIN_FAULTS, 0));
        assert_ne!(base, derive_stream_seed(7, DOMAIN_ROUND, 0));
        assert_ne!(base, derive_stream_seed(7, DOMAIN_ORCH, 1));
        assert_ne!(base, derive_stream_seed(8, DOMAIN_ORCH, 0));
    }

    #[test]
    fn no_collisions_over_a_small_grid() {
        let mut seen = std::collections::BTreeSet::new();
        for master in 0..8u64 {
            for domain in [DOMAIN_ORCH, DOMAIN_TRAIN, DOMAIN_FAULTS, DOMAIN_ROUND] {
                for index in 0..64u64 {
                    assert!(
                        seen.insert(derive_stream_seed(master, domain, index)),
                        "collision at ({master}, {domain:#x}, {index})"
                    );
                }
            }
        }
    }
}
