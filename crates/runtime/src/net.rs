//! The networked round driver: a [`NetCoordinator`] gathering reports
//! over per-RA [`Transport`] links, with ε-ORC registration and
//! lease-based failure detection, and the [`WorkerSession`] its peers
//! run.
//!
//! This is the multi-process counterpart of [`crate::Engine`]'s threaded
//! path. The round protocol is identical — broadcast [`CoordInfo`],
//! gather [`RaReport`]s under a deadline, hand the orchestration layer a
//! [`RoundTelemetry`] — but peers are *processes*: they register, hold a
//! lease, and can vanish without unwinding anything on the coordinator.
//!
//! Failure taxonomy (the acceptance contract of the lease design):
//!
//! - A **broken link** (EOF, send failure) is *not* a worker-down event.
//!   It stops the coordinator from waiting on that peer, is counted in
//!   [`NetStats::links_broken`], and leaves the lease running — exactly
//!   like ε-ORC, where a dead TCP connection proves nothing until the
//!   refresh deadline passes.
//! - A **lapsed lease** is the detection: [`RegistrationPlane::end_round`]
//!   raises [`crate::DownCause::LeaseExpired`] through the same
//!   [`WorkerDown`] machinery the in-process supervisor uses, so the
//!   degraded-ADMM layer absorbs a killed process exactly as it absorbs a
//!   panic.
//! - A **rejoin** (sign of life or re-registration after expiry) is
//!   counted and re-admitted; the worker re-syncs its state from the
//!   latest checkpoint before reconnecting.
//!
//! Determinism: gather waits for every *connected* peer (lease state
//! notwithstanding) until the round deadline, and lease accounting is
//! round-based — so a scripted fault plan produces the same telemetry
//! sequence over loopback and UDS. Wall-clock reads go through
//! [`Clock`]/[`RoundDeadline`]; this module performs none of its own.

use std::time::Duration;

use crate::clock::{Clock, RoundDeadline};
use crate::frame::{WireMsg, PROTOCOL_VERSION, REJECT_UNKNOWN_RA, REJECT_VERSION};
use crate::msg::{Control, CoordInfo, RaReport};
use crate::registration::{Lease, NodeInfo, RegStats, RegistrationPlane};
use crate::supervisor::{DownCause, WorkerDown};
use crate::transport::{LinkStats, Transport, TransportError};
use crate::RoundTelemetry;

/// Knobs for the networked coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Gather budget per round (the analogue of `Engine::with_deadline`).
    pub round_deadline: Duration,
    /// How long to wait for all workers to register before a run starts.
    pub registration_timeout: Duration,
    /// Budget for one peer's `Hello` during attach.
    pub handshake_timeout: Duration,
    /// Per-link receive slice while polling the gather set.
    pub poll_interval: Duration,
    /// Wall-clock lease backstop applied to every node (`None` for
    /// deterministic, rounds-only leases).
    pub wall_backstop: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            round_deadline: Duration::from_secs(30),
            registration_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(1),
            wall_backstop: None,
        }
    }
}

/// Cumulative network-plane counters for one run, folded into the
/// orchestration layer's supervision stats: the "network flaked but
/// recovered" / "worker died" distinction in numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frame sends retried after a transient failure (flaked, recovered).
    pub send_retries: usize,
    /// Frame sends abandoned after the retry budget (flaked, gave up).
    pub sends_abandoned: usize,
    /// Links that broke (EOF / terminal I/O) — *not* down events.
    pub links_broken: usize,
    /// Connections dropped during handshake (bad version, garbage).
    pub handshake_failures: usize,
    /// Leases that lapsed into [`DownCause::LeaseExpired`].
    pub leases_expired: usize,
    /// Nodes re-admitted after expiry or re-registration.
    pub rejoins: usize,
}

/// A source of freshly connected (not yet handshaken) peer transports —
/// the listener side of rejoin: a respawned worker process connects
/// mid-run and is absorbed at the next gather poll.
pub trait Acceptor<T: Transport>: Send {
    /// One pending peer, or `None` if nobody is knocking. Must not block.
    fn poll_accept(&mut self) -> Result<Option<T>, TransportError>;
}

/// An [`Acceptor`] fed by an `mpsc` channel — the loopback counterpart of
/// a listening socket, used by tests to inject rejoining peers.
#[derive(Debug)]
pub struct ChannelAcceptor<T> {
    rx: std::sync::mpsc::Receiver<T>,
}

/// A channel acceptor plus its feeding half.
pub fn channel_acceptor<T: Transport>() -> (std::sync::mpsc::Sender<T>, ChannelAcceptor<T>) {
    let (tx, rx) = std::sync::mpsc::channel();
    (tx, ChannelAcceptor { rx })
}

impl<T: Transport> Acceptor<T> for ChannelAcceptor<T> {
    fn poll_accept(&mut self) -> Result<Option<T>, TransportError> {
        match self.rx.try_recv() {
            Ok(t) => Ok(Some(t)),
            Err(_) => Ok(None),
        }
    }
}

/// An [`Acceptor`] over a listening socket ([`NetListener`]): the
/// initial-attach *and* rejoin path for real multi-process deployments —
/// a respawned worker process reconnects to the same socket and is
/// adopted at the next gather poll.
pub struct ListenerAcceptor {
    listener: crate::transport::NetListener,
    retry: crate::transport::RetryPolicy,
}

impl ListenerAcceptor {
    /// Wraps a bound listener; accepted streams get `retry` as their
    /// framed send policy.
    pub fn new(
        listener: crate::transport::NetListener,
        retry: crate::transport::RetryPolicy,
    ) -> Self {
        Self { listener, retry }
    }
}

impl Acceptor<crate::transport::FramedTransport> for ListenerAcceptor {
    fn poll_accept(&mut self) -> Result<Option<crate::transport::FramedTransport>, TransportError> {
        self.listener.poll_accept(self.retry)
    }
}

struct Link<T> {
    t: T,
    broken: bool,
}

/// The coordinator side of the networked round protocol: one link per RA,
/// a [`RegistrationPlane`], and gather/broadcast primitives producing the
/// same `(slots, telemetry)` shape as the in-process engine.
pub struct NetCoordinator<T: Transport> {
    links: Vec<Option<Link<T>>>,
    plane: RegistrationPlane,
    clock: Clock,
    config: NetConfig,
    acceptor: Option<Box<dyn Acceptor<T>>>,
    stats: NetStats,
}

impl<T: Transport> NetCoordinator<T> {
    /// A coordinator expecting `n_ras` workers.
    pub fn new(n_ras: usize, config: NetConfig, clock: Clock) -> Self {
        Self {
            links: (0..n_ras).map(|_| None).collect(),
            plane: RegistrationPlane::new(n_ras),
            clock,
            config,
            acceptor: None,
            stats: NetStats::default(),
        }
    }

    /// Installs the source of mid-run peer connections (rejoins).
    pub fn set_acceptor(&mut self, acceptor: Box<dyn Acceptor<T>>) {
        self.acceptor = Some(acceptor);
    }

    /// Adopts a freshly connected peer: serves its `Hello` (bounded by
    /// [`NetConfig::handshake_timeout`]), validates version and RA range,
    /// and installs the link — replacing any previous (dead) link for the
    /// same RA. Registration itself arrives as the peer's next frame and
    /// is absorbed during the normal message pump.
    pub fn adopt(&mut self, mut t: T) -> Result<usize, TransportError> {
        match t.recv_timeout(self.config.handshake_timeout)? {
            WireMsg::Hello { version, ra } if version == PROTOCOL_VERSION => {
                let ra = match usize::try_from(ra) {
                    Ok(ra) if ra < self.links.len() => ra,
                    _ => {
                        let _ = t.send(&WireMsg::Reject {
                            code: REJECT_UNKNOWN_RA,
                        });
                        return Err(TransportError::HandshakeProtocol("ra out of range"));
                    }
                };
                t.send(&WireMsg::HelloAck {
                    version: PROTOCOL_VERSION,
                })?;
                if let Some(slot) = self.links.get_mut(ra) {
                    *slot = Some(Link { t, broken: false });
                }
                Ok(ra)
            }
            WireMsg::Hello { version, .. } => {
                let _ = t.send(&WireMsg::Reject {
                    code: REJECT_VERSION,
                });
                Err(TransportError::VersionMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                })
            }
            WireMsg::HelloAck { .. }
            | WireMsg::Reject { .. }
            | WireMsg::Register { .. }
            | WireMsg::RegisterAck { .. }
            | WireMsg::Refresh { .. }
            | WireMsg::Round(_)
            | WireMsg::Report { .. }
            | WireMsg::Ctl(_)
            | WireMsg::Down { .. } => Err(TransportError::HandshakeProtocol("expected Hello")),
        }
    }

    /// Drains the acceptor, adopting every pending peer. Handshake
    /// failures are counted, never fatal: a garbage connection cannot
    /// stall the round loop.
    fn pump_joins(&mut self) {
        let Some(mut acceptor) = self.acceptor.take() else {
            return;
        };
        loop {
            match acceptor.poll_accept() {
                Ok(Some(t)) => {
                    if self.adopt(t).is_err() {
                        self.stats.handshake_failures += 1;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.stats.handshake_failures += 1;
                    break;
                }
            }
        }
        self.acceptor = Some(acceptor);
    }

    /// Waits (bounded) until every RA has registered. `first_round` is
    /// echoed in the `RegisterAck` so workers know where the run starts.
    pub fn wait_registered(&mut self, first_round: usize) -> Result<(), TransportError> {
        let deadline = RoundDeadline::after(self.config.registration_timeout);
        loop {
            self.pump_joins();
            for ra in 0..self.links.len() {
                if self.plane.is_registered(ra) {
                    continue;
                }
                self.poll_link(ra, first_round, first_round, None);
            }
            if self.plane.all_registered() {
                return Ok(());
            }
            if deadline.remaining().is_zero() {
                return Err(TransportError::HandshakeProtocol(
                    "registration deadline expired with workers missing",
                ));
            }
        }
    }

    /// RAs that have not registered (diagnostic for registration
    /// timeouts).
    pub fn missing(&self) -> Vec<usize> {
        self.plane.missing()
    }

    /// Broadcasts round `round` to every connected link. Send failures
    /// break the link (and count), but the lease — not the broken pipe —
    /// decides when the worker is down.
    fn send_round(&mut self, round: usize, zys: &[Vec<f64>], lifecycle: &[u8]) {
        for ra in 0..self.links.len() {
            let zy = zys.get(ra).cloned().unwrap_or_default();
            let Some(link) = self.links.get_mut(ra).and_then(Option::as_mut) else {
                continue;
            };
            if link.broken {
                continue;
            }
            let msg = WireMsg::Round(CoordInfo {
                round,
                ra,
                zy,
                lifecycle: lifecycle.to_vec(),
            });
            if link.t.send(&msg).is_err() {
                link.broken = true;
                self.stats.links_broken += 1;
            }
        }
    }

    /// Polls link `ra` once and absorbs whatever arrives. Reports for
    /// `round` settle into `gather` (when given); registrations are
    /// acked with `next_round`. Returns `true` if a frame was absorbed.
    fn poll_link(
        &mut self,
        ra: usize,
        round: usize,
        next_round: usize,
        gather: Option<&mut GatherState>,
    ) -> bool {
        let poll = self.config.poll_interval;
        let msg = {
            let Some(link) = self.links.get_mut(ra).and_then(Option::as_mut) else {
                return false;
            };
            if link.broken {
                return false;
            }
            match link.t.recv_timeout(poll) {
                Ok(msg) => msg,
                Err(TransportError::Timeout) => return false,
                Err(_) => {
                    // EOF, reset, or garbage bytes: the peer is gone or
                    // babbling. Break the link; the lease keeps running.
                    link.broken = true;
                    self.stats.links_broken += 1;
                    return false;
                }
            }
        };
        self.absorb(ra, msg, round, next_round, gather);
        true
    }

    /// Absorbs one frame from link `ra`.
    fn absorb(
        &mut self,
        ra: usize,
        msg: WireMsg,
        round: usize,
        next_round: usize,
        gather: Option<&mut GatherState>,
    ) {
        let now = self.clock.now();
        match msg {
            WireMsg::Register {
                ra: mra,
                capabilities,
                capacity,
                lease_rounds,
            } => {
                if usize::try_from(mra) != Ok(ra) {
                    if let Some(g) = gather {
                        g.telemetry.discarded_reports += 1;
                    }
                    return;
                }
                let info = NodeInfo {
                    ra,
                    capabilities,
                    capacity,
                };
                let lease = Lease {
                    deadline_rounds: usize::try_from(lease_rounds).unwrap_or(usize::MAX),
                    wall_backstop: self.config.wall_backstop,
                };
                let rejoin = matches!(
                    self.plane.register(info, lease, round, now),
                    Ok(crate::registration::Registration::Rejoin)
                );
                if let Some(link) = self.links.get_mut(ra).and_then(Option::as_mut) {
                    if link
                        .t
                        .send(&WireMsg::RegisterAck {
                            next_round: next_round as u64,
                            rejoin,
                        })
                        .is_err()
                    {
                        link.broken = true;
                        self.stats.links_broken += 1;
                    }
                }
            }
            WireMsg::Refresh { ra: mra, round: r } => {
                if usize::try_from(mra) == Ok(ra) {
                    let tagged = usize::try_from(r).unwrap_or(0);
                    let _ = self.plane.note_alive(ra, tagged, now);
                }
            }
            WireMsg::Report {
                ra: mra,
                round: r,
                deadline_missed,
                body,
            } => {
                let (Ok(mra), Ok(r)) = (usize::try_from(mra), usize::try_from(r)) else {
                    if let Some(g) = gather {
                        g.telemetry.discarded_reports += 1;
                    }
                    return;
                };
                if mra != ra {
                    if let Some(g) = gather {
                        g.telemetry.discarded_reports += 1;
                    }
                    return;
                }
                let _ = self.plane.note_alive(ra, r, now);
                let Some(g) = gather else {
                    return;
                };
                let open = g.slots.get(ra).is_some_and(Option::is_none)
                    && !g.down_marked.get(ra).copied().unwrap_or(true);
                if r == round && open {
                    if let Some(slot) = g.slots.get_mut(ra) {
                        *slot = Some(RaReport {
                            ra,
                            round: r,
                            deadline_missed,
                            body,
                        });
                    }
                } else {
                    // Stale (an earlier round's straggler) or duplicate:
                    // dropped but counted, mirroring the engine.
                    g.telemetry.discarded_reports += 1;
                }
            }
            WireMsg::Down {
                ra: mra,
                round: r,
                cause,
            } => {
                let (Ok(mra), Ok(r)) = (usize::try_from(mra), usize::try_from(r)) else {
                    return;
                };
                if mra != ra {
                    return;
                }
                // The process is alive (it caught its own panic): the
                // lease stays fresh, the round is a typed down — exactly
                // the in-process supervisor's semantics across the wire.
                let _ = self.plane.note_alive(ra, r, now);
                let Some(g) = gather else {
                    return;
                };
                let open = g.slots.get(ra).is_some_and(Option::is_none)
                    && !g.down_marked.get(ra).copied().unwrap_or(true);
                if r == round && open {
                    if let Some(m) = g.down_marked.get_mut(ra) {
                        *m = true;
                    }
                    g.telemetry.downs.push(WorkerDown {
                        ra,
                        round: r,
                        cause: DownCause::Panic(cause),
                    });
                } else {
                    g.telemetry.discarded_reports += 1;
                }
            }
            // Anything else on an established link is protocol noise.
            WireMsg::Hello { .. }
            | WireMsg::HelloAck { .. }
            | WireMsg::Reject { .. }
            | WireMsg::RegisterAck { .. }
            | WireMsg::Round(_)
            | WireMsg::Ctl(_) => {
                if let Some(g) = gather {
                    g.telemetry.discarded_reports += 1;
                }
            }
        }
    }

    /// Runs one full round: broadcast, gather under the round deadline,
    /// close the lease ledger. Returns the per-RA report slots and the
    /// round telemetry — the same shape [`crate::RoundCoordinator::collect`]
    /// consumes.
    pub fn run_round(
        &mut self,
        round: usize,
        zys: &[Vec<f64>],
        lifecycle: &[u8],
    ) -> (Vec<Option<RaReport<Vec<u8>>>>, RoundTelemetry) {
        let n = self.links.len();
        self.pump_joins();
        self.send_round(round, zys, lifecycle);
        let mut g = GatherState {
            slots: (0..n).map(|_| None).collect(),
            down_marked: vec![false; n],
            telemetry: RoundTelemetry::default(),
        };
        let deadline = RoundDeadline::after(self.config.round_deadline);
        loop {
            // Waits on every *connected* peer, lease state notwithstanding:
            // silence costs the deadline (observable, deterministic),
            // never a silent skip.
            let open: Vec<usize> = (0..n)
                .filter(|&ra| {
                    self.links
                        .get(ra)
                        .and_then(Option::as_ref)
                        .is_some_and(|l| !l.broken)
                        && g.slots.get(ra).is_some_and(Option::is_none)
                        && !g.down_marked.get(ra).copied().unwrap_or(true)
                })
                .collect();
            if open.is_empty() {
                break;
            }
            if deadline.remaining().is_zero() {
                g.telemetry.deadline_expired = true;
                break;
            }
            self.pump_joins();
            for ra in open {
                self.poll_link(ra, round, round + 1, Some(&mut g));
            }
        }
        let mut telemetry = g.telemetry;
        let mut lease_downs = self.plane.end_round(round, self.clock.now());
        telemetry.downs.append(&mut lease_downs);
        telemetry.downs.sort_by_key(|d| d.ra);
        self.harvest_link_stats();
        (g.slots, telemetry)
    }

    /// Sends `Shutdown` to every connected peer (best-effort).
    pub fn shutdown(&mut self) {
        for link in self.links.iter_mut().flatten() {
            if !link.broken {
                let _ = link.t.send(&WireMsg::Ctl(Control::Shutdown));
            }
        }
        self.harvest_link_stats();
    }

    fn harvest_link_stats(&mut self) {
        let mut agg = LinkStats::default();
        for link in self.links.iter_mut().flatten() {
            agg.absorb(link.t.take_stats());
        }
        self.stats.send_retries += agg.retries;
        self.stats.sends_abandoned += agg.abandoned;
    }

    /// Cumulative network + registration counters.
    pub fn stats(&self) -> NetStats {
        let RegStats {
            leases_expired,
            rejoins,
        } = self.plane.stats();
        NetStats {
            leases_expired,
            rejoins,
            ..self.stats
        }
    }
}

struct GatherState {
    slots: Vec<Option<RaReport<Vec<u8>>>>,
    down_marked: Vec<bool>,
    telemetry: RoundTelemetry,
}

/// What a worker's serve loop receives from the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerCommand {
    /// Serve one round.
    Round(CoordInfo),
    /// A control message (checkpoint / rejoin / shutdown).
    Control(Control),
}

/// The coordinator's answer to a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerAck {
    /// The next round the coordinator will broadcast.
    pub next_round: usize,
    /// Whether the coordinator sees this registration as a rejoin.
    pub rejoin: bool,
}

/// The worker side of the networked protocol: handshake + registration
/// at construction, then a command pump with automatic lease refreshes
/// while idle.
pub struct WorkerSession<T: Transport> {
    t: T,
    ra: usize,
    refresh_interval: Duration,
    auto_refresh: bool,
    /// The last round this worker processed — the round tag on refreshes,
    /// so liveness accounting never runs ahead of actual service.
    last_round: usize,
}

impl<T: Transport> WorkerSession<T> {
    /// Performs the client handshake and registration over `t`.
    pub fn establish(
        mut t: T,
        info: NodeInfo,
        lease: Lease,
        timeout: Duration,
        refresh_interval: Duration,
    ) -> Result<(Self, WorkerAck), TransportError> {
        crate::transport::client_handshake(&mut t, info.ra, timeout)?;
        t.send(&WireMsg::Register {
            ra: info.ra as u64,
            capabilities: info.capabilities,
            capacity: info.capacity,
            lease_rounds: lease.deadline_rounds as u64,
        })?;
        let deadline = RoundDeadline::after(timeout);
        loop {
            let remaining = deadline.remaining();
            if remaining.is_zero() {
                return Err(TransportError::Timeout);
            }
            match t.recv_timeout(remaining)? {
                WireMsg::RegisterAck { next_round, rejoin } => {
                    let next_round = usize::try_from(next_round).unwrap_or(0);
                    return Ok((
                        Self {
                            t,
                            ra: info.ra,
                            refresh_interval,
                            auto_refresh: true,
                            last_round: next_round.saturating_sub(1),
                        },
                        WorkerAck { next_round, rejoin },
                    ));
                }
                WireMsg::Reject { code } => return Err(TransportError::Rejected { code }),
                // Unrelated frame before the ack: keep waiting.
                WireMsg::Hello { .. }
                | WireMsg::HelloAck { .. }
                | WireMsg::Register { .. }
                | WireMsg::Refresh { .. }
                | WireMsg::Round(_)
                | WireMsg::Report { .. }
                | WireMsg::Ctl(_)
                | WireMsg::Down { .. } => {}
            }
        }
    }

    /// Enables/disables idle lease refreshes. A scripted-silent worker
    /// turns this off to *become* a lease expiry.
    pub fn set_auto_refresh(&mut self, on: bool) {
        self.auto_refresh = on;
    }

    /// Waits (bounded by `idle_budget`) for the next command, refreshing
    /// the lease every [`refresh_interval`](WorkerSession::establish)
    /// while idle.
    pub fn next_command(&mut self, idle_budget: Duration) -> Result<WorkerCommand, TransportError> {
        let deadline = RoundDeadline::after(idle_budget);
        loop {
            let remaining = deadline.remaining();
            if remaining.is_zero() {
                return Err(TransportError::Timeout);
            }
            let slice = self.refresh_interval.min(remaining);
            match self.t.recv_timeout(slice) {
                Ok(WireMsg::Round(info)) => {
                    self.last_round = info.round;
                    return Ok(WorkerCommand::Round(info));
                }
                Ok(WireMsg::Ctl(ctl)) => return Ok(WorkerCommand::Control(ctl)),
                // Duplicate ack / noise: ignore.
                Ok(WireMsg::Hello { .. })
                | Ok(WireMsg::HelloAck { .. })
                | Ok(WireMsg::Reject { .. })
                | Ok(WireMsg::Register { .. })
                | Ok(WireMsg::RegisterAck { .. })
                | Ok(WireMsg::Refresh { .. })
                | Ok(WireMsg::Report { .. })
                | Ok(WireMsg::Down { .. }) => {}
                Err(TransportError::Timeout) => {
                    if self.auto_refresh {
                        self.refresh()?;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends an explicit lease refresh tagged with the last served round.
    pub fn refresh(&mut self) -> Result<(), TransportError> {
        self.t.send(&WireMsg::Refresh {
            ra: self.ra as u64,
            round: self.last_round as u64,
        })
    }

    /// Reports one round's outcome (`body` already encoded by the
    /// orchestration layer; `None` for a dark round).
    pub fn report(
        &mut self,
        round: usize,
        deadline_missed: bool,
        body: Option<Vec<u8>>,
    ) -> Result<(), TransportError> {
        self.t.send(&WireMsg::Report {
            ra: self.ra as u64,
            round: round as u64,
            deadline_missed,
            body,
        })
    }

    /// Reports a caught panic for `round` — the wire form of the
    /// supervisor's down event.
    pub fn down(&mut self, round: usize, cause: String) -> Result<(), TransportError> {
        self.t.send(&WireMsg::Down {
            ra: self.ra as u64,
            round: round as u64,
            cause,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registration::caps;
    use crate::transport::{loopback_pair, LoopbackTransport};

    fn test_config() -> NetConfig {
        NetConfig {
            round_deadline: Duration::from_millis(200),
            registration_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(1),
            wall_backstop: None,
        }
    }

    fn node(ra: usize) -> NodeInfo {
        NodeInfo {
            ra,
            capabilities: caps::TARO | caps::RESYNC,
            capacity: 2.0,
        }
    }

    /// A scripted worker thread: serves rounds, optionally going silent
    /// over a round window, until shutdown or disconnect.
    fn spawn_worker(
        t: LoopbackTransport,
        ra: usize,
        lease_rounds: usize,
        silent: std::ops::Range<usize>,
    ) -> std::thread::JoinHandle<usize> {
        std::thread::spawn(move || {
            let lease = Lease {
                deadline_rounds: lease_rounds,
                wall_backstop: None,
            };
            let (mut sess, _ack) = WorkerSession::establish(
                t,
                node(ra),
                lease,
                Duration::from_secs(5),
                Duration::from_millis(20),
            )
            .expect("establish");
            let mut served = 0usize;
            loop {
                match sess.next_command(Duration::from_secs(10)) {
                    Ok(WorkerCommand::Round(info)) => {
                        if silent.contains(&info.round) {
                            sess.set_auto_refresh(false);
                            continue;
                        }
                        sess.set_auto_refresh(true);
                        served += 1;
                        sess.report(info.round, false, Some(vec![ra as u8, info.round as u8]))
                            .expect("report");
                    }
                    Ok(WorkerCommand::Control(Control::Shutdown)) => return served,
                    Ok(WorkerCommand::Control(_)) => {}
                    Err(TransportError::Disconnected) => return served,
                    Err(e) => panic!("worker {ra}: {e}"),
                }
            }
        })
    }

    #[test]
    fn healthy_round_trip_over_loopback() {
        let mut net = NetCoordinator::new(2, test_config(), Clock::wall());
        let mut handles = Vec::new();
        for ra in 0..2 {
            let (coord_side, worker_side) = loopback_pair();
            handles.push(spawn_worker(worker_side, ra, 1, 0..0));
            net.adopt(coord_side).expect("adopt");
        }
        net.wait_registered(0).expect("registered");
        for round in 0..4 {
            let zys: Vec<Vec<f64>> = (0..2).map(|j| vec![round as f64, j as f64]).collect();
            let (slots, telemetry) = net.run_round(round, &zys, &[]);
            assert!(telemetry.downs.is_empty(), "round {round}: {telemetry:?}");
            assert!(!telemetry.deadline_expired);
            for (ra, slot) in slots.iter().enumerate() {
                let rep = slot.as_ref().expect("report present");
                assert_eq!(rep.ra, ra);
                assert_eq!(rep.round, round);
                assert_eq!(rep.body.as_deref(), Some(&[ra as u8, round as u8][..]));
            }
        }
        net.shutdown();
        for (ra, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().expect("join"), 4, "worker {ra} served all rounds");
        }
        let stats = net.stats();
        assert_eq!(stats.leases_expired, 0);
        assert_eq!(stats.links_broken, 0);
    }

    #[test]
    fn scripted_silence_expires_the_lease_then_rejoins() {
        let mut net = NetCoordinator::new(2, test_config(), Clock::wall());
        let mut handles = Vec::new();
        for ra in 0..2 {
            let (coord_side, worker_side) = loopback_pair();
            // RA 1 ignores rounds 1..3 with a 0-round lease: expiry at
            // the end of round 1, rejoin when it answers round 3.
            let silent = if ra == 1 { 1..3 } else { 0..0 };
            handles.push(spawn_worker(worker_side, ra, 0, silent));
            net.adopt(coord_side).expect("adopt");
        }
        net.wait_registered(0).expect("registered");
        let mut lease_downs = Vec::new();
        for round in 0..5 {
            let zys: Vec<Vec<f64>> = (0..2).map(|_| vec![0.0]).collect();
            let (slots, telemetry) = net.run_round(round, &zys, &[]);
            for d in &telemetry.downs {
                if matches!(d.cause, DownCause::LeaseExpired { .. }) {
                    lease_downs.push((d.ra, d.round));
                }
            }
            let ra1_present = slots.get(1).is_some_and(Option::is_some);
            match round {
                0 | 3 | 4 => assert!(ra1_present, "round {round}: RA 1 should report"),
                _ => assert!(!ra1_present, "round {round}: RA 1 is silent"),
            }
        }
        net.shutdown();
        for h in handles {
            h.join().expect("join");
        }
        // Lease (deadline 0) lapses at round 1 and re-reports at round 2;
        // the round-3 report is the rejoin.
        assert_eq!(lease_downs, vec![(1, 1), (1, 2)]);
        let stats = net.stats();
        assert_eq!(stats.leases_expired, 1);
        assert_eq!(stats.rejoins, 1);
    }

    #[test]
    fn dead_peer_is_detected_by_lease_not_disconnect() {
        let mut net = NetCoordinator::new(2, test_config(), Clock::wall());
        let (coord0, worker0) = loopback_pair();
        let h0 = spawn_worker(worker0, 0, 1, 0..0);
        net.adopt(coord0).expect("adopt 0");
        // Worker 1 registers, serves round 0, then its process "dies"
        // (the transport drops).
        let (coord1, worker1) = loopback_pair();
        let h1 = std::thread::spawn(move || {
            let (mut sess, _ack) = WorkerSession::establish(
                worker1,
                node(1),
                Lease {
                    deadline_rounds: 1,
                    wall_backstop: None,
                },
                Duration::from_secs(5),
                Duration::from_millis(20),
            )
            .expect("establish");
            match sess.next_command(Duration::from_secs(10)) {
                Ok(WorkerCommand::Round(info)) => {
                    sess.report(info.round, false, Some(vec![9]))
                        .expect("report");
                }
                other => panic!("unexpected: {other:?}"),
            }
            // drop(sess): SIGKILL stand-in — no goodbye, no shutdown.
        });
        net.adopt(coord1).expect("adopt 1");
        net.wait_registered(0).expect("registered");
        let mut downs = Vec::new();
        for round in 0..4 {
            let zys: Vec<Vec<f64>> = (0..2).map(|_| vec![0.0]).collect();
            let (_slots, telemetry) = net.run_round(round, &zys, &[]);
            downs.extend(telemetry.downs);
        }
        net.shutdown();
        h0.join().expect("join 0");
        h1.join().expect("join 1");
        // The death shows up as a broken link immediately, but the *down*
        // event is the lease: last_ok 0, deadline 1 → expired at round 2.
        let stats = net.stats();
        assert!(stats.links_broken >= 1, "broken link must be counted");
        assert_eq!(stats.leases_expired, 1);
        assert!(downs
            .iter()
            .all(|d| matches!(d.cause, DownCause::LeaseExpired { .. })));
        assert_eq!(
            downs.iter().map(|d| (d.ra, d.round)).collect::<Vec<_>>(),
            vec![(1, 2), (1, 3)],
            "expiry at round 2, re-reported at 3 — never a Disconnected down"
        );
    }

    #[test]
    fn respawned_peer_rejoins_through_the_acceptor() {
        let mut net = NetCoordinator::new(1, test_config(), Clock::wall());
        let (join_tx, acceptor) = channel_acceptor::<LoopbackTransport>();
        net.set_acceptor(Box::new(acceptor));
        let (coord0, worker0) = loopback_pair();
        let h0 = std::thread::spawn(move || {
            let (mut sess, ack) = WorkerSession::establish(
                worker0,
                node(0),
                Lease {
                    deadline_rounds: 0,
                    wall_backstop: None,
                },
                Duration::from_secs(5),
                Duration::from_millis(20),
            )
            .expect("establish");
            assert!(!ack.rejoin);
            // Serve exactly one round, then die without a word.
            match sess.next_command(Duration::from_secs(10)) {
                Ok(WorkerCommand::Round(info)) => {
                    sess.report(info.round, false, None).expect("report")
                }
                other => panic!("unexpected: {other:?}"),
            }
        });
        net.adopt(coord0).expect("adopt");
        net.wait_registered(0).expect("registered");
        let zys = vec![vec![0.0]];
        let (_s, t0) = net.run_round(0, &zys, &[]);
        assert!(t0.downs.is_empty());
        h0.join().expect("join 0");
        // Round 1: the peer is gone; its lease (deadline 0) expires.
        let (_s, t1) = net.run_round(1, &zys, &[]);
        assert!(t1
            .downs
            .iter()
            .any(|d| matches!(d.cause, DownCause::LeaseExpired { .. })));
        // Respawn: a new process connects through the acceptor and
        // re-registers — the ack tells it this is a rejoin.
        let (coord_new, worker_new) = loopback_pair();
        let h1 = std::thread::spawn(move || {
            let (mut sess, ack) = WorkerSession::establish(
                worker_new,
                node(0),
                Lease::default(),
                Duration::from_secs(5),
                Duration::from_millis(20),
            )
            .expect("re-establish");
            assert!(ack.rejoin, "coordinator must flag the rejoin");
            let mut served = 0;
            loop {
                match sess.next_command(Duration::from_secs(10)) {
                    Ok(WorkerCommand::Round(info)) => {
                        served += 1;
                        sess.report(info.round, false, Some(vec![7]))
                            .expect("report");
                    }
                    Ok(WorkerCommand::Control(Control::Shutdown)) => return served,
                    Ok(_) => {}
                    Err(TransportError::Disconnected) => return served,
                    Err(e) => panic!("rejoined worker: {e}"),
                }
            }
        });
        join_tx.send(coord_new).expect("inject rejoiner");
        let (slots, _t2) = net.run_round(2, &zys, &[]);
        // The rejoiner registered during round 2's gather; it serves
        // from round 3 on.
        let (slots3, t3) = net.run_round(3, &zys, &[]);
        assert!(t3.downs.is_empty(), "rejoined: no more lease downs: {t3:?}");
        assert!(slots3.first().is_some_and(Option::is_some));
        drop(slots);
        net.shutdown();
        assert!(h1.join().expect("join rejoiner") >= 1);
        let stats = net.stats();
        assert_eq!(stats.leases_expired, 1);
        assert!(stats.rejoins >= 1);
    }
}
