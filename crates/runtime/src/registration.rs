//! The registration plane: ε-ORC-style node registration with
//! lease-based failure detection.
//!
//! Workers register `{ra_id, capabilities, capacity}` with the
//! coordinator and *declare their own failure deadline*: a lease measured
//! in coordination rounds. Any round-tagged sign of life (a report, or an
//! explicit refresh carrying the last round the worker served) renews the
//! lease; a node whose lease lapses is raised through the existing
//! [`WorkerDown`]/[`DownCause`] machinery as
//! [`DownCause::LeaseExpired`] — so the supervisor and degraded-ADMM
//! layers absorb a vanished *process* exactly as they absorb an
//! in-process panic. A node that registers again (or simply starts
//! answering again) after expiry is a *rejoin*, counted and re-admitted.
//!
//! Determinism: lease accounting is **round-based**, a pure function of
//! which round-tagged messages arrived — so for a scripted fault plan the
//! expiry round is identical across loopback and socket transports, and
//! byte-identical `RunReport`s fall out. A wall-clock *backstop*
//! ([`Lease::wall_backstop`]) exists for deployments where rounds
//! themselves can stall; it reads time only through the [`Clock`]
//! abstraction, so tests drive it with a mock and never sleep.

use std::time::Duration;

use crate::clock::TimePoint;
use crate::supervisor::{DownCause, WorkerDown};

/// Capability bits a node advertises in its registration.
pub mod caps {
    /// Serves a learned (DDPG) orchestration policy.
    pub const LEARNED: u32 = 1 << 0;
    /// Serves the TARO baseline policy.
    pub const TARO: u32 = 1 << 1;
    /// Can re-sync its state from a shared checkpoint store on rejoin.
    pub const RESYNC: u32 = 1 << 2;
}

/// What a node announces about itself at registration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeInfo {
    /// The RA index this node serves.
    pub ra: usize,
    /// Capability bitmask (see [`caps`]).
    pub capabilities: u32,
    /// Advertised capacity (slices servable).
    pub capacity: f64,
}

/// A node's self-declared failure deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Rounds the node may stay silent past its last round-tagged sign of
    /// life before it is declared down. `1` means: missing two
    /// consecutive rounds is fatal, missing one is tolerated.
    pub deadline_rounds: usize,
    /// Optional wall-clock backstop: silence longer than this is fatal
    /// even if rounds are not advancing. `None` disables the backstop
    /// (deterministic test configurations).
    pub wall_backstop: Option<Duration>,
}

impl Default for Lease {
    fn default() -> Self {
        Self {
            deadline_rounds: 2,
            wall_backstop: None,
        }
    }
}

/// A typed registration-plane error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistrationError {
    /// The RA index is outside the plane's configured range.
    UnknownRa {
        /// The offending RA.
        ra: usize,
        /// The configured worker count.
        n_ras: usize,
    },
    /// A liveness note arrived for a node that never registered.
    NotRegistered {
        /// The offending RA.
        ra: usize,
    },
}

impl std::fmt::Display for RegistrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistrationError::UnknownRa { ra, n_ras } => {
                write!(f, "ra {ra} outside the registered range (n_ras {n_ras})")
            }
            RegistrationError::NotRegistered { ra } => {
                write!(f, "ra {ra} sent liveness before registering")
            }
        }
    }
}

impl std::error::Error for RegistrationError {}

/// How a registration landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Registration {
    /// First registration for this slot.
    Fresh,
    /// The slot was registered before (live or expired); the node is
    /// re-joining — after a kill, a restart, or a lease lapse.
    Rejoin,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Unregistered,
    Live,
    Expired,
}

#[derive(Debug, Clone)]
struct Slot {
    state: NodeState,
    info: Option<NodeInfo>,
    lease: Lease,
    /// Highest round covered by a round-tagged sign of life (report or
    /// refresh). Registration at round `r` counts as covering `r`.
    last_ok_round: usize,
    /// Wall time of the last *any* sign of life (backstop input only).
    last_alive: TimePoint,
    /// Rounds missed at the moment the lease expired (for the down event).
    missed_at_expiry: usize,
}

/// Cumulative registration-plane counters, folded into the run's
/// supervision stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegStats {
    /// Leases that lapsed into [`DownCause::LeaseExpired`].
    pub leases_expired: usize,
    /// Expired or previously-registered nodes that came back.
    pub rejoins: usize,
}

/// The coordinator-side registration ledger: one slot per RA, no
/// wall-clock reads of its own — callers pass [`TimePoint`]s from a
/// [`crate::clock::Clock`].
#[derive(Debug)]
pub struct RegistrationPlane {
    slots: Vec<Slot>,
    stats: RegStats,
}

impl RegistrationPlane {
    /// A plane expecting `n_ras` workers.
    pub fn new(n_ras: usize) -> Self {
        Self {
            slots: (0..n_ras)
                .map(|_| Slot {
                    state: NodeState::Unregistered,
                    info: None,
                    lease: Lease::default(),
                    last_ok_round: 0,
                    last_alive: TimePoint::from_millis(0),
                    missed_at_expiry: 0,
                })
                .collect(),
            stats: RegStats::default(),
        }
    }

    /// Records a registration arriving during `round` at wall time `now`.
    pub fn register(
        &mut self,
        info: NodeInfo,
        lease: Lease,
        round: usize,
        now: TimePoint,
    ) -> Result<Registration, RegistrationError> {
        let n_ras = self.slots.len();
        let slot = self
            .slots
            .get_mut(info.ra)
            .ok_or(RegistrationError::UnknownRa { ra: info.ra, n_ras })?;
        let kind = match slot.state {
            NodeState::Unregistered => Registration::Fresh,
            NodeState::Live | NodeState::Expired => {
                self.stats.rejoins += 1;
                Registration::Rejoin
            }
        };
        slot.state = NodeState::Live;
        slot.info = Some(info);
        slot.lease = lease;
        slot.last_ok_round = round;
        slot.last_alive = now;
        Ok(kind)
    }

    /// Records a round-tagged sign of life from `ra`: a report for
    /// `round`, or a refresh carrying the last round the worker served.
    /// A sign of life from an expired node re-admits it (a rejoin).
    pub fn note_alive(
        &mut self,
        ra: usize,
        round: usize,
        now: TimePoint,
    ) -> Result<(), RegistrationError> {
        let n_ras = self.slots.len();
        let slot = self
            .slots
            .get_mut(ra)
            .ok_or(RegistrationError::UnknownRa { ra, n_ras })?;
        if slot.state == NodeState::Unregistered {
            return Err(RegistrationError::NotRegistered { ra });
        }
        if slot.state == NodeState::Expired {
            slot.state = NodeState::Live;
            self.stats.rejoins += 1;
        }
        slot.last_ok_round = slot.last_ok_round.max(round);
        slot.last_alive = now;
        Ok(())
    }

    /// Closes round `round`: checks every registered node's lease and
    /// returns the typed down events for this round — newly expired
    /// leases *and* still-expired nodes (failure is re-reported every
    /// round it persists, mirroring [`DownCause::RestartsExhausted`]).
    /// Events are sorted by RA.
    pub fn end_round(&mut self, round: usize, now: TimePoint) -> Vec<WorkerDown> {
        let mut downs = Vec::new();
        for (ra, slot) in self.slots.iter_mut().enumerate() {
            match slot.state {
                NodeState::Unregistered => {}
                NodeState::Live => {
                    let missed = round.saturating_sub(slot.last_ok_round);
                    let wall_lapsed = slot.lease.wall_backstop.is_some_and(|limit| {
                        let ms = u64::try_from(limit.as_millis()).unwrap_or(u64::MAX);
                        now.millis_since(slot.last_alive) > ms
                    });
                    if missed > slot.lease.deadline_rounds || wall_lapsed {
                        slot.state = NodeState::Expired;
                        slot.missed_at_expiry = missed;
                        self.stats.leases_expired += 1;
                        downs.push(WorkerDown {
                            ra,
                            round,
                            cause: DownCause::LeaseExpired {
                                missed_rounds: missed,
                                budget_rounds: slot.lease.deadline_rounds,
                            },
                        });
                    }
                }
                NodeState::Expired => downs.push(WorkerDown {
                    ra,
                    round,
                    cause: DownCause::LeaseExpired {
                        missed_rounds: round.saturating_sub(slot.last_ok_round),
                        budget_rounds: slot.lease.deadline_rounds,
                    },
                }),
            }
        }
        downs
    }

    /// Whether `ra` is registered and its lease is current.
    pub fn is_live(&self, ra: usize) -> bool {
        self.slots
            .get(ra)
            .is_some_and(|s| s.state == NodeState::Live)
    }

    /// Whether `ra` has ever registered (live or expired).
    pub fn is_registered(&self, ra: usize) -> bool {
        self.slots
            .get(ra)
            .is_some_and(|s| s.state != NodeState::Unregistered)
    }

    /// Whether every slot has registered.
    pub fn all_registered(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.state != NodeState::Unregistered)
    }

    /// RAs that have never registered.
    pub fn missing(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == NodeState::Unregistered)
            .map(|(ra, _)| ra)
            .collect()
    }

    /// The registered node info for `ra`, if any.
    pub fn info(&self, ra: usize) -> Option<NodeInfo> {
        self.slots.get(ra).and_then(|s| s.info)
    }

    /// Cumulative plane counters.
    pub fn stats(&self) -> RegStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;

    fn node(ra: usize) -> NodeInfo {
        NodeInfo {
            ra,
            capabilities: caps::TARO | caps::RESYNC,
            capacity: 2.0,
        }
    }

    fn lease(rounds: usize) -> Lease {
        Lease {
            deadline_rounds: rounds,
            wall_backstop: None,
        }
    }

    #[test]
    fn silent_node_expires_exactly_at_its_declared_deadline() {
        let (clock, _mock) = Clock::mock();
        let mut plane = RegistrationPlane::new(2);
        let now = clock.now();
        plane.register(node(0), lease(1), 0, now).unwrap();
        plane.register(node(1), lease(1), 0, now).unwrap();
        // RA 0 reports every round; RA 1 goes silent after round 1.
        for round in 0..5 {
            plane.note_alive(0, round, now).unwrap();
            if round <= 1 {
                plane.note_alive(1, round, now).unwrap();
            }
            let downs = plane.end_round(round, now);
            match round {
                0..=2 => assert!(downs.is_empty(), "round {round}: {downs:?}"),
                // last_ok 1, deadline 1 → missed 2 > 1 first at round 3.
                _ => {
                    assert_eq!(downs.len(), 1, "round {round}");
                    assert_eq!(downs[0].ra, 1);
                    assert_eq!(downs[0].round, round);
                    assert!(matches!(
                        downs[0].cause,
                        DownCause::LeaseExpired {
                            budget_rounds: 1,
                            ..
                        }
                    ));
                }
            }
        }
        assert_eq!(plane.stats().leases_expired, 1, "expiry counted once");
        assert!(!plane.is_live(1));
        assert!(plane.is_live(0));
    }

    #[test]
    fn sign_of_life_after_expiry_is_a_rejoin() {
        let (clock, _mock) = Clock::mock();
        let now = clock.now();
        let mut plane = RegistrationPlane::new(1);
        plane.register(node(0), lease(0), 0, now).unwrap();
        // Deadline 0: any missed round is fatal.
        assert_eq!(plane.end_round(1, now).len(), 1);
        assert!(!plane.is_live(0));
        // The node answers again in round 3: re-admitted, counted.
        plane.note_alive(0, 3, now).unwrap();
        assert!(plane.is_live(0));
        assert_eq!(plane.stats().rejoins, 1);
        assert!(plane.end_round(3, now).is_empty());
    }

    #[test]
    fn re_registration_is_a_rejoin_with_a_fresh_lease() {
        let (clock, _mock) = Clock::mock();
        let now = clock.now();
        let mut plane = RegistrationPlane::new(1);
        plane.register(node(0), lease(0), 0, now).unwrap();
        assert_eq!(plane.end_round(2, now).len(), 1);
        // A respawned process registers anew at round 4.
        let kind = plane.register(node(0), lease(2), 4, now).unwrap();
        assert_eq!(kind, Registration::Rejoin);
        assert_eq!(plane.stats().rejoins, 1);
        assert!(plane.end_round(4, now).is_empty());
        assert!(plane.end_round(5, now).is_empty(), "fresh lease holds");
    }

    #[test]
    fn wall_backstop_fires_on_mock_time_without_sleeping() {
        let (clock, mock) = Clock::mock();
        let mut plane = RegistrationPlane::new(1);
        let lease = Lease {
            deadline_rounds: usize::MAX, // rounds never expire it
            wall_backstop: Some(Duration::from_millis(500)),
        };
        plane.register(node(0), lease, 0, clock.now()).unwrap();
        // 400 ms of silence: still within the backstop.
        mock.advance(Duration::from_millis(400));
        assert!(plane.end_round(1, clock.now()).is_empty());
        // 200 more: the backstop fires — no real sleeping involved.
        mock.advance(Duration::from_millis(200));
        let downs = plane.end_round(2, clock.now());
        assert_eq!(downs.len(), 1);
        assert!(matches!(downs[0].cause, DownCause::LeaseExpired { .. }));
        // A refresh resets the backstop.
        plane.note_alive(0, 3, clock.now()).unwrap();
        mock.advance(Duration::from_millis(400));
        assert!(plane.end_round(4, clock.now()).is_empty());
    }

    #[test]
    fn stale_round_tags_do_not_extend_the_lease() {
        let (clock, _mock) = Clock::mock();
        let now = clock.now();
        let mut plane = RegistrationPlane::new(1);
        plane.register(node(0), lease(1), 0, now).unwrap();
        plane.note_alive(0, 3, now).unwrap();
        // An in-flight refresh tagged with an *older* round must not
        // move liveness backwards or forwards.
        plane.note_alive(0, 1, now).unwrap();
        assert!(plane.end_round(4, now).is_empty());
        assert_eq!(plane.end_round(5, now).len(), 1, "missed 2 > deadline 1");
    }

    #[test]
    fn unknown_and_unregistered_ras_are_typed_errors() {
        let (clock, _mock) = Clock::mock();
        let now = clock.now();
        let mut plane = RegistrationPlane::new(2);
        assert_eq!(
            plane.register(node(7), lease(1), 0, now),
            Err(RegistrationError::UnknownRa { ra: 7, n_ras: 2 })
        );
        assert_eq!(
            plane.note_alive(0, 0, now),
            Err(RegistrationError::NotRegistered { ra: 0 })
        );
        assert!(!plane.all_registered());
        assert_eq!(plane.missing(), vec![0, 1]);
        plane.register(node(0), lease(1), 0, now).unwrap();
        plane.register(node(1), lease(1), 0, now).unwrap();
        assert!(plane.all_registered());
        assert_eq!(plane.info(1).map(|i| i.ra), Some(1));
    }
}
