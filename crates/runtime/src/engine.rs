//! The round-based executor: a coordinator task driving RA workers either
//! inline (sequential) or across worker threads with typed `mpsc`
//! channels, per-round deadlines, and panic supervision.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use crate::clock::RoundDeadline;
use crate::msg::{Control, CoordInfo, RaReport};
use crate::supervisor::{DownCause, Supervisor, SupervisorConfig, WorkerDown};
use crate::Scheduler;

/// One resource autonomy's execution state: everything the RA needs to run
/// a coordination round locally (policy, environment, private RNG stream,
/// fault view, checkpoints). Implementations must be [`Send`] so a worker
/// can live on its own thread; they must *not* share mutable state with
/// any other worker — cross-RA communication goes through the coordinator.
pub trait RoundWorker: Send {
    /// The round-outcome payload carried back in [`RaReport::body`].
    type Body: Send;

    /// The RA index this worker serves. Workers handed to
    /// [`Engine::run`] must be sorted so `workers[j].ra() == j`.
    fn ra(&self) -> usize;

    /// Runs one coordination round under `info` and reports the outcome.
    fn run_round(&mut self, info: &CoordInfo) -> RaReport<Self::Body>;

    /// Handles a control message (checkpoint, rejoin re-sync, shutdown).
    fn handle_control(&mut self, _ctl: &Control) {}

    /// Called by the [`Supervisor`] after a panic was caught inside
    /// [`RoundWorker::run_round`], before this worker is driven again.
    /// Restore internal invariants to a servable state and return `true`
    /// to accept further rounds; the default declines, which marks the
    /// worker permanently dead ([`DownCause::RestartsExhausted`]).
    fn recover(&mut self) -> bool {
        false
    }
}

/// Per-round engine telemetry handed to [`RoundCoordinator::collect`]
/// alongside the report slots: which workers went down and why, how many
/// reports were discarded, and whether the round ended on a deadline or a
/// dead channel. Every failure the engine observes is in here — nothing
/// is silently truncated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundTelemetry {
    /// Typed worker failures observed this round, sorted by RA (so the
    /// sequence is identical across schedulers).
    pub downs: Vec<WorkerDown>,
    /// Reports dropped this round because they were stale (an earlier
    /// round's straggler), out of range (`ra >= n`), or a duplicate for
    /// an already-settled slot.
    pub discarded_reports: usize,
    /// The round's wall-clock deadline expired before every slot settled
    /// (a hung or genuinely slow worker).
    pub deadline_expired: bool,
    /// The report channel disconnected before every slot settled: every
    /// worker thread is gone, which is a crash, not a missed deadline.
    pub channel_disconnected: bool,
}

/// The outcome of an [`Engine::run`]: how many rounds ran plus the run's
/// aggregated failure telemetry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Coordination rounds executed (possibly fewer than requested if the
    /// coordinator stopped early).
    pub rounds: usize,
    /// Rounds whose wall-clock deadline expired with slots still open.
    pub deadline_timeouts: usize,
    /// Rounds that ended because the report channel disconnected — dead
    /// worker threads, counted separately from deadline expiry.
    pub disconnects: usize,
    /// Total reports dropped as stale/malformed/duplicate across the run.
    pub discarded_reports: usize,
    /// Every typed worker-down event observed across the run.
    pub downs: Vec<WorkerDown>,
}

impl EngineReport {
    fn absorb(&mut self, telemetry: &RoundTelemetry) {
        self.deadline_timeouts += usize::from(telemetry.deadline_expired);
        self.disconnects += usize::from(telemetry.channel_disconnected);
        self.discarded_reports += telemetry.discarded_reports;
        self.downs.extend(telemetry.downs.iter().cloned());
    }
}

/// The coordinator side of the round protocol: produce the downstream
/// broadcast, fold the upstream reports. Runs on the caller's thread.
pub trait RoundCoordinator {
    /// The round-outcome payload consumed from [`RaReport::body`].
    type Body;

    /// The per-RA `z − y` payloads for `round` (indexed by RA).
    fn broadcast(&mut self, round: usize) -> Vec<Vec<f64>>;

    /// The encoded slice-lifecycle state accompanying round `round`'s
    /// broadcast, shared by every RA (carried opaquely in
    /// [`CoordInfo::lifecycle`]). Called exactly once per round, after
    /// [`broadcast`](Self::broadcast). Coordinators running a dynamic
    /// workload encode the *absolute* lifecycle state (not an incremental
    /// delta) so workers that missed rounds self-heal on the next
    /// broadcast. The default — a static slice set — sends nothing.
    fn lifecycle_delta(&mut self, _round: usize) -> Vec<u8> {
        Vec::new()
    }

    /// Folds this round's reports, indexed by RA. `None` means the RA
    /// produced no report — the reason (worker down, missed deadline,
    /// dead channel) is in `telemetry`. Returns `true` to stop the run
    /// (e.g. on convergence).
    fn collect(
        &mut self,
        round: usize,
        reports: Vec<Option<RaReport<Self::Body>>>,
        telemetry: &RoundTelemetry,
    ) -> bool;
}

/// Commands sent to a worker thread.
enum ToWorker {
    /// Run one round for each addressed RA on this thread.
    Round(Vec<CoordInfo>),
    /// A control message for every RA on this thread.
    Control(Control),
}

/// Messages flowing back from worker threads: a healthy (or dark /
/// straggling) report, or a typed supervision event for a worker that
/// panicked and could not report at all.
enum FromWorker<B> {
    Report(RaReport<B>),
    Down(WorkerDown),
}

/// The round-based execution engine. See the crate docs for the
/// determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Engine {
    scheduler: Scheduler,
    deadline: Duration,
    supervision: SupervisorConfig,
    /// Panics each worker slot suffered in an earlier interrupted run;
    /// seeds the supervisors on resume (empty for fresh runs).
    prior_panics: Vec<usize>,
}

impl Engine {
    /// An engine on `scheduler` with the default 30 s per-round deadline —
    /// generous enough that only a hung worker ever misses it, which keeps
    /// healthy runs deterministic across schedulers — and the default
    /// supervision policy.
    pub fn new(scheduler: Scheduler) -> Self {
        Self {
            scheduler,
            deadline: Duration::from_secs(30),
            supervision: SupervisorConfig::default(),
            prior_panics: Vec::new(),
        }
    }

    /// Sets the per-round report deadline. Reports not received within it
    /// are handed to the coordinator as missing; tighten it to make slow
    /// workers *actually* lose rounds instead of stalling the system.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the panic-supervision policy (restart budget and backoff).
    #[must_use]
    pub fn with_supervisor(mut self, supervision: SupervisorConfig) -> Self {
        self.supervision = supervision;
        self
    }

    /// Seeds the supervisors with the panic counts an earlier interrupted
    /// run accumulated per worker slot (missing slots count zero), so a
    /// resumed run applies the same restart budget the original would
    /// have: a slot that exhausted its budget before the interruption
    /// stays dead after it.
    #[must_use]
    pub fn with_prior_panics(mut self, counts: Vec<usize>) -> Self {
        self.prior_panics = counts;
        self
    }

    /// The prior panic count for worker slot `j`.
    fn prior_panics_for(&self, j: usize) -> usize {
        self.prior_panics.get(j).copied().unwrap_or(0)
    }

    /// The scheduler in effect.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Runs up to `max_rounds` coordination rounds over `workers`, driving
    /// `coord` on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `workers[j].ra() != j` for some `j` (the report
    /// collection indexes slots by RA).
    pub fn run<W, C>(&self, workers: &mut [W], coord: &mut C, max_rounds: usize) -> EngineReport
    where
        W: RoundWorker,
        C: RoundCoordinator<Body = W::Body>,
    {
        self.run_from(workers, coord, 0, max_rounds)
    }

    /// Runs coordination rounds `first_round..end_round` — the resume
    /// entry point: a run interrupted after round `r` restarts with
    /// `first_round == r + 1` and every broadcast/report keeps the round
    /// indices (and therefore the per-round RNG streams) of the original
    /// run.
    ///
    /// # Panics
    ///
    /// Panics if `workers[j].ra() != j` for some `j`.
    pub fn run_from<W, C>(
        &self,
        workers: &mut [W],
        coord: &mut C,
        first_round: usize,
        end_round: usize,
    ) -> EngineReport
    where
        W: RoundWorker,
        C: RoundCoordinator<Body = W::Body>,
    {
        for (j, w) in workers.iter().enumerate() {
            assert_eq!(w.ra(), j, "workers must be sorted by RA index");
        }
        if workers.is_empty() || first_round >= end_round {
            return EngineReport::default();
        }
        match self.scheduler {
            Scheduler::Sequential => self.run_sequential(workers, coord, first_round, end_round),
            // On a single-core host the threaded topology still pays the
            // full channel round-trip per report while the OS interleaves
            // the shard threads — strictly slower than inline execution.
            // The determinism contract makes the two paths bit-identical,
            // so fall back to the inline loop; `Threaded(1)`'s channel-
            // debugging value only exists where threads can actually run
            // concurrently.
            Scheduler::Threaded(_) if host_parallelism() == 1 => {
                self.run_sequential(workers, coord, first_round, end_round)
            }
            Scheduler::Threaded(_) => self.run_threaded(workers, coord, first_round, end_round),
        }
    }

    /// The reference topology: every worker inline, in RA order, each
    /// round guarded by the supervisor so a panic downs one RA instead of
    /// unwinding through the whole run.
    fn run_sequential<W, C>(
        &self,
        workers: &mut [W],
        coord: &mut C,
        first_round: usize,
        end_round: usize,
    ) -> EngineReport
    where
        W: RoundWorker,
        C: RoundCoordinator<Body = W::Body>,
    {
        let counts: Vec<usize> = (0..workers.len())
            .map(|j| self.prior_panics_for(j))
            .collect();
        let mut supervisor = Supervisor::with_panic_counts(self.supervision, &counts);
        let mut report = EngineReport::default();
        for round in first_round..end_round {
            let zys = coord.broadcast(round);
            let lifecycle = coord.lifecycle_delta(round);
            let mut telemetry = RoundTelemetry::default();
            let reports = workers
                .iter_mut()
                .enumerate()
                .map(|(j, w)| {
                    let info = CoordInfo {
                        round,
                        ra: j,
                        zy: zys[j].clone(),
                        lifecycle: lifecycle.clone(),
                    };
                    match supervisor.guard(j, w, &info) {
                        Ok(rep) => Some(rep),
                        Err(down) => {
                            telemetry.downs.push(down);
                            None
                        }
                    }
                })
                .collect();
            report.rounds = round - first_round + 1;
            report.absorb(&telemetry);
            if coord.collect(round, reports, &telemetry) {
                break;
            }
        }
        for w in workers.iter_mut() {
            let _ = catch_unwind(AssertUnwindSafe(|| w.handle_control(&Control::Shutdown)));
        }
        report
    }

    /// The decentralized topology: worker threads own contiguous RA
    /// shards; the coordinator broadcasts, then gathers reports from a
    /// shared channel under the per-round deadline. Each shard thread
    /// runs its own supervisor with the same per-slot policy as the
    /// sequential path, so panic semantics are scheduler-invariant.
    fn run_threaded<W, C>(
        &self,
        workers: &mut [W],
        coord: &mut C,
        first_round: usize,
        end_round: usize,
    ) -> EngineReport
    where
        W: RoundWorker,
        C: RoundCoordinator<Body = W::Body>,
    {
        let n = workers.len();
        let n_threads = self.scheduler.threads(n);
        let chunk_size = n.div_ceil(n_threads.max(1));
        let supervision = self.supervision;
        std::thread::scope(|s| {
            let (rep_tx, rep_rx) = mpsc::channel::<FromWorker<W::Body>>();
            let mut cmd_txs = Vec::with_capacity(n_threads);
            for (ci, shard) in workers.chunks_mut(chunk_size).enumerate() {
                let (cmd_tx, cmd_rx) = mpsc::channel::<ToWorker>();
                cmd_txs.push(cmd_tx);
                let rep_tx = rep_tx.clone();
                let prior: Vec<usize> = (0..shard.len())
                    .map(|k| self.prior_panics_for(ci * chunk_size + k))
                    .collect();
                s.spawn(move || worker_loop(shard, &cmd_rx, &rep_tx, supervision, prior));
            }
            drop(rep_tx);

            let mut report = EngineReport::default();
            for round in first_round..end_round {
                let zys = coord.broadcast(round);
                let lifecycle = coord.lifecycle_delta(round);
                for (ci, cmd_tx) in cmd_txs.iter().enumerate() {
                    let lo = ci * chunk_size;
                    let hi = (lo + chunk_size).min(n);
                    let infos = (lo..hi)
                        .map(|j| CoordInfo {
                            round,
                            ra: j,
                            zy: zys[j].clone(),
                            lifecycle: lifecycle.clone(),
                        })
                        .collect();
                    // A dead thread surfaces as a disconnect below.
                    let _ = cmd_tx.send(ToWorker::Round(infos));
                }

                let mut slots: Vec<Option<RaReport<W::Body>>> = (0..n).map(|_| None).collect();
                let mut down_marked = vec![false; n];
                let mut telemetry = RoundTelemetry::default();
                // A slot settles on its report *or* its down event; the
                // round ends when all slots settle, the deadline expires,
                // or every worker thread is gone.
                let mut settled = 0;
                let deadline = RoundDeadline::after(self.deadline);
                while settled < n {
                    match rep_rx.recv_timeout(deadline.remaining()) {
                        Ok(FromWorker::Report(rep))
                            if rep.round == round
                                && rep.ra < n
                                && slots[rep.ra].is_none()
                                && !down_marked[rep.ra] =>
                        {
                            let ra = rep.ra;
                            slots[ra] = Some(rep);
                            settled += 1;
                        }
                        Ok(FromWorker::Down(down))
                            if down.round == round
                                && down.ra < n
                                && slots[down.ra].is_none()
                                && !down_marked[down.ra] =>
                        {
                            down_marked[down.ra] = true;
                            settled += 1;
                            telemetry.downs.push(down);
                        }
                        // A stale report from a worker that missed an
                        // earlier deadline, an out-of-range RA, or a
                        // duplicate for a settled slot: dropped, but
                        // counted — never a silent discard.
                        Ok(_) => telemetry.discarded_reports += 1,
                        Err(RecvTimeoutError::Timeout) => {
                            telemetry.deadline_expired = true;
                            break;
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            // Every sender hung up: the unsettled workers
                            // are not late, they are *gone*. Report each
                            // one down instead of conflating this with a
                            // deadline miss.
                            telemetry.channel_disconnected = true;
                            for (ra, slot) in slots.iter().enumerate() {
                                if slot.is_none() && !down_marked[ra] {
                                    telemetry.downs.push(WorkerDown {
                                        ra,
                                        round,
                                        cause: DownCause::Disconnected,
                                    });
                                }
                            }
                            break;
                        }
                    }
                }
                // Down events from different shards interleave in arrival
                // order; sort by RA so the telemetry sequence is identical
                // to the sequential path's.
                telemetry.downs.sort_by_key(|d| d.ra);
                report.rounds = round - first_round + 1;
                report.absorb(&telemetry);
                if coord.collect(round, slots, &telemetry) {
                    break;
                }
            }
            for cmd_tx in &cmd_txs {
                let _ = cmd_tx.send(ToWorker::Control(Control::Shutdown));
            }
            report
        })
    }
}

/// The per-thread worker loop: serve round commands for this thread's RA
/// shard until shutdown (explicit, or the command channel closing). Every
/// `run_round` and control delivery is guarded, so one panicking worker
/// downs only its own RA — the shard thread and its channel stay alive.
fn worker_loop<W: RoundWorker>(
    shard: &mut [W],
    cmd_rx: &Receiver<ToWorker>,
    rep_tx: &Sender<FromWorker<W::Body>>,
    supervision: SupervisorConfig,
    prior_panics: Vec<usize>,
) {
    let base = shard.first().map_or(0, RoundWorker::ra);
    let mut supervisor = Supervisor::with_panic_counts(supervision, &prior_panics);
    loop {
        match cmd_rx.recv() {
            Ok(ToWorker::Round(infos)) => {
                for info in infos {
                    let slot = info.ra - base;
                    let msg = match supervisor.guard(slot, &mut shard[slot], &info) {
                        Ok(rep) => FromWorker::Report(rep),
                        Err(down) => FromWorker::Down(down),
                    };
                    if rep_tx.send(msg).is_err() {
                        return; // Coordinator gone; nothing left to serve.
                    }
                }
            }
            Ok(ToWorker::Control(Control::Shutdown)) | Err(_) => {
                for w in shard.iter_mut() {
                    let _ = catch_unwind(AssertUnwindSafe(|| w.handle_control(&Control::Shutdown)));
                }
                return;
            }
            Ok(ToWorker::Control(ctl)) => {
                for w in shard.iter_mut() {
                    let _ = catch_unwind(AssertUnwindSafe(|| w.handle_control(&ctl)));
                }
            }
        }
    }
}

/// The host's available parallelism (1 when it cannot be queried). Both
/// the engine and [`par_map`] skip thread/channel machinery entirely when
/// this is 1: spawning threads on a single core only adds scheduling and
/// messaging overhead on top of the same serial work.
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A deterministic, order-preserving parallel map: applies `f` to every
/// item, inline for [`Scheduler::Sequential`] and across scoped threads
/// (contiguous chunks) for [`Scheduler::Threaded`]. `f` receives the
/// item's global index so callers can derive per-item RNG streams; because
/// items never share state, the result is identical under every scheduler.
///
/// This is the primitive behind parallel per-RA training.
pub fn par_map<T, F>(scheduler: Scheduler, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n_threads = scheduler.threads(items.len());
    if n_threads <= 1 || host_parallelism() == 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk_size = items.len().div_ceil(n_threads);
    std::thread::scope(|s| {
        for (ci, chunk) in items.chunks_mut(chunk_size).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (k, item) in chunk.iter_mut().enumerate() {
                    f(ci * chunk_size + k, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic toy worker: echoes a transform of the broadcast.
    struct EchoWorker {
        ra: usize,
        /// Pretend-PRNG state, advanced once per round.
        state: u64,
        /// Rounds this worker is "down" (reports `body: None`).
        dark: Vec<usize>,
        /// Rounds this worker straggles (flags `deadline_missed`).
        late: Vec<usize>,
        /// Rounds this worker panics mid-round.
        panics: Vec<usize>,
        /// Whether `recover` accepts a restart after a caught panic.
        recoverable: bool,
    }

    impl RoundWorker for EchoWorker {
        type Body = (u64, Vec<f64>);

        fn ra(&self) -> usize {
            self.ra
        }

        fn run_round(&mut self, info: &CoordInfo) -> RaReport<Self::Body> {
            if self.dark.contains(&info.round) {
                return RaReport {
                    ra: self.ra,
                    round: info.round,
                    deadline_missed: false,
                    body: None,
                };
            }
            assert!(
                !self.panics.contains(&info.round),
                "injected panic: ra {} round {}",
                self.ra,
                info.round
            );
            self.state = crate::derive_stream_seed(self.state, crate::DOMAIN_ORCH, 1);
            RaReport {
                ra: self.ra,
                round: info.round,
                deadline_missed: self.late.contains(&info.round),
                body: Some((self.state, info.zy.clone())),
            }
        }

        fn recover(&mut self) -> bool {
            self.recoverable
        }
    }

    /// Records everything it sees, byte-comparably.
    #[derive(Default)]
    struct RecordingCoordinator {
        n_ras: usize,
        log: Vec<String>,
        stop_after: Option<usize>,
    }

    impl RoundCoordinator for RecordingCoordinator {
        type Body = (u64, Vec<f64>);

        fn broadcast(&mut self, round: usize) -> Vec<Vec<f64>> {
            (0..self.n_ras)
                .map(|j| vec![round as f64, j as f64])
                .collect()
        }

        fn collect(
            &mut self,
            round: usize,
            reports: Vec<Option<RaReport<Self::Body>>>,
            telemetry: &RoundTelemetry,
        ) -> bool {
            for (j, rep) in reports.iter().enumerate() {
                self.log.push(format!("{round}/{j}: {rep:?}"));
            }
            for down in &telemetry.downs {
                self.log.push(format!("{round}/down: {down}"));
            }
            self.log.push(format!(
                "{round}/discarded: {}",
                telemetry.discarded_reports
            ));
            self.stop_after.is_some_and(|r| round + 1 >= r)
        }
    }

    fn workers(n: usize) -> Vec<EchoWorker> {
        (0..n)
            .map(|j| EchoWorker {
                ra: j,
                state: j as u64,
                dark: if j == 1 { vec![2, 3] } else { vec![] },
                late: if j == 0 { vec![1] } else { vec![] },
                panics: vec![],
                recoverable: true,
            })
            .collect()
    }

    fn fast_supervision() -> SupervisorConfig {
        SupervisorConfig {
            backoff_base: Duration::ZERO,
            ..Default::default()
        }
    }

    fn run_with(scheduler: Scheduler, n: usize, rounds: usize) -> Vec<String> {
        let mut ws = workers(n);
        let mut coord = RecordingCoordinator {
            n_ras: n,
            ..Default::default()
        };
        let report = Engine::new(scheduler).run(&mut ws, &mut coord, rounds);
        assert_eq!(report.rounds, rounds);
        coord.log
    }

    #[test]
    fn threaded_matches_sequential_bit_for_bit() {
        let baseline = run_with(Scheduler::Sequential, 5, 6);
        for threads in [1, 2, 3, 5, 8] {
            assert_eq!(
                run_with(Scheduler::Threaded(threads), 5, 6),
                baseline,
                "threaded({threads}) diverged from sequential"
            );
        }
    }

    #[test]
    fn early_stop_respected_by_both_schedulers() {
        for scheduler in [Scheduler::Sequential, Scheduler::Threaded(2)] {
            let mut ws = workers(3);
            let mut coord = RecordingCoordinator {
                n_ras: 3,
                stop_after: Some(2),
                ..Default::default()
            };
            let report = Engine::new(scheduler).run(&mut ws, &mut coord, 10);
            assert_eq!(report.rounds, 2, "{scheduler}: wrong round count");
        }
    }

    #[test]
    fn workers_must_be_sorted_by_ra() {
        let mut ws = workers(2);
        ws.swap(0, 1);
        let mut coord = RecordingCoordinator {
            n_ras: 2,
            ..Default::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Engine::new(Scheduler::Sequential).run(&mut ws, &mut coord, 1)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_from_continues_round_indices_and_worker_state() {
        // A run split at round 3 must replay rounds 3..6 with the same
        // broadcasts and (because EchoWorker state carries over in place)
        // the same report payloads as the tail of a one-shot run.
        let full = run_with(Scheduler::Sequential, 4, 6);
        let mut ws = workers(4);
        let mut coord = RecordingCoordinator {
            n_ras: 4,
            ..Default::default()
        };
        let engine = Engine::new(Scheduler::Sequential);
        let head = engine.run_from(&mut ws, &mut coord, 0, 3);
        assert_eq!(head.rounds, 3);
        let tail = engine.run_from(&mut ws, &mut coord, 3, 6);
        assert_eq!(tail.rounds, 3);
        assert_eq!(coord.log, full);
    }

    #[test]
    fn panicking_worker_is_downed_not_fatal_and_scheduler_invariant() {
        let run = |scheduler: Scheduler| {
            let mut ws = workers(4);
            ws[2].panics = vec![1, 3];
            let mut coord = RecordingCoordinator {
                n_ras: 4,
                ..Default::default()
            };
            let report = Engine::new(scheduler)
                .with_supervisor(fast_supervision())
                .run(&mut ws, &mut coord, 5);
            (report, coord.log)
        };
        let (seq_report, seq_log) = run(Scheduler::Sequential);
        assert_eq!(seq_report.rounds, 5, "panics must not end the run");
        assert_eq!(seq_report.downs.len(), 2);
        assert!(seq_report
            .downs
            .iter()
            .all(|d| d.ra == 2 && matches!(d.cause, DownCause::Panic(_))));
        for threads in [1, 2, 4] {
            let (rep, log) = run(Scheduler::Threaded(threads));
            assert_eq!(rep.downs, seq_report.downs, "threaded({threads}) downs");
            assert_eq!(log, seq_log, "threaded({threads}) log diverged");
        }
    }

    #[test]
    fn unrecoverable_panic_reports_down_every_remaining_round() {
        let mut ws = workers(3);
        ws[1].panics = vec![1];
        ws[1].recoverable = false;
        ws[1].dark = vec![]; // isolate the panic path
        let mut coord = RecordingCoordinator {
            n_ras: 3,
            ..Default::default()
        };
        let report = Engine::new(Scheduler::Threaded(2))
            .with_supervisor(fast_supervision())
            .run(&mut ws, &mut coord, 5);
        assert_eq!(report.rounds, 5);
        // Round 1: the panic. Rounds 2..5: explicit RestartsExhausted —
        // the failure is re-reported, never silently truncated.
        assert_eq!(report.downs.len(), 4);
        assert!(matches!(report.downs[0].cause, DownCause::Panic(_)));
        assert!(report.downs[1..]
            .iter()
            .all(|d| d.cause == DownCause::RestartsExhausted));
        assert_eq!(report.deadline_timeouts, 0, "downs are not deadline misses");
        assert_eq!(report.disconnects, 0);
    }

    #[test]
    fn prior_panic_counts_resume_the_restart_budget() {
        // One-shot run: RA 1 panics in rounds 0..4 with max_restarts = 3,
        // so the 4th panic exhausts the budget and rounds 4.. report
        // RestartsExhausted.
        let full = {
            let mut ws = workers(3);
            ws[1].panics = (0..4).collect();
            ws[1].dark = vec![];
            let mut coord = RecordingCoordinator {
                n_ras: 3,
                ..Default::default()
            };
            let report = Engine::new(Scheduler::Sequential)
                .with_supervisor(fast_supervision())
                .run(&mut ws, &mut coord, 6);
            (report.downs, coord.log)
        };
        // Split run: rounds 0..3 (3 panics), then resume 3..6 carrying the
        // panic count — the tail must be byte-identical to the one-shot's.
        let mut ws = workers(3);
        ws[1].panics = (0..4).collect();
        ws[1].dark = vec![];
        let mut coord = RecordingCoordinator {
            n_ras: 3,
            ..Default::default()
        };
        let engine = Engine::new(Scheduler::Sequential).with_supervisor(fast_supervision());
        let head = engine.run_from(&mut ws, &mut coord, 0, 3);
        assert_eq!(head.downs.len(), 3);
        let resumed = engine
            .clone()
            .with_prior_panics(vec![0, 3, 0])
            .run_from(&mut ws, &mut coord, 3, 6);
        let mut downs = head.downs;
        downs.extend(resumed.downs);
        assert_eq!(downs, full.0);
        assert_eq!(coord.log, full.1);
        assert!(matches!(downs[3].cause, DownCause::Panic(_)));
        assert_eq!(downs[4].cause, DownCause::RestartsExhausted);
    }

    #[test]
    fn telemetry_counts_disconnects_apart_from_deadlines() {
        // Satellite check: the two channel-failure modes accumulate into
        // distinct counters, never conflated.
        let mut report = EngineReport::default();
        report.absorb(&RoundTelemetry {
            deadline_expired: true,
            ..Default::default()
        });
        report.absorb(&RoundTelemetry {
            channel_disconnected: true,
            ..Default::default()
        });
        report.absorb(&RoundTelemetry {
            discarded_reports: 2,
            ..Default::default()
        });
        assert_eq!(report.deadline_timeouts, 1);
        assert_eq!(report.disconnects, 1);
        assert_eq!(report.discarded_reports, 2);
    }

    #[test]
    fn empty_and_zero_round_runs_are_no_ops() {
        let mut ws: Vec<EchoWorker> = Vec::new();
        let mut coord = RecordingCoordinator::default();
        assert_eq!(
            Engine::new(Scheduler::Threaded(4))
                .run(&mut ws, &mut coord, 5)
                .rounds,
            0
        );
        let mut ws = workers(2);
        let mut coord = RecordingCoordinator {
            n_ras: 2,
            ..Default::default()
        };
        assert_eq!(
            Engine::new(Scheduler::Sequential)
                .run(&mut ws, &mut coord, 0)
                .rounds,
            0
        );
    }

    #[test]
    fn par_map_is_scheduler_invariant() {
        let run = |scheduler| {
            let mut items: Vec<u64> = (0..17).map(|i| i * 3).collect();
            par_map(scheduler, &mut items, |i, v| {
                *v = crate::derive_stream_seed(*v, crate::DOMAIN_TRAIN, i as u64);
            });
            items
        };
        let baseline = run(Scheduler::Sequential);
        for threads in [1, 2, 4, 16, 32] {
            assert_eq!(run(Scheduler::Threaded(threads)), baseline);
        }
    }
}
