//! The round-based executor: a coordinator task driving RA workers either
//! inline (sequential) or across worker threads with typed `mpsc`
//! channels and per-round deadlines.

use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use crate::msg::{Control, CoordInfo, RaReport};
use crate::Scheduler;

/// One resource autonomy's execution state: everything the RA needs to run
/// a coordination round locally (policy, environment, private RNG stream,
/// fault view, checkpoints). Implementations must be [`Send`] so a worker
/// can live on its own thread; they must *not* share mutable state with
/// any other worker — cross-RA communication goes through the coordinator.
pub trait RoundWorker: Send {
    /// The round-outcome payload carried back in [`RaReport::body`].
    type Body: Send;

    /// The RA index this worker serves. Workers handed to
    /// [`Engine::run`] must be sorted so `workers[j].ra() == j`.
    fn ra(&self) -> usize;

    /// Runs one coordination round under `info` and reports the outcome.
    fn run_round(&mut self, info: &CoordInfo) -> RaReport<Self::Body>;

    /// Handles a control message (checkpoint, rejoin re-sync, shutdown).
    fn handle_control(&mut self, _ctl: &Control) {}
}

/// The coordinator side of the round protocol: produce the downstream
/// broadcast, fold the upstream reports. Runs on the caller's thread.
pub trait RoundCoordinator {
    /// The round-outcome payload consumed from [`RaReport::body`].
    type Body;

    /// The per-RA `z − y` payloads for `round` (indexed by RA).
    fn broadcast(&mut self, round: usize) -> Vec<Vec<f64>>;

    /// Folds this round's reports, indexed by RA. `None` means the RA's
    /// report missed the round's wall-clock deadline entirely (it will be
    /// dropped as stale if it straggles in later). Returns `true` to stop
    /// the run (e.g. on convergence).
    fn collect(&mut self, round: usize, reports: Vec<Option<RaReport<Self::Body>>>) -> bool;
}

/// Commands sent to a worker thread.
enum ToWorker {
    /// Run one round for each addressed RA on this thread.
    Round(Vec<CoordInfo>),
    /// A control message for every RA on this thread.
    Control(Control),
}

/// The round-based execution engine. See the crate docs for the
/// determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    scheduler: Scheduler,
    deadline: Duration,
}

impl Engine {
    /// An engine on `scheduler` with the default 30 s per-round deadline —
    /// generous enough that only a hung worker ever misses it, which keeps
    /// healthy runs deterministic across schedulers.
    pub fn new(scheduler: Scheduler) -> Self {
        Self {
            scheduler,
            deadline: Duration::from_secs(30),
        }
    }

    /// Sets the per-round report deadline. Reports not received within it
    /// are handed to the coordinator as missing; tighten it to make slow
    /// workers *actually* lose rounds instead of stalling the system.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// The scheduler in effect.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Runs up to `max_rounds` coordination rounds over `workers`, driving
    /// `coord` on the calling thread. Returns the number of rounds run
    /// (possibly fewer than `max_rounds` if `coord` stopped early).
    ///
    /// # Panics
    ///
    /// Panics if `workers[j].ra() != j` for some `j` (the report
    /// collection indexes slots by RA).
    pub fn run<W, C>(&self, workers: &mut [W], coord: &mut C, max_rounds: usize) -> usize
    where
        W: RoundWorker,
        C: RoundCoordinator<Body = W::Body>,
    {
        for (j, w) in workers.iter().enumerate() {
            assert_eq!(w.ra(), j, "workers must be sorted by RA index");
        }
        if workers.is_empty() || max_rounds == 0 {
            return 0;
        }
        match self.scheduler {
            Scheduler::Sequential => self.run_sequential(workers, coord, max_rounds),
            Scheduler::Threaded(_) => self.run_threaded(workers, coord, max_rounds),
        }
    }

    /// The reference topology: every worker inline, in RA order.
    fn run_sequential<W, C>(&self, workers: &mut [W], coord: &mut C, max_rounds: usize) -> usize
    where
        W: RoundWorker,
        C: RoundCoordinator<Body = W::Body>,
    {
        let mut rounds_run = 0;
        for round in 0..max_rounds {
            let zys = coord.broadcast(round);
            let reports = workers
                .iter_mut()
                .enumerate()
                .map(|(j, w)| {
                    let info = CoordInfo {
                        round,
                        ra: j,
                        zy: zys[j].clone(),
                    };
                    Some(w.run_round(&info))
                })
                .collect();
            rounds_run = round + 1;
            if coord.collect(round, reports) {
                break;
            }
        }
        for w in workers.iter_mut() {
            w.handle_control(&Control::Shutdown);
        }
        rounds_run
    }

    /// The decentralized topology: worker threads own contiguous RA
    /// shards; the coordinator broadcasts, then gathers reports from a
    /// shared channel under the per-round deadline.
    fn run_threaded<W, C>(&self, workers: &mut [W], coord: &mut C, max_rounds: usize) -> usize
    where
        W: RoundWorker,
        C: RoundCoordinator<Body = W::Body>,
    {
        let n = workers.len();
        let n_threads = self.scheduler.threads(n);
        let chunk_size = n.div_ceil(n_threads.max(1));
        std::thread::scope(|s| {
            let (rep_tx, rep_rx) = mpsc::channel::<RaReport<W::Body>>();
            let mut cmd_txs = Vec::with_capacity(n_threads);
            for shard in workers.chunks_mut(chunk_size) {
                let (cmd_tx, cmd_rx) = mpsc::channel::<ToWorker>();
                cmd_txs.push(cmd_tx);
                let rep_tx = rep_tx.clone();
                s.spawn(move || worker_loop(shard, &cmd_rx, &rep_tx));
            }
            drop(rep_tx);

            let mut rounds_run = 0;
            for round in 0..max_rounds {
                let zys = coord.broadcast(round);
                for (ci, cmd_tx) in cmd_txs.iter().enumerate() {
                    let lo = ci * chunk_size;
                    let hi = (lo + chunk_size).min(n);
                    let infos = (lo..hi)
                        .map(|j| CoordInfo {
                            round,
                            ra: j,
                            zy: zys[j].clone(),
                        })
                        .collect();
                    // A dead thread surfaces as missing reports below.
                    let _ = cmd_tx.send(ToWorker::Round(infos));
                }

                let mut slots: Vec<Option<RaReport<W::Body>>> = (0..n).map(|_| None).collect();
                let mut received = 0;
                let deadline = Instant::now() + self.deadline;
                while received < n {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match rep_rx.recv_timeout(remaining) {
                        Ok(rep) if rep.round == round && rep.ra < n && slots[rep.ra].is_none() => {
                            let ra = rep.ra;
                            slots[ra] = Some(rep);
                            received += 1;
                        }
                        // A stale report from a worker that missed an
                        // earlier deadline: superseded, drop it.
                        Ok(_) => {}
                        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                            break;
                        }
                    }
                }
                rounds_run = round + 1;
                if coord.collect(round, slots) {
                    break;
                }
            }
            for cmd_tx in &cmd_txs {
                let _ = cmd_tx.send(ToWorker::Control(Control::Shutdown));
            }
            rounds_run
        })
    }
}

/// The per-thread worker loop: serve round commands for this thread's RA
/// shard until shutdown (explicit, or the command channel closing).
fn worker_loop<W: RoundWorker>(
    shard: &mut [W],
    cmd_rx: &Receiver<ToWorker>,
    rep_tx: &Sender<RaReport<W::Body>>,
) {
    let base = shard.first().map_or(0, RoundWorker::ra);
    loop {
        match cmd_rx.recv() {
            Ok(ToWorker::Round(infos)) => {
                for info in infos {
                    let report = shard[info.ra - base].run_round(&info);
                    if rep_tx.send(report).is_err() {
                        return; // Coordinator gone; nothing left to serve.
                    }
                }
            }
            Ok(ToWorker::Control(Control::Shutdown)) | Err(_) => {
                for w in shard.iter_mut() {
                    w.handle_control(&Control::Shutdown);
                }
                return;
            }
            Ok(ToWorker::Control(ctl)) => {
                for w in shard.iter_mut() {
                    w.handle_control(&ctl);
                }
            }
        }
    }
}

/// A deterministic, order-preserving parallel map: applies `f` to every
/// item, inline for [`Scheduler::Sequential`] and across scoped threads
/// (contiguous chunks) for [`Scheduler::Threaded`]. `f` receives the
/// item's global index so callers can derive per-item RNG streams; because
/// items never share state, the result is identical under every scheduler.
///
/// This is the primitive behind parallel per-RA training.
pub fn par_map<T, F>(scheduler: Scheduler, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n_threads = scheduler.threads(items.len());
    if n_threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk_size = items.len().div_ceil(n_threads);
    std::thread::scope(|s| {
        for (ci, chunk) in items.chunks_mut(chunk_size).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (k, item) in chunk.iter_mut().enumerate() {
                    f(ci * chunk_size + k, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic toy worker: echoes a transform of the broadcast.
    struct EchoWorker {
        ra: usize,
        /// Pretend-PRNG state, advanced once per round.
        state: u64,
        /// Rounds this worker is "down" (reports `body: None`).
        dark: Vec<usize>,
        /// Rounds this worker straggles (flags `deadline_missed`).
        late: Vec<usize>,
    }

    impl RoundWorker for EchoWorker {
        type Body = (u64, Vec<f64>);

        fn ra(&self) -> usize {
            self.ra
        }

        fn run_round(&mut self, info: &CoordInfo) -> RaReport<Self::Body> {
            if self.dark.contains(&info.round) {
                return RaReport {
                    ra: self.ra,
                    round: info.round,
                    deadline_missed: false,
                    body: None,
                };
            }
            self.state = crate::derive_stream_seed(self.state, crate::DOMAIN_ORCH, 1);
            RaReport {
                ra: self.ra,
                round: info.round,
                deadline_missed: self.late.contains(&info.round),
                body: Some((self.state, info.zy.clone())),
            }
        }
    }

    /// Records everything it sees, byte-comparably.
    #[derive(Default)]
    struct RecordingCoordinator {
        n_ras: usize,
        log: Vec<String>,
        stop_after: Option<usize>,
    }

    impl RoundCoordinator for RecordingCoordinator {
        type Body = (u64, Vec<f64>);

        fn broadcast(&mut self, round: usize) -> Vec<Vec<f64>> {
            (0..self.n_ras)
                .map(|j| vec![round as f64, j as f64])
                .collect()
        }

        fn collect(&mut self, round: usize, reports: Vec<Option<RaReport<Self::Body>>>) -> bool {
            for (j, rep) in reports.iter().enumerate() {
                self.log.push(format!("{round}/{j}: {rep:?}"));
            }
            self.stop_after.is_some_and(|r| round + 1 >= r)
        }
    }

    fn workers(n: usize) -> Vec<EchoWorker> {
        (0..n)
            .map(|j| EchoWorker {
                ra: j,
                state: j as u64,
                dark: if j == 1 { vec![2, 3] } else { vec![] },
                late: if j == 0 { vec![1] } else { vec![] },
            })
            .collect()
    }

    fn run_with(scheduler: Scheduler, n: usize, rounds: usize) -> Vec<String> {
        let mut ws = workers(n);
        let mut coord = RecordingCoordinator {
            n_ras: n,
            ..Default::default()
        };
        let ran = Engine::new(scheduler).run(&mut ws, &mut coord, rounds);
        assert_eq!(ran, rounds);
        coord.log
    }

    #[test]
    fn threaded_matches_sequential_bit_for_bit() {
        let baseline = run_with(Scheduler::Sequential, 5, 6);
        for threads in [1, 2, 3, 5, 8] {
            assert_eq!(
                run_with(Scheduler::Threaded(threads), 5, 6),
                baseline,
                "threaded({threads}) diverged from sequential"
            );
        }
    }

    #[test]
    fn early_stop_respected_by_both_schedulers() {
        for scheduler in [Scheduler::Sequential, Scheduler::Threaded(2)] {
            let mut ws = workers(3);
            let mut coord = RecordingCoordinator {
                n_ras: 3,
                stop_after: Some(2),
                ..Default::default()
            };
            let ran = Engine::new(scheduler).run(&mut ws, &mut coord, 10);
            assert_eq!(ran, 2, "{scheduler}: wrong round count");
        }
    }

    #[test]
    fn workers_must_be_sorted_by_ra() {
        let mut ws = workers(2);
        ws.swap(0, 1);
        let mut coord = RecordingCoordinator {
            n_ras: 2,
            ..Default::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Engine::new(Scheduler::Sequential).run(&mut ws, &mut coord, 1)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn par_map_is_scheduler_invariant() {
        let run = |scheduler| {
            let mut items: Vec<u64> = (0..17).map(|i| i * 3).collect();
            par_map(scheduler, &mut items, |i, v| {
                *v = crate::derive_stream_seed(*v, crate::DOMAIN_TRAIN, i as u64);
            });
            items
        };
        let baseline = run(Scheduler::Sequential);
        for threads in [1, 2, 4, 16, 32] {
            assert_eq!(run(Scheduler::Threaded(threads)), baseline);
        }
    }

    #[test]
    fn empty_and_zero_round_runs_are_no_ops() {
        let mut ws: Vec<EchoWorker> = Vec::new();
        let mut coord = RecordingCoordinator::default();
        assert_eq!(
            Engine::new(Scheduler::Threaded(4)).run(&mut ws, &mut coord, 5),
            0
        );
        let mut ws = workers(2);
        let mut coord = RecordingCoordinator {
            n_ras: 2,
            ..Default::default()
        };
        assert_eq!(
            Engine::new(Scheduler::Sequential).run(&mut ws, &mut coord, 0),
            0
        );
    }
}
