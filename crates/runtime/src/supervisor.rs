//! Panic isolation and bounded-restart supervision for RA workers.
//!
//! Before this layer existed a panicking worker either aborted the whole
//! run (sequential) or silently vanished from its thread, turning every
//! subsequent round into an indistinguishable "missed deadline". The
//! [`Supervisor`] wraps every `run_round` call in
//! [`std::panic::catch_unwind`] and converts the panic into a typed
//! [`WorkerDown`] event that flows to the coordinator alongside the
//! healthy reports, so a crash is *data*, not absence.
//!
//! Restart policy: each worker has a bounded restart budget
//! ([`SupervisorConfig::max_restarts`]). After a caught panic the
//! supervisor backs off exponentially (`backoff_base * 2^n`, capped at
//! [`SupervisorConfig::backoff_max`]) and asks the worker to
//! [`RoundWorker::recover`]; a worker that declines to recover, or whose
//! budget is exhausted, is marked dead and reported
//! [`DownCause::RestartsExhausted`] every remaining round — failure is
//! explicit for the rest of the run, never a silent truncation.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use crate::engine::RoundWorker;
use crate::msg::CoordInfo;
use crate::msg::RaReport;

/// Why a worker failed to produce a report for a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownCause {
    /// The worker panicked inside `run_round`; the payload is the panic
    /// message (or a placeholder when the payload was not a string).
    Panic(String),
    /// The worker's restart budget is exhausted (or it declined to
    /// recover); the supervisor refuses to drive it again this run.
    RestartsExhausted,
    /// The worker's thread is gone: its report channel disconnected
    /// before the round settled.
    Disconnected,
    /// The worker's registration lease lapsed: it went `missed_rounds`
    /// rounds without a round-tagged sign of life, past the
    /// `budget_rounds` failure deadline it declared at registration.
    /// Raised by the networked registration plane
    /// ([`crate::registration::RegistrationPlane`]) — the multi-process
    /// analogue of a caught panic, absorbed by the same degraded paths.
    LeaseExpired {
        /// Rounds without a sign of life when the lease lapsed.
        missed_rounds: usize,
        /// The failure deadline the node declared (in rounds).
        budget_rounds: usize,
    },
}

impl std::fmt::Display for DownCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DownCause::Panic(msg) => write!(f, "panic: {msg}"),
            DownCause::RestartsExhausted => write!(f, "restart budget exhausted"),
            DownCause::Disconnected => write!(f, "worker channel disconnected"),
            DownCause::LeaseExpired {
                missed_rounds,
                budget_rounds,
            } => write!(
                f,
                "lease expired: {missed_rounds} rounds without refresh (budget {budget_rounds})"
            ),
        }
    }
}

/// A typed worker-failure event: which RA went down, in which round, and
/// why. Downed RAs are reported to the coordinator every round they miss —
/// the explicit replacement for the silent missing-report truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerDown {
    /// The RA whose worker failed.
    pub ra: usize,
    /// The engine-local round the failure was observed in.
    pub round: usize,
    /// Why the worker failed.
    pub cause: DownCause,
}

impl std::fmt::Display for WorkerDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ra {} down in round {}: {}",
            self.ra, self.round, self.cause
        )
    }
}

/// Supervision policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// How many caught panics per worker before it is marked dead.
    pub max_restarts: usize,
    /// Backoff slept before the first restart of a worker; doubles on
    /// every subsequent restart of the same worker.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_max: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(500),
        }
    }
}

impl SupervisorConfig {
    /// The backoff slept before restart number `n` (0-based):
    /// `backoff_base * 2^n`, saturating at `backoff_max`.
    #[must_use]
    pub fn backoff(&self, n: usize) -> Duration {
        let factor = 1u32 << n.min(16) as u32;
        self.backoff_base
            .checked_mul(factor)
            .map_or(self.backoff_max, |d| d.min(self.backoff_max))
    }
}

/// Per-shard supervision state: one restart counter and one dead flag per
/// worker slot. Both schedulers route every `run_round` call through
/// [`Supervisor::guard`], so panic semantics are identical whether a
/// worker runs inline or on its own thread.
#[derive(Debug)]
pub struct Supervisor {
    config: SupervisorConfig,
    restarts: Vec<usize>,
    dead: Vec<bool>,
}

impl Supervisor {
    /// A supervisor over `n_slots` worker slots.
    pub fn new(config: SupervisorConfig, n_slots: usize) -> Self {
        Self {
            config,
            restarts: vec![0; n_slots],
            dead: vec![false; n_slots],
        }
    }

    /// A supervisor whose per-slot state is reconstructed from the number
    /// of panics each slot has already suffered in an earlier (interrupted)
    /// run — the resume counterpart of [`Supervisor::new`]. For a worker
    /// whose `recover` accepts every restart, `counts[slot]` caught panics
    /// leave exactly `min(counts, max_restarts)` restarts consumed and the
    /// slot dead iff the count exceeded the budget, so a resumed supervisor
    /// is indistinguishable from one that lived through the panics.
    pub fn with_panic_counts(config: SupervisorConfig, counts: &[usize]) -> Self {
        Self {
            config,
            restarts: counts.iter().map(|&c| c.min(config.max_restarts)).collect(),
            dead: counts.iter().map(|&c| c > config.max_restarts).collect(),
        }
    }

    /// How many restarts slot `slot` has consumed.
    pub fn restarts(&self, slot: usize) -> usize {
        self.restarts[slot]
    }

    /// Whether slot `slot` is permanently dead.
    pub fn is_dead(&self, slot: usize) -> bool {
        self.dead[slot]
    }

    /// Drives one guarded round on `worker` (slot `slot`): catches any
    /// panic, applies the restart policy, and converts failures into
    /// typed [`WorkerDown`] events.
    pub fn guard<W: RoundWorker>(
        &mut self,
        slot: usize,
        worker: &mut W,
        info: &CoordInfo,
    ) -> Result<RaReport<W::Body>, WorkerDown> {
        let ra = worker.ra();
        if self.dead[slot] {
            return Err(WorkerDown {
                ra,
                round: info.round,
                cause: DownCause::RestartsExhausted,
            });
        }
        match catch_unwind(AssertUnwindSafe(|| worker.run_round(info))) {
            Ok(report) => Ok(report),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                if self.restarts[slot] < self.config.max_restarts {
                    let backoff = self.config.backoff(self.restarts[slot]);
                    self.restarts[slot] += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    // The recovery hook itself runs guarded: a worker so
                    // broken that recovery panics is simply dead.
                    let recovered =
                        catch_unwind(AssertUnwindSafe(|| worker.recover())).unwrap_or(false);
                    if !recovered {
                        self.dead[slot] = true;
                    }
                } else {
                    self.dead[slot] = true;
                }
                Err(WorkerDown {
                    ra,
                    round: info.round,
                    cause: DownCause::Panic(message),
                })
            }
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlakyWorker {
        ra: usize,
        /// Rounds that panic.
        bad: Vec<usize>,
        /// Whether `recover` accepts the restart.
        recoverable: bool,
        recoveries: usize,
    }

    impl RoundWorker for FlakyWorker {
        type Body = usize;

        fn ra(&self) -> usize {
            self.ra
        }

        fn run_round(&mut self, info: &CoordInfo) -> RaReport<usize> {
            assert!(!self.bad.contains(&info.round), "injected panic");
            RaReport {
                ra: self.ra,
                round: info.round,
                deadline_missed: false,
                body: Some(info.round),
            }
        }

        fn recover(&mut self) -> bool {
            self.recoveries += 1;
            self.recoverable
        }
    }

    fn info(round: usize) -> CoordInfo {
        CoordInfo {
            round,
            ra: 0,
            zy: vec![],
            lifecycle: vec![],
        }
    }

    fn fast() -> SupervisorConfig {
        SupervisorConfig {
            backoff_base: Duration::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn panic_is_caught_and_typed() {
        let mut sup = Supervisor::new(fast(), 1);
        let mut w = FlakyWorker {
            ra: 0,
            bad: vec![1],
            recoverable: true,
            recoveries: 0,
        };
        assert!(sup.guard(0, &mut w, &info(0)).is_ok());
        let down = sup.guard(0, &mut w, &info(1)).unwrap_err();
        assert_eq!(down.ra, 0);
        assert_eq!(down.round, 1);
        assert!(matches!(down.cause, DownCause::Panic(ref m) if m.contains("injected panic")));
        assert_eq!(w.recoveries, 1);
        // Recovered: the next round serves normally.
        assert!(sup.guard(0, &mut w, &info(2)).is_ok());
        assert!(!sup.is_dead(0));
    }

    #[test]
    fn unrecoverable_worker_is_dead_with_explicit_cause_every_round() {
        let mut sup = Supervisor::new(fast(), 1);
        let mut w = FlakyWorker {
            ra: 0,
            bad: vec![0],
            recoverable: false,
            recoveries: 0,
        };
        let first = sup.guard(0, &mut w, &info(0)).unwrap_err();
        assert!(matches!(first.cause, DownCause::Panic(_)));
        assert!(sup.is_dead(0));
        for round in 1..4 {
            let down = sup.guard(0, &mut w, &info(round)).unwrap_err();
            assert_eq!(down.cause, DownCause::RestartsExhausted);
            assert_eq!(down.round, round);
        }
        // The dead worker is never driven again (recoveries stay at 1).
        assert_eq!(w.recoveries, 1);
    }

    #[test]
    fn restart_budget_is_enforced() {
        let config = SupervisorConfig {
            max_restarts: 2,
            backoff_base: Duration::ZERO,
            ..Default::default()
        };
        let mut sup = Supervisor::new(config, 1);
        let mut w = FlakyWorker {
            ra: 0,
            bad: (0..10).collect(),
            recoverable: true,
            recoveries: 0,
        };
        for round in 0..3 {
            let down = sup.guard(0, &mut w, &info(round)).unwrap_err();
            assert!(matches!(down.cause, DownCause::Panic(_)), "round {round}");
        }
        assert!(sup.is_dead(0));
        assert_eq!(sup.restarts(0), 2);
        let down = sup.guard(0, &mut w, &info(3)).unwrap_err();
        assert_eq!(down.cause, DownCause::RestartsExhausted);
    }

    #[test]
    fn panic_counts_reconstruct_live_supervisor_state() {
        let config = fast();
        // Live supervisor: drive a recoverable worker through 2 panics.
        let mut live = Supervisor::new(config, 1);
        let mut w = FlakyWorker {
            ra: 0,
            bad: vec![0, 1],
            recoverable: true,
            recoveries: 0,
        };
        for round in 0..2 {
            let _ = live.guard(0, &mut w, &info(round));
        }
        let resumed = Supervisor::with_panic_counts(config, &[2]);
        assert_eq!(resumed.restarts(0), live.restarts(0));
        assert_eq!(resumed.is_dead(0), live.is_dead(0));
        // Past the budget (max_restarts = 3): the slot resumes dead.
        let dead = Supervisor::with_panic_counts(config, &[4]);
        assert!(dead.is_dead(0));
        assert_eq!(dead.restarts(0), config.max_restarts);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let config = SupervisorConfig {
            max_restarts: 10,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(35),
        };
        assert_eq!(config.backoff(0), Duration::from_millis(10));
        assert_eq!(config.backoff(1), Duration::from_millis(20));
        assert_eq!(config.backoff(2), Duration::from_millis(35));
        assert_eq!(config.backoff(60), Duration::from_millis(35));
    }
}
