//! The length-prefixed wire format for the networked runtime.
//!
//! Every message crossing a transport is one *frame*:
//!
//! ```text
//! ┌─────────┬──────────────┬───────────────────┐
//! │ tag: u8 │ len: u32 LE  │ payload: len bytes │
//! └─────────┴──────────────┴───────────────────┘
//! ```
//!
//! The payload encoding is hand-rolled little-endian (the runtime crate is
//! dependency-free by design): integers as fixed-width LE, `f64` as its
//! IEEE-754 bit pattern (bit-exact round-trip — the determinism contract
//! extends across the wire), sequences as a `u32` count followed by the
//! elements, byte strings as a `u32` length followed by the bytes.
//!
//! Decoding NEVER panics: truncated frames, oversized length prefixes,
//! unknown tags, trailing garbage, and malformed payloads all surface as a
//! typed [`FrameError`]. Length prefixes are validated against
//! [`MAX_PAYLOAD_LEN`] *before* any allocation, so a hostile or corrupt
//! peer cannot trigger an allocation bomb.

use crate::msg::{Control, CoordInfo};

/// Version carried in the `Hello`/`HelloAck` handshake. Peers with
/// different versions refuse to talk (typed
/// [`crate::TransportError::VersionMismatch`]), never mis-parse.
///
/// History: v2 added the slice-lifecycle byte sequence to the `Round`
/// frame (dynamic workloads).
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a frame payload (1 MiB). A length prefix beyond this is
/// rejected as [`FrameError::Oversized`] before allocating.
pub const MAX_PAYLOAD_LEN: usize = 1 << 20;

/// Bytes in the frame header (`tag` + `len`).
pub const HEADER_LEN: usize = 5;

/// Rejection code: peer speaks an incompatible protocol version.
pub const REJECT_VERSION: u32 = 1;
/// Rejection code: the announced RA index is outside the coordinator's
/// worker range.
pub const REJECT_UNKNOWN_RA: u32 = 2;

/// A typed frame-decode failure. Every variant is a protocol observation,
/// not a crash: the codec is total over arbitrary byte strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the announced frame did.
    Truncated {
        /// Bytes the frame (or field) announced.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD_LEN`].
    Oversized {
        /// The announced payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The tag byte names no known message.
    UnknownTag(u8),
    /// The payload decoded cleanly but left unconsumed bytes behind.
    Trailing {
        /// Leftover byte count.
        extra: usize,
    },
    /// A field held a value outside its domain (bad bool byte, unknown
    /// control kind, invalid UTF-8, ...).
    BadValue(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: payload {len} exceeds max {max}")
            }
            FrameError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            FrameError::Trailing { extra } => {
                write!(f, "malformed payload: {extra} trailing bytes")
            }
            FrameError::BadValue(what) => write!(f, "malformed payload: bad {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// The complete wire vocabulary: handshake, registration plane, and the
/// round protocol ([`CoordInfo`] down, report up, [`Control`] sideband).
/// Report bodies cross the wire as opaque bytes — the orchestration layer
/// owns their encoding, the runtime only frames them.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Client → server: first frame on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
        /// The RA this connection serves.
        ra: u64,
    },
    /// Server → client: handshake accepted (versions match).
    HelloAck {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Server → client: connection refused; see the `REJECT_*` codes.
    Reject {
        /// Why the connection was refused.
        code: u32,
    },
    /// Worker → coordinator: ε-ORC-style node registration.
    Register {
        /// The registering RA.
        ra: u64,
        /// Capability bitmask (see [`crate::registration::caps`]).
        capabilities: u32,
        /// Advertised capacity (slices servable).
        capacity: f64,
        /// The node's self-declared failure deadline: rounds without a
        /// refresh after which it must be considered down.
        lease_rounds: u64,
    },
    /// Coordinator → worker: registration recorded.
    RegisterAck {
        /// The next round the coordinator will broadcast.
        next_round: u64,
        /// Whether this registration re-joined a previously expired node.
        rejoin: bool,
    },
    /// Worker → coordinator: lease refresh, tagged with the last round the
    /// worker processed so liveness accounting stays round-deterministic.
    Refresh {
        /// The refreshing RA.
        ra: u64,
        /// The last round the worker served.
        round: u64,
    },
    /// Coordinator → worker: one round's `z − y` broadcast.
    Round(CoordInfo),
    /// Worker → coordinator: one round's outcome; `body` is the
    /// orchestration payload, already encoded.
    Report {
        /// The reporting RA.
        ra: u64,
        /// The round the report belongs to.
        round: u64,
        /// The report exists but missed its deadline (straggler).
        deadline_missed: bool,
        /// Encoded round outcome, or `None` for a dark RA.
        body: Option<Vec<u8>>,
    },
    /// Coordinator → worker: a control message.
    Ctl(Control),
    /// Worker → coordinator: the worker caught a panic and cannot report
    /// this round; mirrors the in-process supervisor's down event.
    Down {
        /// The downed RA.
        ra: u64,
        /// The round the failure was observed in.
        round: u64,
        /// The panic message.
        cause: String,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_REJECT: u8 = 3;
const TAG_REGISTER: u8 = 4;
const TAG_REGISTER_ACK: u8 = 5;
const TAG_REFRESH: u8 = 6;
const TAG_ROUND: u8 = 7;
const TAG_REPORT: u8 = 8;
const TAG_CTL: u8 = 9;
const TAG_DOWN: u8 = 10;

const CTL_CHECKPOINT: u8 = 0;
const CTL_REJOIN: u8 = 1;
const CTL_SHUTDOWN: u8 = 2;

/// Encodes `msg` as one complete frame (header + payload). Fails only if
/// the payload would exceed [`MAX_PAYLOAD_LEN`] (an oversized report
/// body).
pub fn encode(msg: &WireMsg) -> Result<Vec<u8>, FrameError> {
    let mut p = Vec::with_capacity(64);
    let tag = match msg {
        WireMsg::Hello { version, ra } => {
            put_u32(&mut p, *version);
            put_u64(&mut p, *ra);
            TAG_HELLO
        }
        WireMsg::HelloAck { version } => {
            put_u32(&mut p, *version);
            TAG_HELLO_ACK
        }
        WireMsg::Reject { code } => {
            put_u32(&mut p, *code);
            TAG_REJECT
        }
        WireMsg::Register {
            ra,
            capabilities,
            capacity,
            lease_rounds,
        } => {
            put_u64(&mut p, *ra);
            put_u32(&mut p, *capabilities);
            put_f64(&mut p, *capacity);
            put_u64(&mut p, *lease_rounds);
            TAG_REGISTER
        }
        WireMsg::RegisterAck { next_round, rejoin } => {
            put_u64(&mut p, *next_round);
            p.push(u8::from(*rejoin));
            TAG_REGISTER_ACK
        }
        WireMsg::Refresh { ra, round } => {
            put_u64(&mut p, *ra);
            put_u64(&mut p, *round);
            TAG_REFRESH
        }
        WireMsg::Round(info) => {
            put_u64(&mut p, info.round as u64);
            put_u64(&mut p, info.ra as u64);
            put_f64_seq(&mut p, &info.zy)?;
            put_bytes(&mut p, &info.lifecycle)?;
            TAG_ROUND
        }
        WireMsg::Report {
            ra,
            round,
            deadline_missed,
            body,
        } => {
            put_u64(&mut p, *ra);
            put_u64(&mut p, *round);
            p.push(u8::from(*deadline_missed));
            match body {
                None => p.push(0),
                Some(bytes) => {
                    p.push(1);
                    put_bytes(&mut p, bytes)?;
                }
            }
            TAG_REPORT
        }
        WireMsg::Ctl(ctl) => {
            match ctl {
                Control::Checkpoint => {
                    p.push(CTL_CHECKPOINT);
                    put_u64(&mut p, 0);
                }
                Control::Rejoin { round } => {
                    p.push(CTL_REJOIN);
                    put_u64(&mut p, *round as u64);
                }
                Control::Shutdown => {
                    p.push(CTL_SHUTDOWN);
                    put_u64(&mut p, 0);
                }
            }
            TAG_CTL
        }
        WireMsg::Down { ra, round, cause } => {
            put_u64(&mut p, *ra);
            put_u64(&mut p, *round);
            put_bytes(&mut p, cause.as_bytes())?;
            TAG_DOWN
        }
    };
    if p.len() > MAX_PAYLOAD_LEN {
        return Err(FrameError::Oversized {
            len: p.len(),
            max: MAX_PAYLOAD_LEN,
        });
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + p.len());
    frame.push(tag);
    frame.extend_from_slice(&(p.len() as u32).to_le_bytes());
    frame.extend_from_slice(&p);
    Ok(frame)
}

/// Inspects a (possibly partial) buffer: `Ok(Some(total))` when the header
/// is readable and announces a `total`-byte frame (header included);
/// `Ok(None)` when more header bytes are needed; `Err` when the header
/// itself is invalid (oversized length prefix) — the streaming reader's
/// "how much to read next" primitive.
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, FrameError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&buf[1..HEADER_LEN]);
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(FrameError::Oversized {
            len,
            max: MAX_PAYLOAD_LEN,
        });
    }
    Ok(Some(HEADER_LEN + len))
}

/// Decodes exactly one complete frame from the front of `buf`, returning
/// the message and the bytes consumed. A buffer shorter than the frame is
/// [`FrameError::Truncated`] (streaming readers call [`frame_len`] first
/// and only decode complete frames, so `Truncated` there means EOF
/// mid-frame).
pub fn decode(buf: &[u8]) -> Result<(WireMsg, usize), FrameError> {
    let total = match frame_len(buf)? {
        Some(total) => total,
        None => {
            return Err(FrameError::Truncated {
                needed: HEADER_LEN,
                have: buf.len(),
            })
        }
    };
    if buf.len() < total {
        return Err(FrameError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    let tag = buf.first().copied().unwrap_or_default();
    let mut r = Reader {
        buf: &buf[HEADER_LEN..total],
        pos: 0,
    };
    let msg = match tag {
        TAG_HELLO => WireMsg::Hello {
            version: r.u32()?,
            ra: r.u64()?,
        },
        TAG_HELLO_ACK => WireMsg::HelloAck { version: r.u32()? },
        TAG_REJECT => WireMsg::Reject { code: r.u32()? },
        TAG_REGISTER => WireMsg::Register {
            ra: r.u64()?,
            capabilities: r.u32()?,
            capacity: r.f64()?,
            lease_rounds: r.u64()?,
        },
        TAG_REGISTER_ACK => WireMsg::RegisterAck {
            next_round: r.u64()?,
            rejoin: r.bool()?,
        },
        TAG_REFRESH => WireMsg::Refresh {
            ra: r.u64()?,
            round: r.u64()?,
        },
        TAG_ROUND => {
            let round = r.index()?;
            let ra = r.index()?;
            let zy = r.f64_seq()?;
            let lifecycle = r.bytes()?.to_vec();
            WireMsg::Round(CoordInfo {
                round,
                ra,
                zy,
                lifecycle,
            })
        }
        TAG_REPORT => {
            let ra = r.u64()?;
            let round = r.u64()?;
            let deadline_missed = r.bool()?;
            let body = if r.bool()? {
                Some(r.bytes()?.to_vec())
            } else {
                None
            };
            WireMsg::Report {
                ra,
                round,
                deadline_missed,
                body,
            }
        }
        TAG_CTL => {
            let kind = r.u8()?;
            let round = r.index()?;
            let ctl = match kind {
                CTL_CHECKPOINT => Control::Checkpoint,
                CTL_REJOIN => Control::Rejoin { round },
                CTL_SHUTDOWN => Control::Shutdown,
                _ => return Err(FrameError::BadValue("control kind")),
            };
            WireMsg::Ctl(ctl)
        }
        TAG_DOWN => {
            let ra = r.u64()?;
            let round = r.u64()?;
            let cause = match String::from_utf8(r.bytes()?.to_vec()) {
                Ok(s) => s,
                Err(_) => return Err(FrameError::BadValue("utf-8 string")),
            };
            WireMsg::Down { ra, round, cause }
        }
        other => return Err(FrameError::UnknownTag(other)),
    };
    let extra = r.remaining();
    if extra > 0 {
        return Err(FrameError::Trailing { extra });
    }
    Ok((msg, total))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) -> Result<(), FrameError> {
    if bytes.len() > MAX_PAYLOAD_LEN {
        return Err(FrameError::Oversized {
            len: bytes.len(),
            max: MAX_PAYLOAD_LEN,
        });
    }
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
    Ok(())
}

fn put_f64_seq(out: &mut Vec<u8>, xs: &[f64]) -> Result<(), FrameError> {
    if xs.len() > MAX_PAYLOAD_LEN / 8 {
        return Err(FrameError::Oversized {
            len: xs.len() * 8,
            max: MAX_PAYLOAD_LEN,
        });
    }
    put_u32(out, xs.len() as u32);
    for &x in xs {
        put_f64(out, x);
    }
    Ok(())
}

/// A bounds-checked payload cursor: every read is total, returning
/// [`FrameError::Truncated`] instead of slicing out of range.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let have = self.buf.len() - self.pos;
        if n > have {
            return Err(FrameError::Truncated { needed: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?.first().copied().unwrap_or_default())
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FrameError::BadValue("bool byte")),
        }
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` narrowed to `usize` (round/RA indices).
    fn index(&mut self) -> Result<usize, FrameError> {
        usize::try_from(self.u64()?).map_err(|_| FrameError::BadValue("index width"))
    }

    fn bytes(&mut self) -> Result<&'a [u8], FrameError> {
        let len = self.u32()? as usize;
        // Validate against the remaining payload *before* `take` so a
        // hostile length can never drive an allocation.
        let have = self.remaining();
        if len > have {
            return Err(FrameError::Truncated { needed: len, have });
        }
        self.take(len)
    }

    fn f64_seq(&mut self) -> Result<Vec<f64>, FrameError> {
        let count = self.u32()? as usize;
        let have = self.remaining();
        if count.saturating_mul(8) > have {
            return Err(FrameError::Truncated {
                needed: count.saturating_mul(8),
                have,
            });
        }
        let mut xs = Vec::with_capacity(count);
        for _ in 0..count {
            xs.push(self.f64()?);
        }
        Ok(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello {
                version: PROTOCOL_VERSION,
                ra: 3,
            },
            WireMsg::HelloAck {
                version: PROTOCOL_VERSION,
            },
            WireMsg::Reject {
                code: REJECT_VERSION,
            },
            WireMsg::Register {
                ra: 1,
                capabilities: 0b101,
                capacity: 3.5,
                lease_rounds: 2,
            },
            WireMsg::RegisterAck {
                next_round: 7,
                rejoin: true,
            },
            WireMsg::Refresh { ra: 0, round: 41 },
            WireMsg::Round(CoordInfo {
                round: 12,
                ra: 1,
                zy: vec![0.25, -1.5, f64::MIN_POSITIVE, 0.1 + 0.2],
                lifecycle: vec![7, 0, 255, 1],
            }),
            WireMsg::Round(CoordInfo {
                round: 13,
                ra: 0,
                zy: vec![],
                lifecycle: vec![],
            }),
            WireMsg::Report {
                ra: 2,
                round: 12,
                deadline_missed: true,
                body: Some(vec![0, 1, 2, 255]),
            },
            WireMsg::Report {
                ra: 2,
                round: 13,
                deadline_missed: false,
                body: None,
            },
            WireMsg::Ctl(Control::Checkpoint),
            WireMsg::Ctl(Control::Rejoin { round: 9 }),
            WireMsg::Ctl(Control::Shutdown),
            WireMsg::Down {
                ra: 1,
                round: 4,
                cause: "panic: injected".to_string(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips_bit_exactly() {
        for msg in samples() {
            let frame = encode(&msg).expect("encode");
            let (decoded, consumed) = decode(&frame).expect("decode");
            assert_eq!(consumed, frame.len());
            assert_eq!(decoded, msg, "round-trip mismatch");
        }
    }

    #[test]
    fn f64_payloads_round_trip_by_bits() {
        for x in [0.0, -0.0, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, 1e-300] {
            let msg = WireMsg::Round(CoordInfo {
                round: 0,
                ra: 0,
                zy: vec![x],
                lifecycle: Vec::new(),
            });
            let (decoded, _) = decode(&encode(&msg).unwrap()).unwrap();
            let WireMsg::Round(info) = decoded else {
                panic!("wrong variant");
            };
            assert_eq!(info.zy[0].to_bits(), x.to_bits());
        }
    }

    #[test]
    fn truncated_frames_are_typed_never_panic() {
        // Fuzz-style: every strict prefix of every sample frame decodes to
        // a typed Truncated error (or, for header prefixes, needs-more).
        for msg in samples() {
            let frame = encode(&msg).unwrap();
            for cut in 0..frame.len() {
                let prefix = &frame[..cut];
                match decode(prefix) {
                    Err(FrameError::Truncated { .. }) => {}
                    other => panic!("prefix {cut}/{} of {msg:?}: {other:?}", frame.len()),
                }
                // The streaming primitive agrees: short header => None,
                // short payload => known total length.
                match frame_len(prefix) {
                    Ok(None) => assert!(cut < HEADER_LEN),
                    Ok(Some(total)) => assert_eq!(total, frame.len()),
                    Err(e) => panic!("frame_len on prefix {cut}: {e}"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut frame = vec![TAG_REPORT];
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            frame_len(&frame),
            Err(FrameError::Oversized {
                len: u32::MAX as usize,
                max: MAX_PAYLOAD_LEN,
            })
        );
        assert!(matches!(decode(&frame), Err(FrameError::Oversized { .. })));
    }

    #[test]
    fn unknown_and_garbage_tags_are_typed() {
        for tag in [0u8, 42, 99, 255] {
            let mut frame = vec![tag];
            frame.extend_from_slice(&0u32.to_le_bytes());
            assert_eq!(decode(&frame), Err(FrameError::UnknownTag(tag)));
        }
    }

    #[test]
    fn inner_length_bombs_are_truncated_not_allocated() {
        // A Report whose body length field claims 500 KiB with 4 bytes
        // present: the decoder must reject without allocating 500 KiB.
        let mut p = Vec::new();
        put_u64(&mut p, 0); // ra
        put_u64(&mut p, 0); // round
        p.push(0); // deadline_missed
        p.push(1); // has body
        put_u32(&mut p, 512 * 1024); // hostile body length
        p.extend_from_slice(&[1, 2, 3, 4]);
        let mut frame = vec![TAG_REPORT];
        frame.extend_from_slice(&(p.len() as u32).to_le_bytes());
        frame.extend_from_slice(&p);
        assert!(matches!(
            decode(&frame),
            Err(FrameError::Truncated { needed, .. }) if needed == 512 * 1024
        ));
        // Same for a Round claiming 2^31 f64s.
        let mut p = Vec::new();
        put_u64(&mut p, 0);
        put_u64(&mut p, 0);
        put_u32(&mut p, u32::MAX / 2);
        let mut frame = vec![TAG_ROUND];
        frame.extend_from_slice(&(p.len() as u32).to_le_bytes());
        frame.extend_from_slice(&p);
        assert!(matches!(decode(&frame), Err(FrameError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_and_bad_values_are_typed() {
        // Trailing garbage after a valid HelloAck payload.
        let mut frame = vec![TAG_HELLO_ACK];
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        frame.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(decode(&frame), Err(FrameError::Trailing { extra: 4 }));
        // Bad bool byte in a RegisterAck.
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        p.push(7); // rejoin flag must be 0/1
        let mut frame = vec![TAG_REGISTER_ACK];
        frame.extend_from_slice(&(p.len() as u32).to_le_bytes());
        frame.extend_from_slice(&p);
        assert_eq!(decode(&frame), Err(FrameError::BadValue("bool byte")));
        // Unknown control kind.
        let mut p = Vec::new();
        p.push(9);
        put_u64(&mut p, 0);
        let mut frame = vec![TAG_CTL];
        frame.extend_from_slice(&(p.len() as u32).to_le_bytes());
        frame.extend_from_slice(&p);
        assert_eq!(decode(&frame), Err(FrameError::BadValue("control kind")));
    }

    #[test]
    fn random_byte_soup_never_panics() {
        // Deterministic xorshift soup: decode must return *something* typed
        // for every slice — the codec is total.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut soup = Vec::with_capacity(4096);
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            soup.push((state & 0xff) as u8);
        }
        for start in (0..soup.len()).step_by(7) {
            let slice = &soup[start..];
            let _ = decode(slice); // must not panic
            let _ = frame_len(slice);
        }
    }

    #[test]
    fn oversized_encode_is_refused() {
        let msg = WireMsg::Report {
            ra: 0,
            round: 0,
            deadline_missed: false,
            body: Some(vec![0u8; MAX_PAYLOAD_LEN + 1]),
        };
        assert!(matches!(encode(&msg), Err(FrameError::Oversized { .. })));
    }
}
