//! The transport layer: how coordinator and workers exchange
//! [`WireMsg`] frames when they are *not* sharing an address space.
//!
//! Two implementations of one [`Transport`] trait:
//!
//! - [`LoopbackTransport`] — a deterministic in-memory pipe: `mpsc`
//!   channels carrying *encoded frames*, so the loopback path exercises
//!   the exact codec the sockets use and differs from UDS only in the
//!   byte pipe underneath. This is the default; the classic in-process
//!   engine ([`crate::Engine`]) remains untouched above it.
//! - [`FramedTransport`] — length-prefixed frames over a byte stream
//!   ([`NetStream`]: Unix-domain or TCP socket), with buffered partial
//!   reads, per-receive deadlines, and per-send bounded-backoff retry.
//!
//! Failure discipline: every error is typed ([`TransportError`]); a
//! malformed peer surfaces as a [`FrameError`], a dead peer as
//! [`TransportError::Disconnected`], a slow peer as
//! [`TransportError::Timeout`] — never a panic, never an unbounded block.
//!
//! Wall-clock note: this module is one of the lint's two sanctioned
//! wall-clock quarantines (with [`crate::clock`]). Socket deadlines are
//! wall-clock by nature — a receive budget must keep draining across
//! partial reads, and retry pacing is real elapsed time. Nothing here
//! feeds round *outcomes*: timing only decides when a typed failure is
//! reported, and lease accounting upstream is round-based.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use crate::frame::{self, FrameError, WireMsg, PROTOCOL_VERSION, REJECT_VERSION};

/// A typed transport failure. `Timeout` and `Disconnected` are ordinary
/// protocol observations (the registration plane turns sustained silence
/// into lease expiry); the rest are diagnostics for the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer sent bytes that do not decode.
    Frame(FrameError),
    /// An OS-level I/O failure outside the timeout/disconnect taxonomy.
    Io {
        /// The failing operation (`"read"`, `"write"`, `"connect"`, ...).
        op: &'static str,
        /// The `std::io::ErrorKind` observed.
        kind: ErrorKind,
        /// The OS error message.
        detail: String,
    },
    /// No complete frame arrived within the receive budget.
    Timeout,
    /// The peer is gone: EOF, closed channel, or reset connection.
    Disconnected,
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u32,
        /// The version the peer announced.
        theirs: u32,
    },
    /// The peer refused the connection with a `REJECT_*` code.
    Rejected {
        /// The rejection code.
        code: u32,
    },
    /// A send was abandoned after exhausting its retry budget.
    SendExhausted {
        /// Write attempts made.
        attempts: usize,
        /// The final failure, rendered.
        last: String,
    },
    /// The peer answered the handshake with an unexpected message.
    HandshakeProtocol(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Frame(e) => write!(f, "frame error: {e}"),
            TransportError::Io { op, kind, detail } => {
                write!(f, "i/o error during {op} ({kind:?}): {detail}")
            }
            TransportError::Timeout => write!(f, "receive deadline expired"),
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            TransportError::Rejected { code } => {
                write!(f, "peer rejected connection (code {code})")
            }
            TransportError::SendExhausted { attempts, last } => {
                write!(f, "send abandoned after {attempts} attempts: {last}")
            }
            TransportError::HandshakeProtocol(what) => {
                write!(f, "handshake protocol violation: {what}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

/// Per-link send counters, drained by the coordinator into
/// [`crate::net::NetStats`] so `RunReport` can distinguish "network
/// flaked but recovered" (retries) from "worker died" (abandoned sends,
/// lease expiry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Write attempts retried after a transient failure.
    pub retries: usize,
    /// Sends abandoned after the retry budget ran out.
    pub abandoned: usize,
}

impl LinkStats {
    /// Folds `other` into `self`.
    pub fn absorb(&mut self, other: LinkStats) {
        self.retries += other.retries;
        self.abandoned += other.abandoned;
    }
}

/// Bounded-backoff retry policy for sends: up to `max_attempts` writes,
/// sleeping `backoff_base * 2^n` (capped at `backoff_max`) between them,
/// all under a hard `send_budget` wall-clock ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total write attempts per frame (first try included).
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per retry.
    pub backoff_base: Duration,
    /// Cap on any single backoff sleep.
    pub backoff_max: Duration,
    /// Hard wall-clock ceiling on one frame's send (attempts + sleeps).
    pub send_budget: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(200),
            send_budget: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The backoff slept before retry `n` (0-based), doubling and
    /// saturating at `backoff_max`.
    #[must_use]
    pub fn backoff(&self, n: usize) -> Duration {
        let factor = 1u32 << n.min(16) as u32;
        self.backoff_base
            .checked_mul(factor)
            .map_or(self.backoff_max, |d| d.min(self.backoff_max))
    }
}

/// A bidirectional, message-oriented link carrying [`WireMsg`] frames.
pub trait Transport: Send {
    /// Sends one message (retrying per the transport's policy).
    fn send(&mut self, msg: &WireMsg) -> Result<(), TransportError>;

    /// Receives the next message, waiting at most `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<WireMsg, TransportError>;

    /// Drains and resets this link's send counters.
    fn take_stats(&mut self) -> LinkStats {
        LinkStats::default()
    }

    /// A short label for diagnostics (`"loopback"`, `"uds"`, `"tcp"`).
    fn kind(&self) -> &'static str;
}

/// The deterministic in-memory transport: encoded frames over `mpsc`.
/// Sends cannot flake (no retry machinery), receives decode the exact
/// bytes a socket peer would have seen.
#[derive(Debug)]
pub struct LoopbackTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// A connected pair of loopback endpoints.
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        LoopbackTransport { tx: a_tx, rx: a_rx },
        LoopbackTransport { tx: b_tx, rx: b_rx },
    )
}

impl Transport for LoopbackTransport {
    fn send(&mut self, msg: &WireMsg) -> Result<(), TransportError> {
        let bytes = frame::encode(msg)?;
        self.tx
            .send(bytes)
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<WireMsg, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => {
                let (msg, consumed) = frame::decode(&bytes)?;
                if consumed != bytes.len() {
                    return Err(FrameError::Trailing {
                        extra: bytes.len() - consumed,
                    }
                    .into());
                }
                Ok(msg)
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn kind(&self) -> &'static str {
        "loopback"
    }
}

/// The byte-stream interface [`FramedTransport`] frames over: blocking
/// reads/writes plus a read timeout — implemented by real sockets
/// ([`NetStream`]) and by test fakes injecting transient write failures.
pub trait ByteStream: Send {
    /// Reads into `buf`, returning 0 at EOF.
    fn read_bytes(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
    /// Writes the whole buffer.
    fn write_bytes(&mut self, buf: &[u8]) -> std::io::Result<()>;
    /// Sets the blocking-read timeout (never `None` here; the framed
    /// layer always reads under a deadline).
    fn set_read_timeout(&mut self, timeout: Duration) -> std::io::Result<()>;
    /// The stream flavor (`"uds"` / `"tcp"`).
    fn kind(&self) -> &'static str;
}

/// A real socket: Unix-domain on Unix hosts, TCP everywhere.
#[derive(Debug)]
pub enum NetStream {
    /// A Unix-domain stream socket.
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl ByteStream for NetStream {
    fn read_bytes(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            NetStream::Unix(s) => s.read(buf),
            NetStream::Tcp(s) => s.read(buf),
        }
    }

    fn write_bytes(&mut self, buf: &[u8]) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            NetStream::Unix(s) => s.write_all(buf),
            NetStream::Tcp(s) => s.write_all(buf),
        }
    }

    fn set_read_timeout(&mut self, timeout: Duration) -> std::io::Result<()> {
        // A zero timeout means "disable timeouts" to the OS; clamp up so
        // an expired deadline still surfaces as WouldBlock, not a hang.
        let t = timeout.max(Duration::from_millis(1));
        match self {
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_read_timeout(Some(t)),
            NetStream::Tcp(s) => s.set_read_timeout(Some(t)),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            #[cfg(unix)]
            NetStream::Unix(_) => "uds",
            NetStream::Tcp(_) => "tcp",
        }
    }
}

/// Length-prefixed framing over a [`ByteStream`]: buffers partial reads
/// until a complete frame is available, retries transient write failures
/// under [`RetryPolicy`].
#[derive(Debug)]
pub struct FramedTransport<S: ByteStream = NetStream> {
    stream: S,
    rbuf: Vec<u8>,
    retry: RetryPolicy,
    stats: LinkStats,
}

impl<S: ByteStream> FramedTransport<S> {
    /// Frames over `stream` with the given retry policy.
    pub fn new(stream: S, retry: RetryPolicy) -> Self {
        Self {
            stream,
            rbuf: Vec::with_capacity(4096),
            retry,
            stats: LinkStats::default(),
        }
    }

    /// Whether an I/O failure is worth retrying: transient conditions
    /// only. A broken pipe or reset connection is terminal — the peer is
    /// gone and the lease, not the retry loop, decides what that means.
    fn transient(kind: ErrorKind) -> bool {
        matches!(
            kind,
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
        )
    }
}

impl<S: ByteStream> Transport for FramedTransport<S> {
    fn send(&mut self, msg: &WireMsg) -> Result<(), TransportError> {
        let bytes = frame::encode(msg)?;
        let deadline = Instant::now() + self.retry.send_budget;
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let err = match self.stream.write_bytes(&bytes) {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            let out_of_budget = attempts >= self.retry.max_attempts || Instant::now() >= deadline;
            if Self::transient(err.kind()) && !out_of_budget {
                self.stats.retries += 1;
                let backoff = self.retry.backoff(attempts - 1);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                continue;
            }
            self.stats.abandoned += 1;
            return Err(TransportError::SendExhausted {
                attempts,
                last: err.to_string(),
            });
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<WireMsg, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(total) = frame::frame_len(&self.rbuf)? {
                if self.rbuf.len() >= total {
                    let (msg, consumed) = frame::decode(&self.rbuf)?;
                    self.rbuf.drain(..consumed);
                    return Ok(msg);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            if self.stream.set_read_timeout(deadline - now).is_err() {
                return Err(TransportError::Disconnected);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read_bytes(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if Self::transient(e.kind()) => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::BrokenPipe
                            | ErrorKind::ConnectionReset
                            | ErrorKind::ConnectionAborted
                            | ErrorKind::UnexpectedEof
                    ) =>
                {
                    return Err(TransportError::Disconnected)
                }
                Err(e) => {
                    return Err(TransportError::Io {
                        op: "read",
                        kind: e.kind(),
                        detail: e.to_string(),
                    })
                }
            }
        }
    }

    fn take_stats(&mut self) -> LinkStats {
        std::mem::take(&mut self.stats)
    }

    fn kind(&self) -> &'static str {
        self.stream.kind()
    }
}

/// A listening socket accepting [`NetStream`] peers without blocking the
/// round loop (the listener is non-blocking; `poll_accept` returns
/// `Ok(None)` when nobody is knocking).
#[derive(Debug)]
pub enum NetListener {
    /// A Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
    /// A TCP listener.
    Tcp(TcpListener),
}

impl NetListener {
    /// Binds a non-blocking Unix-domain listener at `path`.
    #[cfg(unix)]
    pub fn bind_uds(path: &std::path::Path) -> Result<Self, TransportError> {
        let l = UnixListener::bind(path).map_err(|e| io_err("bind", &e))?;
        l.set_nonblocking(true).map_err(|e| io_err("bind", &e))?;
        Ok(NetListener::Unix(l))
    }

    /// Binds a non-blocking TCP listener at `addr` (e.g. `127.0.0.1:0`).
    pub fn bind_tcp(addr: &str) -> Result<Self, TransportError> {
        let l = TcpListener::bind(addr).map_err(|e| io_err("bind", &e))?;
        l.set_nonblocking(true).map_err(|e| io_err("bind", &e))?;
        Ok(NetListener::Tcp(l))
    }

    /// The bound TCP address, if this is a TCP listener.
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match self {
            NetListener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            NetListener::Unix(_) => None,
        }
    }

    /// Accepts one pending peer, or `Ok(None)` if none is waiting.
    /// Accepted streams are switched back to blocking mode (the framed
    /// layer drives them with read timeouts).
    pub fn poll_accept(
        &self,
        retry: RetryPolicy,
    ) -> Result<Option<FramedTransport<NetStream>>, TransportError> {
        let stream = match self {
            #[cfg(unix)]
            NetListener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false).map_err(|e| io_err("accept", &e))?;
                    NetStream::Unix(s)
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(io_err("accept", &e)),
            },
            NetListener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false).map_err(|e| io_err("accept", &e))?;
                    NetStream::Tcp(s)
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(io_err("accept", &e)),
            },
        };
        Ok(Some(FramedTransport::new(stream, retry)))
    }
}

fn io_err(op: &'static str, e: &std::io::Error) -> TransportError {
    TransportError::Io {
        op,
        kind: e.kind(),
        detail: e.to_string(),
    }
}

/// Connects to a Unix-domain coordinator socket, retrying while the
/// listener comes up (bounded by `budget`).
#[cfg(unix)]
pub fn connect_uds(
    path: &std::path::Path,
    retry: RetryPolicy,
    budget: Duration,
) -> Result<FramedTransport<NetStream>, TransportError> {
    let deadline = Instant::now() + budget;
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(FramedTransport::new(NetStream::Unix(s), retry)),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io_err("connect", &e));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Connects to a TCP coordinator socket, retrying while the listener
/// comes up (bounded by `budget`).
pub fn connect_tcp(
    addr: &str,
    retry: RetryPolicy,
    budget: Duration,
) -> Result<FramedTransport<NetStream>, TransportError> {
    let deadline = Instant::now() + budget;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(FramedTransport::new(NetStream::Tcp(s), retry)),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io_err("connect", &e));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// The client half of the versioned handshake: announce `Hello`, await
/// `HelloAck`. A silent server is a typed [`TransportError::Timeout`], a
/// dead one [`TransportError::Disconnected`] — never a hang past
/// `timeout`.
pub fn client_handshake<T: Transport>(
    t: &mut T,
    ra: usize,
    timeout: Duration,
) -> Result<(), TransportError> {
    t.send(&WireMsg::Hello {
        version: PROTOCOL_VERSION,
        ra: ra as u64,
    })?;
    match t.recv_timeout(timeout)? {
        WireMsg::HelloAck { version } if version == PROTOCOL_VERSION => Ok(()),
        WireMsg::HelloAck { version } => Err(TransportError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        }),
        WireMsg::Reject { code } => Err(TransportError::Rejected { code }),
        WireMsg::Hello { .. }
        | WireMsg::Register { .. }
        | WireMsg::RegisterAck { .. }
        | WireMsg::Refresh { .. }
        | WireMsg::Round(_)
        | WireMsg::Report { .. }
        | WireMsg::Ctl(_)
        | WireMsg::Down { .. } => Err(TransportError::HandshakeProtocol(
            "expected HelloAck or Reject",
        )),
    }
}

/// The server half of the versioned handshake: await `Hello`, answer
/// `HelloAck` (or `Reject` on a version mismatch). Returns the RA the
/// connection announces. Bounded by `timeout`: a connecting-but-silent
/// client cannot stall the coordinator.
pub fn server_handshake<T: Transport>(
    t: &mut T,
    timeout: Duration,
) -> Result<usize, TransportError> {
    match t.recv_timeout(timeout)? {
        WireMsg::Hello { version, ra } if version == PROTOCOL_VERSION => {
            t.send(&WireMsg::HelloAck {
                version: PROTOCOL_VERSION,
            })?;
            usize::try_from(ra).map_err(|_| TransportError::Frame(FrameError::BadValue("ra width")))
        }
        WireMsg::Hello { version, .. } => {
            let _ = t.send(&WireMsg::Reject {
                code: REJECT_VERSION,
            });
            Err(TransportError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            })
        }
        WireMsg::HelloAck { .. }
        | WireMsg::Reject { .. }
        | WireMsg::Register { .. }
        | WireMsg::RegisterAck { .. }
        | WireMsg::Refresh { .. }
        | WireMsg::Round(_)
        | WireMsg::Report { .. }
        | WireMsg::Ctl(_)
        | WireMsg::Down { .. } => Err(TransportError::HandshakeProtocol("expected Hello")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn loopback_round_trips_and_reports_disconnect() {
        let (mut a, mut b) = loopback_pair();
        a.send(&WireMsg::Refresh { ra: 1, round: 4 }).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap(),
            WireMsg::Refresh { ra: 1, round: 4 }
        );
        assert_eq!(
            b.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Timeout)
        );
        drop(a);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Disconnected)
        );
        assert_eq!(
            b.send(&WireMsg::Refresh { ra: 1, round: 5 }),
            Err(TransportError::Disconnected)
        );
    }

    /// A scriptable byte stream: a shared in-memory pipe whose writes can
    /// be told to fail transiently or terminally.
    #[derive(Clone, Default)]
    struct FakeStream {
        inner: Arc<Mutex<FakeInner>>,
    }

    #[derive(Default)]
    struct FakeInner {
        data: Vec<u8>,
        transient_failures: usize,
        terminal: bool,
        eof: bool,
    }

    impl ByteStream for FakeStream {
        fn read_bytes(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let mut g = self.inner.lock().expect("invariant: test mutex unpoisoned");
            if g.data.is_empty() {
                if g.eof {
                    return Ok(0);
                }
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "no data"));
            }
            let n = buf.len().min(g.data.len());
            buf[..n].copy_from_slice(&g.data[..n]);
            g.data.drain(..n);
            Ok(n)
        }

        fn write_bytes(&mut self, buf: &[u8]) -> std::io::Result<()> {
            let mut g = self.inner.lock().expect("invariant: test mutex unpoisoned");
            if g.terminal {
                return Err(std::io::Error::new(ErrorKind::BrokenPipe, "gone"));
            }
            if g.transient_failures > 0 {
                g.transient_failures -= 1;
                return Err(std::io::Error::new(ErrorKind::Interrupted, "flake"));
            }
            g.data.extend_from_slice(buf);
            Ok(())
        }

        fn set_read_timeout(&mut self, _t: Duration) -> std::io::Result<()> {
            Ok(())
        }

        fn kind(&self) -> &'static str {
            "fake"
        }
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::ZERO,
            backoff_max: Duration::ZERO,
            send_budget: Duration::from_secs(1),
        }
    }

    #[test]
    fn transient_write_failures_are_retried_and_counted() {
        let stream = FakeStream::default();
        stream.inner.lock().unwrap().transient_failures = 2;
        let mut t = FramedTransport::new(stream.clone(), fast_retry());
        t.send(&WireMsg::HelloAck { version: 1 }).unwrap();
        assert_eq!(
            t.take_stats(),
            LinkStats {
                retries: 2,
                abandoned: 0
            }
        );
        // The frame landed after the flakes: readable from the same pipe.
        let mut rx = FramedTransport::new(stream, fast_retry());
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(50)).unwrap(),
            WireMsg::HelloAck { version: 1 }
        );
    }

    #[test]
    fn retry_budget_is_bounded_then_typed() {
        let stream = FakeStream::default();
        stream.inner.lock().unwrap().transient_failures = 99;
        let mut t = FramedTransport::new(stream, fast_retry());
        let err = t.send(&WireMsg::HelloAck { version: 1 }).unwrap_err();
        assert!(
            matches!(err, TransportError::SendExhausted { attempts: 3, .. }),
            "{err:?}"
        );
        assert_eq!(t.take_stats().abandoned, 1);
    }

    #[test]
    fn terminal_write_failures_abandon_immediately() {
        let stream = FakeStream::default();
        stream.inner.lock().unwrap().terminal = true;
        let mut t = FramedTransport::new(stream, fast_retry());
        let err = t.send(&WireMsg::HelloAck { version: 1 }).unwrap_err();
        assert!(matches!(
            err,
            TransportError::SendExhausted { attempts: 1, .. }
        ));
        let stats = t.take_stats();
        assert_eq!(stats.retries, 0, "broken pipes are not retried");
        assert_eq!(stats.abandoned, 1);
    }

    #[test]
    fn partial_frames_are_buffered_across_reads() {
        let stream = FakeStream::default();
        let frame = frame::encode(&WireMsg::Refresh { ra: 2, round: 9 }).unwrap();
        // Feed the frame three bytes at a time.
        let mut t = FramedTransport::new(stream.clone(), fast_retry());
        for chunk in frame.chunks(3) {
            stream.inner.lock().unwrap().data.extend_from_slice(chunk);
            if stream.inner.lock().unwrap().data.is_empty() && chunk.len() < 3 {
                continue;
            }
        }
        assert_eq!(
            t.recv_timeout(Duration::from_millis(100)).unwrap(),
            WireMsg::Refresh { ra: 2, round: 9 }
        );
    }

    #[test]
    fn eof_mid_frame_is_disconnected_within_deadline() {
        let stream = FakeStream::default();
        let frame = frame::encode(&WireMsg::Refresh { ra: 2, round: 9 }).unwrap();
        {
            let mut g = stream.inner.lock().unwrap();
            g.data.extend_from_slice(&frame[..4]); // header cut short
            g.eof = true;
        }
        let mut t = FramedTransport::new(stream, fast_retry());
        assert_eq!(
            t.recv_timeout(Duration::from_millis(100)),
            Err(TransportError::Disconnected)
        );
    }

    #[test]
    fn garbage_bytes_surface_as_typed_frame_errors() {
        let stream = FakeStream::default();
        {
            let mut g = stream.inner.lock().unwrap();
            g.data.push(0xEE); // unknown tag
            g.data.extend_from_slice(&0u32.to_le_bytes());
        }
        let mut t = FramedTransport::new(stream, fast_retry());
        assert_eq!(
            t.recv_timeout(Duration::from_millis(100)),
            Err(TransportError::Frame(FrameError::UnknownTag(0xEE)))
        );
    }

    #[test]
    fn recv_deadline_is_honored() {
        let stream = FakeStream::default(); // never delivers
        let mut t = FramedTransport::new(stream, fast_retry());
        let start = Instant::now();
        assert_eq!(
            t.recv_timeout(Duration::from_millis(30)),
            Err(TransportError::Timeout)
        );
        assert!(start.elapsed() < Duration::from_secs(5), "must not hang");
    }

    #[test]
    fn handshake_happy_path_and_version_mismatch() {
        let (mut client, mut server) = loopback_pair();
        let t = std::thread::spawn(move || {
            let ra = server_handshake(&mut server, Duration::from_secs(1)).unwrap();
            assert_eq!(ra, 5);
        });
        client_handshake(&mut client, 5, Duration::from_secs(1)).unwrap();
        t.join().unwrap();

        // A server that acks a different version is a typed mismatch.
        let (mut client, mut bad_server) = loopback_pair();
        bad_server
            .send(&WireMsg::HelloAck { version: 999 })
            .unwrap();
        let err = client_handshake(&mut client, 0, Duration::from_secs(1)).unwrap_err();
        assert_eq!(
            err,
            TransportError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: 999
            }
        );
    }

    #[test]
    fn mid_handshake_disconnect_is_typed_not_hung() {
        let (mut client, server) = loopback_pair();
        drop(server); // peer dies before answering Hello
        let err = client_handshake(&mut client, 0, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, TransportError::Disconnected);

        // Server side: client connects then goes silent — bounded wait.
        let (client, mut server) = loopback_pair();
        let start = Instant::now();
        let err = server_handshake(&mut server, Duration::from_millis(30)).unwrap_err();
        assert_eq!(err, TransportError::Timeout);
        assert!(start.elapsed() < Duration::from_secs(5));
        drop(client);
    }

    #[test]
    fn uds_sockets_carry_frames_end_to_end() {
        #[cfg(unix)]
        {
            let dir = std::env::temp_dir()
                .join(format!("edgeslice-transport-test-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("t.sock");
            let _ = std::fs::remove_file(&path);
            let listener = NetListener::bind_uds(&path).unwrap();
            let clientside = std::thread::spawn({
                let path = path.clone();
                move || {
                    let mut t =
                        connect_uds(&path, RetryPolicy::default(), Duration::from_secs(2)).unwrap();
                    client_handshake(&mut t, 3, Duration::from_secs(2)).unwrap();
                    t.send(&WireMsg::Refresh { ra: 3, round: 1 }).unwrap();
                    t
                }
            });
            let mut server = loop {
                if let Some(t) = listener.poll_accept(RetryPolicy::default()).unwrap() {
                    break t;
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            let ra = server_handshake(&mut server, Duration::from_secs(2)).unwrap();
            assert_eq!(ra, 3);
            assert_eq!(
                server.recv_timeout(Duration::from_secs(2)).unwrap(),
                WireMsg::Refresh { ra: 3, round: 1 }
            );
            let client = clientside.join().unwrap();
            drop(client);
            // EOF after the peer drops: typed disconnect.
            assert_eq!(
                server.recv_timeout(Duration::from_secs(2)),
                Err(TransportError::Disconnected)
            );
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_dir(&dir);
        }
    }
}
