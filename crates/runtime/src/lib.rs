//! # edgeslice-runtime
//!
//! The decentralized execution engine underneath
//! `edgeslice::EdgeSliceSystem`: each resource autonomy's orchestration
//! agent runs on its own worker thread and exchanges typed messages with a
//! coordinator task over `mpsc` channels, exactly mirroring the paper's
//! deployment story (one agent per RA, a lightweight central performance
//! coordinator, `z − y` broadcasts downstream and `Σ_t U` reports
//! upstream).
//!
//! The engine is deliberately generic: it knows nothing about ADMM, DDPG
//! or network slicing. It owns three concerns and nothing else:
//!
//! 1. **Topology** — a [`Scheduler`] picks between a single-threaded
//!    in-process loop ([`Scheduler::Sequential`]) and `n` worker threads
//!    ([`Scheduler::Threaded`]) multiplexing the RA workers. Both drive
//!    the *same* round protocol, so a parallel run is bit-identical to a
//!    sequential one whenever workers draw randomness from their own
//!    [`derive_stream_seed`]-derived streams.
//! 2. **The round protocol** — per round the coordinator broadcasts one
//!    [`CoordInfo`] per RA, every worker runs its round and answers with a
//!    [`RaReport`], and the coordinator folds the reports into its next
//!    update. [`Control`] messages handle checkpointing, rejoin re-sync
//!    and shutdown.
//! 3. **Deadlines** — the coordinator waits at most
//!    [`Engine::with_deadline`] per round for the report channel. A report
//!    that misses the wall-clock deadline (a hung or genuinely slow
//!    worker) is dropped as stale when it finally arrives, and the RA is
//!    handed to the caller as *missing* — the degraded-coordination path
//!    is a real missed message, not a simulated flag. Injected stragglers
//!    additionally mark their reports [`RaReport::deadline_missed`] so
//!    fault schedules stay deterministic across schedulers.
//! 4. **Supervision** — every `run_round` call is guarded by a
//!    [`Supervisor`]: a panicking worker is caught, restarted under a
//!    bounded exponential-backoff budget, and surfaced to the coordinator
//!    as a typed [`WorkerDown`] event in the per-round [`RoundTelemetry`]
//!    (alongside counts of discarded stale/malformed reports and the
//!    deadline-vs-disconnect distinction). A crash is data, not absence.
//!
//! Determinism contract: with per-worker RNG streams, no wall-clock
//! deadline expiry, and deterministic workers, `Sequential` and
//! `Threaded(n)` produce identical report sequences for every `n` — a
//! contract that extends to deterministic (injected) panics, because both
//! schedulers run the same supervisor policy per worker slot.
//!
//! **Networked mode.** The same round protocol also runs across process
//! boundaries: a [`Transport`] carries length-prefixed [`WireMsg`] frames
//! (deterministic in-memory [`LoopbackTransport`], or [`FramedTransport`]
//! over UDS/TCP with a versioned handshake and bounded send retries), a
//! [`RegistrationPlane`] tracks ε-ORC-style worker registrations with
//! round-based leases, and a [`NetCoordinator`]/[`WorkerSession`] pair
//! drives rounds over those links. A vanished process is detected by its
//! *lapsed lease* — surfaced as [`DownCause::LeaseExpired`] through the
//! same [`WorkerDown`] telemetry as an in-process panic — never by a mere
//! socket disconnect, so the degraded-coordination path is identical in
//! and out of process.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
mod engine;
pub mod frame;
mod msg;
mod net;
mod registration;
mod seed;
mod supervisor;
mod transport;

pub use clock::{Clock, MockClock, RoundDeadline, TimePoint};
pub use engine::{par_map, Engine, EngineReport, RoundCoordinator, RoundTelemetry, RoundWorker};
pub use frame::{FrameError, WireMsg, PROTOCOL_VERSION};
pub use msg::{Control, CoordInfo, RaReport};
pub use net::{
    channel_acceptor, Acceptor, ChannelAcceptor, ListenerAcceptor, NetConfig, NetCoordinator,
    NetStats, WorkerAck, WorkerCommand, WorkerSession,
};
pub use registration::{
    caps, Lease, NodeInfo, RegStats, Registration, RegistrationError, RegistrationPlane,
};
pub use seed::{derive_stream_seed, DOMAIN_FAULTS, DOMAIN_ORCH, DOMAIN_ROUND, DOMAIN_TRAIN};
pub use supervisor::{DownCause, Supervisor, SupervisorConfig, WorkerDown};
pub use transport::{
    client_handshake, connect_tcp, connect_uds, loopback_pair, server_handshake, ByteStream,
    FramedTransport, LinkStats, LoopbackTransport, NetListener, NetStream, RetryPolicy, Transport,
    TransportError,
};

/// How the engine maps RA workers onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Run every worker inline on the caller's thread, in RA order. The
    /// reference topology: zero concurrency, zero channels.
    Sequential,
    /// Run workers on `n` dedicated threads (capped at the worker count),
    /// each owning a contiguous shard of RAs, with `mpsc` channels to the
    /// coordinator task. `Threaded(1)` is the protocol with all its
    /// messaging but no parallelism — useful for isolating channel bugs.
    Threaded(usize),
}

impl Scheduler {
    /// A threaded scheduler sized to the host's available parallelism
    /// (falling back to `Sequential` on single-core hosts).
    pub fn auto() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => Scheduler::Threaded(n.get()),
            _ => Scheduler::Sequential,
        }
    }

    /// The number of worker threads this scheduler would spawn for
    /// `n_workers` RAs (0 for `Sequential`).
    pub fn threads(&self, n_workers: usize) -> usize {
        match *self {
            Scheduler::Sequential => 0,
            Scheduler::Threaded(n) => n.max(1).min(n_workers),
        }
    }
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheduler::Sequential => write!(f, "sequential"),
            Scheduler::Threaded(n) => write!(f, "threaded({n})"),
        }
    }
}
