//! The typed messages exchanged between the coordinator task and the RA
//! workers. Three message kinds cover the whole protocol, matching the
//! paper's low-overhead coordination story (Sec. IV): one downstream
//! broadcast, one upstream report, and a small control vocabulary.

/// Downstream, coordinator → worker: the coordinating information for one
/// RA in one round — the per-slice `z_{i,j} − y_{i,j}` signal that is the
/// *only* payload EdgeSlice's coordinator ever sends an agent, plus an
/// opaque slice-lifecycle payload for dynamic-workload runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordInfo {
    /// Engine-local round index (0-based within this run).
    pub round: usize,
    /// The RA this message addresses.
    pub ra: usize,
    /// `z − y`, one entry per slice.
    pub zy: Vec<f64>,
    /// Encoded slice-lifecycle state for this round (see
    /// [`crate::RoundCoordinator::lifecycle_delta`]). Empty for static
    /// workloads; the engine never interprets the bytes.
    pub lifecycle: Vec<u8>,
}

/// Upstream, worker → coordinator: one RA's round outcome.
///
/// The payload `B` is opaque to the engine (the orchestration layer puts
/// its achieved `Σ_t U`, end-of-round load and monitor rows there);
/// `body: None` means the RA was dark the whole round and served nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct RaReport<B> {
    /// The reporting RA.
    pub ra: usize,
    /// Engine-local round index the report belongs to. Reports whose round
    /// is behind the coordinator's current round are dropped as stale.
    pub round: usize,
    /// The report exists but missed the round deadline (an injected
    /// straggler): the coordinator must treat the RA as missing this round
    /// even though its traffic was served.
    pub deadline_missed: bool,
    /// The round outcome, or `None` for a dark RA.
    pub body: Option<B>,
}

/// Control messages, coordinator → worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Snapshot the worker's policy (make-before-break: taken at outage
    /// start so a rejoining RA redeploys the exact pre-outage policy).
    Checkpoint,
    /// Re-sync after an outage or a missed deadline: flush stale local
    /// state and restore the checkpointed policy before `round` runs.
    Rejoin {
        /// The first round the worker will serve again.
        round: usize,
    },
    /// Tear the worker down; no further messages follow.
    Shutdown,
}
