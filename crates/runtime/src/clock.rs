//! The runtime's **only** wall-clock access point.
//!
//! The determinism contract (crate docs) makes every worker a pure
//! function of `(master_seed, ra, round)` — which is exactly why
//! `Instant::now()` is banned by `edgeslice-lint`'s `determinism` rule
//! everywhere in `runtime`/`core`/`netsim` *except* this module. The one
//! thing that legitimately needs real time is the per-round report
//! deadline: a hung worker must eventually lose its round, and only the
//! wall clock can say "eventually". Quarantining that read here keeps the
//! exemption auditable: any new wall-clock dependency has to either land
//! in this file (and be justified in review) or trip the lint.
//!
//! Deadline expiry is *observable* nondeterminism by design — it is
//! reported as [`crate::RoundTelemetry::deadline_expired`], never silently
//! folded into the round result, and the default budget is generous
//! enough (30 s) that healthy runs never hit it.

use std::time::{Duration, Instant};

/// A wall-clock deadline for one coordination round: constructed when the
/// round's gather phase starts, then polled for the remaining budget on
/// every channel receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundDeadline {
    at: Instant,
}

impl RoundDeadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self {
            at: Instant::now() + budget,
        }
    }

    /// Time left until the deadline ([`Duration::ZERO`] once passed) —
    /// the timeout to hand to the next blocking channel receive.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_counts_down_and_saturates() {
        let d = RoundDeadline::after(Duration::from_secs(60));
        let r = d.remaining();
        assert!(r <= Duration::from_secs(60));
        assert!(
            r > Duration::from_secs(59),
            "60s budget cannot drain instantly"
        );
        let expired = RoundDeadline::after(Duration::ZERO);
        assert_eq!(expired.remaining(), Duration::ZERO);
    }
}
