//! The runtime's **only** wall-clock access point.
//!
//! The determinism contract (crate docs) makes every worker a pure
//! function of `(master_seed, ra, round)` — which is exactly why
//! `Instant::now()` is banned by `edgeslice-lint`'s `determinism` rule
//! everywhere in `runtime`/`core`/`netsim` *except* this module and the
//! socket transport (`transport.rs`, whose read/retry deadlines are
//! wall-clock by nature — see the lint's `WALL_CLOCK_QUARANTINE`). The
//! things that legitimately need real time are the per-round report
//! deadline and the lease backstop: a hung worker must eventually lose
//! its round, and only the wall clock can say "eventually". Quarantining
//! those reads keeps the exemption auditable: any new wall-clock
//! dependency has to either land in a quarantined module (and be
//! justified in review) or trip the lint.
//!
//! Deadline expiry is *observable* nondeterminism by design — it is
//! reported as [`crate::RoundTelemetry::deadline_expired`], never silently
//! folded into the round result, and the default budget is generous
//! enough (30 s) that healthy runs never hit it.
//!
//! For lease/heartbeat logic the module additionally provides a *mockable*
//! clock: [`Clock`] yields monotonic [`TimePoint`]s either from the real
//! wall ([`Clock::wall`]) or from a hand-advanced counter
//! ([`Clock::mock`]), so registration-plane deadline tests never sleep.
//! Consumers take `TimePoint` parameters instead of reading time
//! themselves, which keeps them out of the quarantine entirely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock deadline for one coordination round: constructed when the
/// round's gather phase starts, then polled for the remaining budget on
/// every channel receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundDeadline {
    at: Instant,
}

impl RoundDeadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self {
            at: Instant::now() + budget,
        }
    }

    /// Time left until the deadline ([`Duration::ZERO`] once passed) —
    /// the timeout to hand to the next blocking channel receive.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// A monotonic instant in milliseconds since the owning [`Clock`]'s
/// epoch. Plain data: consumers compare and subtract `TimePoint`s, they
/// never read the clock themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimePoint {
    millis: u64,
}

impl TimePoint {
    /// A time point `millis` ms after the clock epoch.
    pub fn from_millis(millis: u64) -> Self {
        Self { millis }
    }

    /// Milliseconds since the clock epoch.
    pub fn millis(self) -> u64 {
        self.millis
    }

    /// Milliseconds elapsed since `earlier` (0 if `earlier` is later —
    /// monotonic clocks never require negative elapsed time).
    pub fn millis_since(self, earlier: TimePoint) -> u64 {
        self.millis.saturating_sub(earlier.millis)
    }
}

/// A time source for lease/heartbeat deadlines: either the real monotonic
/// wall clock or a hand-advanced mock, so deadline logic is testable
/// without sleeping. Cloning a mock clock shares its state — a test holds
/// the [`MockClock`] handle and every consumer clone observes `advance`.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Real time: [`Instant`] reads relative to a fixed epoch.
    Wall {
        /// The instant `TimePoint::from_millis(0)` refers to.
        epoch: Instant,
    },
    /// Mock time: reads the shared counter, advanced only by the test.
    Mock(Arc<AtomicU64>),
}

impl Clock {
    /// A real wall clock with its epoch at construction time.
    pub fn wall() -> Self {
        Clock::Wall {
            epoch: Instant::now(),
        }
    }

    /// A mock clock starting at 0 ms, plus the handle that advances it.
    pub fn mock() -> (Self, MockClock) {
        let state = Arc::new(AtomicU64::new(0));
        (Clock::Mock(Arc::clone(&state)), MockClock(state))
    }

    /// The current time point.
    pub fn now(&self) -> TimePoint {
        match self {
            Clock::Wall { epoch } => {
                let elapsed = epoch.elapsed().as_millis();
                TimePoint::from_millis(u64::try_from(elapsed).unwrap_or(u64::MAX))
            }
            Clock::Mock(state) => TimePoint::from_millis(state.load(Ordering::SeqCst)),
        }
    }
}

/// The test-side handle to a [`Clock::Mock`]: the only way mock time moves.
#[derive(Debug, Clone)]
pub struct MockClock(Arc<AtomicU64>);

impl MockClock {
    /// Advances mock time by `d` (saturating on overflow).
    pub fn advance(&self, d: Duration) {
        let ms = u64::try_from(d.as_millis()).unwrap_or(u64::MAX);
        let prev = self.0.load(Ordering::SeqCst);
        self.0.store(prev.saturating_add(ms), Ordering::SeqCst);
    }

    /// Sets mock time to an absolute millisecond count.
    pub fn set_millis(&self, millis: u64) {
        self.0.store(millis, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_counts_down_and_saturates() {
        let d = RoundDeadline::after(Duration::from_secs(60));
        let r = d.remaining();
        assert!(r <= Duration::from_secs(60));
        assert!(
            r > Duration::from_secs(59),
            "60s budget cannot drain instantly"
        );
        let expired = RoundDeadline::after(Duration::ZERO);
        assert_eq!(expired.remaining(), Duration::ZERO);
    }

    #[test]
    fn mock_clock_only_moves_when_advanced() {
        let (clock, handle) = Clock::mock();
        let observer = clock.clone();
        assert_eq!(clock.now(), TimePoint::from_millis(0));
        handle.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), TimePoint::from_millis(250));
        // Clones share the counter — no clone-local time.
        assert_eq!(observer.now(), TimePoint::from_millis(250));
        handle.set_millis(1000);
        assert_eq!(observer.now().millis(), 1000);
    }

    #[test]
    fn time_point_arithmetic_saturates() {
        let a = TimePoint::from_millis(100);
        let b = TimePoint::from_millis(350);
        assert_eq!(b.millis_since(a), 250);
        assert_eq!(a.millis_since(b), 0, "elapsed time never negative");
    }

    #[test]
    fn wall_clock_is_monotonic_nondecreasing() {
        let clock = Clock::wall();
        let t0 = clock.now();
        let t1 = clock.now();
        assert!(t1 >= t0);
    }
}
