//! End-to-end RA lifecycle test: attach users, reconfigure all three
//! domains repeatedly, and check every substrate invariant the paper's
//! managers rely on.

use edgeslice_netsim::app::AppProfile;
use edgeslice_netsim::ra::{DomainShares, ResourceAutonomy};
use edgeslice_netsim::transport::ReconfigMode;
use proptest::prelude::*;

#[test]
fn repeated_reconfiguration_keeps_all_invariants() {
    let mut ra = ResourceAutonomy::prototype(0, 2);
    let apps = [AppProfile::traffic_heavy(), AppProfile::compute_heavy()];
    for step in 0..50 {
        let phase = step as f64 / 50.0;
        let shares = [
            DomainShares::new(0.2 + 0.6 * phase, 0.5, 0.8 - 0.6 * phase),
            DomainShares::new(0.8 - 0.6 * phase, 0.5, 0.2 + 0.6 * phase),
        ];
        let times = ra.service_times(&shares, &apps);
        assert!(
            times.iter().all(|t| t.is_finite() && *t > 0.0),
            "step {step}: {times:?}"
        );
        ra.submit_task(0, &apps[0]);
        ra.submit_task(1, &apps[1]);
        ra.advance_gpu(0.2);
    }
    assert!(ra.gpu_isolated(), "kernel-split occupancy bound violated");
    assert_eq!(
        ra.transport().outage_seconds(),
        0.0,
        "make-before-break must never cause outage"
    );
}

#[test]
fn break_before_make_accumulates_outage_at_every_reconfig() {
    let mut ra = ResourceAutonomy::prototype(0, 2);
    ra.set_reconfig_mode(ReconfigMode::BreakBeforeMake);
    let apps = [AppProfile::traffic_heavy(), AppProfile::compute_heavy()];
    for _ in 0..3 {
        ra.service_times(
            &[
                DomainShares::new(0.5, 0.5, 0.5),
                DomainShares::new(0.5, 0.5, 0.5),
            ],
            &apps,
        );
    }
    // First apply installs; the next two re-configure 2 flows × 6 switches
    // × 50 ms each.
    let expected = 2.0 * 2.0 * 6.0 * 0.05;
    assert!((ra.transport().outage_seconds() - expected).abs() < 1e-9);
}

proptest! {
    #[test]
    fn rates_scale_monotonically_with_shares(
        lo in 0.05f64..0.45,
        hi in 0.55f64..0.95,
    ) {
        let mut ra = ResourceAutonomy::prototype(0, 2);
        let small = ra.apply(&[
            DomainShares::new(lo, lo, lo),
            DomainShares::new(0.1, 0.1, 0.1),
        ]);
        let big = ra.apply(&[
            DomainShares::new(hi, hi, hi),
            DomainShares::new(0.1, 0.1, 0.1),
        ]);
        prop_assert!(big[0].radio_mbps >= small[0].radio_mbps);
        prop_assert!(big[0].transport_mbps > small[0].transport_mbps);
        prop_assert!(big[0].compute_gflops_s > small[0].compute_gflops_s);
    }

    #[test]
    fn total_granted_radio_never_exceeds_cell(
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let mut ra = ResourceAutonomy::prototype(0, 2);
        let rates = ra.apply(&[
            DomainShares::new(a, 0.5, 0.5),
            DomainShares::new(b, 0.5, 0.5),
        ]);
        let total: f64 = rates.iter().map(|r| r.radio_mbps).sum();
        prop_assert!(total <= ra.enodeb().cell_rate_mbps() + 1e-9);
    }
}
