//! # edgeslice-netsim
//!
//! Simulated wireless edge computing network for the EdgeSlice
//! reproduction — the software stand-in for the paper's hardware prototype
//! (Table II: OAI eNodeBs + USRPs, OpenDayLight + 6 OpenFlow switches,
//! CUDA GTX 1080 Ti edge servers).
//!
//! Each technical domain is modeled at the level the paper's resource
//! managers manipulate it:
//!
//! * [`radio`] — eNodeBs with PRB grids, slice-aware consecutive user
//!   scheduling, IMSI extraction from S1AP (Sec. V-A);
//! * [`transport`] — OpenFlow switches with flow tables and rate meters, an
//!   SDN controller with make-before-break reconfiguration (Sec. V-B);
//! * [`topology`] — capacitated switch graphs with shortest-path routing
//!   and reservations (the mesh generalization of the prototype chain);
//! * [`compute`] — MPS-shared GPUs with the kernel-split occupancy bound
//!   (Sec. V-C);
//! * [`app`] — the YOLO video-analytics offloading workload (Sec. VII-A);
//! * [`traffic`] — Poisson arrivals and synthetic diurnal traces standing
//!   in for the Telecom Italia Trento dataset (Sec. VI-B, VII-D);
//! * [`queue`] — per-slice FIFO service queues (Fig. 5);
//! * [`ra`] — a resource autonomy composing one eNodeB, transport path and
//!   GPU (Sec. II);
//! * [`dataset`] — the 10%-granularity grid-search dataset and local linear
//!   regression of the simulated environment (Sec. VI-B).
//!
//! # Examples
//!
//! ```
//! use edgeslice_netsim::app::AppProfile;
//! use edgeslice_netsim::ra::{DomainShares, ResourceAutonomy};
//!
//! let mut ra = ResourceAutonomy::prototype(0, 2);
//! let times = ra.service_times(
//!     &[DomainShares::new(0.7, 0.7, 0.3), DomainShares::new(0.3, 0.3, 0.7)],
//!     &[AppProfile::traffic_heavy(), AppProfile::compute_heavy()],
//! );
//! assert!(times.iter().all(|t| t.is_finite()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod app;
pub mod compute;
pub mod dataset;
pub mod queue;
pub mod ra;
pub mod radio;
pub mod topology;
pub mod traffic;
pub mod transport;

pub use app::{service_time_seconds, AppProfile, ComputationModel, FrameResolution};
pub use dataset::{GridDataset, RaCapacities, SERVICE_TIME_CAP_S};
pub use queue::ServiceQueue;
pub use ra::{DomainShares, ResourceAutonomy, SliceRates};
pub use traffic::{
    sample_poisson, BlockRandomPoisson, CsvTrace, DiurnalTrace, PoissonTraffic, TrafficSource,
};
pub use transport::ReconfigMode;
