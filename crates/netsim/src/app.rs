//! The mobile application model (paper Sec. VII-A).
//!
//! The prototype's workload is a video-analytics offloading app: a user
//! uploads a camera frame, the edge server runs YOLO object detection and
//! returns the result. Two knobs shape its multi-domain resource footprint:
//!
//! * **frame resolution** (100×100 … 500×500) — drives the radio and
//!   transport traffic per task;
//! * **computation model** (YOLO 320/416/608) — drives the GPU workload per
//!   task.
//!
//! Slice 1 in the experiments uses 500×500 frames + YOLO-320 (traffic-heavy,
//! moderate compute); slice 2 uses 100×100 + YOLO-608 (light traffic,
//! compute-intensive).

use serde::{Deserialize, Serialize};

/// Uploaded frame resolution (square frames, pixels per side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameResolution {
    /// 100×100 pixels.
    R100,
    /// 300×300 pixels.
    R300,
    /// 500×500 pixels.
    R500,
}

impl FrameResolution {
    /// All resolutions offered by the prototype app.
    pub const ALL: [FrameResolution; 3] = [
        FrameResolution::R100,
        FrameResolution::R300,
        FrameResolution::R500,
    ];

    /// Pixels per side.
    pub fn side(self) -> u32 {
        match self {
            FrameResolution::R100 => 100,
            FrameResolution::R300 => 300,
            FrameResolution::R500 => 500,
        }
    }

    /// Bits transmitted per frame (uplink). 24-bit color at ~10:1 JPEG
    /// compression.
    pub fn bits_per_frame(self) -> f64 {
        let px = (self.side() as f64).powi(2);
        px * 24.0 / 10.0
    }
}

/// The YOLO variant executed at the edge (network input size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputationModel {
    /// YOLO with 320×320 network input.
    Yolo320,
    /// YOLO with 416×416 network input.
    Yolo416,
    /// YOLO with 608×608 network input.
    Yolo608,
}

impl ComputationModel {
    /// All computation models offered by the prototype app.
    pub const ALL: [ComputationModel; 3] = [
        ComputationModel::Yolo320,
        ComputationModel::Yolo416,
        ComputationModel::Yolo608,
    ];

    /// Network input side in pixels.
    pub fn input_side(self) -> u32 {
        match self {
            ComputationModel::Yolo320 => 320,
            ComputationModel::Yolo416 => 416,
            ComputationModel::Yolo608 => 608,
        }
    }

    /// Per-frame inference workload in GFLOPs. YOLOv2/v3 FLOPs scale with
    /// the square of the input side; anchored so YOLO-608 ≈ 140 GFLOP
    /// (the published YOLOv3-608 figure).
    pub fn gflops_per_frame(self) -> f64 {
        let s = self.input_side() as f64;
        140.0 * (s * s) / (608.0 * 608.0)
    }
}

/// A slice's application profile: its per-task multi-domain demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Uploaded frame resolution.
    pub resolution: FrameResolution,
    /// Edge-side computation model.
    pub model: ComputationModel,
}

impl AppProfile {
    /// Creates a profile.
    pub fn new(resolution: FrameResolution, model: ComputationModel) -> Self {
        Self { resolution, model }
    }

    /// Slice 1 of the experiments: heavy traffic, moderate compute
    /// (500×500 frames, YOLO-320).
    pub fn traffic_heavy() -> Self {
        Self::new(FrameResolution::R500, ComputationModel::Yolo320)
    }

    /// Slice 2 of the experiments: light traffic, intensive compute
    /// (100×100 frames, YOLO-608).
    pub fn compute_heavy() -> Self {
        Self::new(FrameResolution::R100, ComputationModel::Yolo608)
    }

    /// Radio bits per task (frame upload; the returned detection result is
    /// negligible by comparison).
    pub fn radio_bits(&self) -> f64 {
        self.resolution.bits_per_frame()
    }

    /// Transport bits per task (the frame traverses the RAN→edge link).
    pub fn transport_bits(&self) -> f64 {
        self.resolution.bits_per_frame()
    }

    /// GPU workload per task in GFLOPs.
    pub fn compute_gflops(&self) -> f64 {
        self.model.gflops_per_frame()
    }
}

/// End-to-end service time of one task under the given domain rates
/// (paper Sec. VII-A procedure: upload → inference → result).
///
/// * `radio_mbps` — scheduled radio rate for the slice user,
/// * `transport_mbps` — metered transport bandwidth,
/// * `compute_gflops_s` — GPU throughput granted by the computing manager.
///
/// Returns `f64::INFINITY` when any stage has zero rate (the user is not
/// scheduled / has no meter / no threads), matching the radio manager's
/// rule that zero-resource users are simply not served.
pub fn service_time_seconds(
    app: &AppProfile,
    radio_mbps: f64,
    transport_mbps: f64,
    compute_gflops_s: f64,
) -> f64 {
    if radio_mbps <= 0.0 || transport_mbps <= 0.0 || compute_gflops_s <= 0.0 {
        return f64::INFINITY;
    }
    let radio = app.radio_bits() / (radio_mbps * 1e6);
    let transport = app.transport_bits() / (transport_mbps * 1e6);
    let compute = app.compute_gflops() / compute_gflops_s;
    radio + transport + compute
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_traffic_ordering() {
        assert!(FrameResolution::R100.bits_per_frame() < FrameResolution::R300.bits_per_frame());
        assert!(FrameResolution::R300.bits_per_frame() < FrameResolution::R500.bits_per_frame());
        // 500×500 is 25× the pixels of 100×100.
        let ratio = FrameResolution::R500.bits_per_frame() / FrameResolution::R100.bits_per_frame();
        assert!((ratio - 25.0).abs() < 1e-9);
    }

    #[test]
    fn model_workload_ordering() {
        assert!(
            ComputationModel::Yolo320.gflops_per_frame()
                < ComputationModel::Yolo416.gflops_per_frame()
        );
        assert!(
            ComputationModel::Yolo416.gflops_per_frame()
                < ComputationModel::Yolo608.gflops_per_frame()
        );
        assert!((ComputationModel::Yolo608.gflops_per_frame() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn archetypes_have_opposite_footprints() {
        let s1 = AppProfile::traffic_heavy();
        let s2 = AppProfile::compute_heavy();
        assert!(s1.radio_bits() > s2.radio_bits() * 10.0);
        assert!(s2.compute_gflops() > s1.compute_gflops() * 2.0);
    }

    #[test]
    fn service_time_decomposes_across_domains() {
        let app = AppProfile::traffic_heavy();
        let t = service_time_seconds(&app, 10.0, 40.0, 100.0);
        let radio = app.radio_bits() / 10e6;
        let transport = app.transport_bits() / 40e6;
        let compute = app.compute_gflops() / 100.0;
        assert!((t - (radio + transport + compute)).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_means_unserved() {
        let app = AppProfile::compute_heavy();
        assert!(service_time_seconds(&app, 0.0, 40.0, 100.0).is_infinite());
        assert!(service_time_seconds(&app, 10.0, 0.0, 100.0).is_infinite());
        assert!(service_time_seconds(&app, 10.0, 40.0, 0.0).is_infinite());
    }

    #[test]
    fn more_resources_never_slow_service() {
        let app = AppProfile::traffic_heavy();
        let slow = service_time_seconds(&app, 5.0, 20.0, 50.0);
        let fast = service_time_seconds(&app, 10.0, 40.0, 100.0);
        assert!(fast < slow);
    }
}
