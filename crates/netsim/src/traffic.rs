//! Traffic generation.
//!
//! The prototype experiments use Poisson task arrivals with mean rate 10
//! per interval (Sec. VII-C); the simulations are driven by the Telecom
//! Italia "Big Data Challenge" trace over the Province of Trento — 24-hour
//! calling-activity profiles per geographic area (Sec. VII-D). The real
//! trace is proprietary, so [`DiurnalTrace`] synthesizes per-area 24-hour
//! profiles with the published shape (overnight trough, business-hours
//! plateau, evening peak) and per-area amplitude/phase diversity;
//! [`CsvTrace`] loads a real trace if one is available.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A source of per-interval task arrivals for one slice in one RA.
pub trait TrafficSource {
    /// Mean arrivals for `interval` (used by baselines that look ahead).
    fn mean_rate(&self, interval: usize) -> f64;

    /// Samples the arrivals for `interval`.
    fn arrivals(&self, interval: usize, rng: &mut StdRng) -> f64;
}

/// Samples a Poisson random variate with the given mean (Knuth for small
/// means, normal approximation above 30 for speed).
pub fn sample_poisson(mean: f64, rng: &mut StdRng) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (mean + mean.sqrt() * n + 0.5).max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Stationary Poisson arrivals (the prototype experiments' traffic).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonTraffic {
    rate: f64,
}

impl PoissonTraffic {
    /// Creates a source with the given mean arrivals per interval.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "invalid Poisson rate {rate}"
        );
        Self { rate }
    }

    /// The paper's experimental rate: 10 tasks per interval (Sec. VII-C).
    pub fn paper() -> Self {
        Self::new(10.0)
    }
}

impl TrafficSource for PoissonTraffic {
    fn mean_rate(&self, _interval: usize) -> f64 {
        self.rate
    }

    fn arrivals(&self, _interval: usize, rng: &mut StdRng) -> f64 {
        sample_poisson(self.rate, rng) as f64
    }
}

/// A synthetic 24-hour calling-activity profile for one geographic area,
/// standing in for the Telecom Italia Trento trace.
///
/// The profile follows the trace's published shape: a deep overnight trough
/// (02:00–05:00), a steep morning ramp, a daytime plateau and an evening
/// peak, scaled and phase-shifted per area. Hours wrap, so an experiment may
/// run any number of 24-interval periods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalTrace {
    /// Mean arrivals for each of the 24 hours.
    hourly: Vec<f64>,
    /// Multiplicative sampling jitter (0 = deterministic).
    jitter: f64,
}

impl DiurnalTrace {
    /// Synthesizes an area profile. `peak_rate` scales the evening peak;
    /// `phase_hours` shifts the profile (areas differ in activity timing);
    /// `jitter` adds relative sampling noise.
    ///
    /// # Panics
    ///
    /// Panics if `peak_rate` is not positive.
    pub fn synthesize(peak_rate: f64, phase_hours: f64, jitter: f64) -> Self {
        assert!(peak_rate > 0.0, "peak rate must be positive");
        let hourly = (0..24)
            .map(|h| {
                let t = (h as f64 - phase_hours).rem_euclid(24.0);
                peak_rate * Self::shape(t)
            })
            .collect();
        Self {
            hourly,
            jitter: jitter.max(0.0),
        }
    }

    /// Synthesizes a randomized area profile, the per-area diversity used in
    /// the scalability simulations.
    pub fn random_area(base_rate: f64, rng: &mut StdRng) -> Self {
        let peak = base_rate * rng.gen_range(0.7..1.3);
        let phase = rng.gen_range(-2.0..2.0);
        Self::synthesize(peak, phase, 0.15)
    }

    /// Normalized 24-hour shape in `[~0.12, 1.0]`: trough at 03:00–05:00,
    /// morning ramp, daytime plateau, evening peak around 20:00.
    fn shape(t: f64) -> f64 {
        // Sum of two Gaussian bumps (midday plateau, evening peak) over a
        // small overnight floor.
        let bump = |center: f64, width: f64| {
            let mut d = (t - center).abs();
            d = d.min(24.0 - d); // circular distance
            (-d * d / (2.0 * width * width)).exp()
        };
        let floor = 0.12;
        let midday = 0.55 * bump(13.0, 3.5);
        let evening = 0.75 * bump(20.0, 2.0);
        (floor + midday + evening).min(1.0)
    }

    /// The 24 hourly means.
    pub fn hourly_means(&self) -> &[f64] {
        &self.hourly
    }
}

impl TrafficSource for DiurnalTrace {
    fn mean_rate(&self, interval: usize) -> f64 {
        self.hourly[interval % 24]
    }

    fn arrivals(&self, interval: usize, rng: &mut StdRng) -> f64 {
        let mean = self.mean_rate(interval);
        // lint:allow(float-eq): exact 0.0 is the "jitter disabled" sentinel, assigned literally from config
        if self.jitter == 0.0 {
            return mean;
        }
        let noise = 1.0 + self.jitter * (rng.gen_range(0.0..1.0) - 0.5) * 2.0;
        (mean * noise).max(0.0)
    }
}

/// Poisson arrivals whose rate is re-drawn per block of intervals — used to
/// evaluate orchestration policies "under randomly generated slice traffic
/// loads" (paper Fig. 8a): each episode (block) sees a different load, yet
/// the source stays deterministic given its seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockRandomPoisson {
    lo: f64,
    hi: f64,
    block: usize,
    seed: u64,
}

impl BlockRandomPoisson {
    /// Creates a source whose per-block rate is uniform over `[lo, hi]`,
    /// constant within each `block` consecutive intervals.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or `block == 0`.
    pub fn new(lo: f64, hi: f64, block: usize, seed: u64) -> Self {
        assert!(lo >= 0.0 && hi >= lo, "invalid rate range [{lo}, {hi}]");
        assert!(block > 0, "block must be positive");
        Self {
            lo,
            hi,
            block,
            seed,
        }
    }

    /// The rate in effect for `interval`.
    pub fn rate_at(&self, interval: usize) -> f64 {
        let b = (interval / self.block) as u64;
        // SplitMix64 over (seed, block) → uniform in [0, 1).
        let mut x = self.seed ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        self.lo + (self.hi - self.lo) * u
    }
}

impl TrafficSource for BlockRandomPoisson {
    fn mean_rate(&self, interval: usize) -> f64 {
        self.rate_at(interval)
    }

    fn arrivals(&self, interval: usize, rng: &mut StdRng) -> f64 {
        sample_poisson(self.rate_at(interval), rng) as f64
    }
}

/// A trace loaded from CSV rows of `interval,arrivals` (e.g. an aggregated
/// export of the real Telecom Italia dataset).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsvTrace {
    values: Vec<f64>,
}

impl CsvTrace {
    /// Parses `interval,arrivals` lines. Lines starting with `#` and blank
    /// lines are skipped; rows may appear in any order.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut rows: Vec<(usize, f64)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',');
            let idx: usize = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| format!("line {}: bad interval", lineno + 1))?;
            let val: f64 = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| format!("line {}: bad arrival count", lineno + 1))?;
            if !val.is_finite() || val < 0.0 {
                return Err(format!(
                    "line {}: negative or non-finite arrivals",
                    lineno + 1
                ));
            }
            rows.push((idx, val));
        }
        if rows.is_empty() {
            return Err("trace contains no data rows".to_string());
        }
        rows.sort_by_key(|&(i, _)| i);
        Ok(Self {
            values: rows.into_iter().map(|(_, v)| v).collect(),
        })
    }

    /// Loads a trace from a CSV file (see [`CsvTrace::parse`] for the
    /// format).
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
        Self::parse(&text)
    }

    /// Number of intervals in the trace.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the trace is empty (never the case for a parsed trace).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl TrafficSource for CsvTrace {
    fn mean_rate(&self, interval: usize) -> f64 {
        self.values[interval % self.values.len()]
    }

    fn arrivals(&self, interval: usize, _rng: &mut StdRng) -> f64 {
        self.mean_rate(interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_respected() {
        let mut rng = StdRng::seed_from_u64(0);
        for &mean in &[0.5, 3.0, 10.0, 50.0] {
            let n = 20_000;
            let total: f64 = (0..n).map(|_| sample_poisson(mean, &mut rng) as f64).sum();
            let emp = total / n as f64;
            assert!(
                (emp - mean).abs() < mean.max(1.0) * 0.05,
                "mean {mean}: got {emp}"
            );
        }
    }

    #[test]
    fn poisson_zero_rate_is_silent() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
        let t = PoissonTraffic::new(0.0);
        assert_eq!(t.arrivals(0, &mut rng), 0.0);
    }

    #[test]
    fn diurnal_shape_has_trough_and_evening_peak() {
        let t = DiurnalTrace::synthesize(10.0, 0.0, 0.0);
        let means = t.hourly_means();
        let night = means[3];
        let midday = means[13];
        let evening = means[20];
        assert!(
            night < midday && midday < evening,
            "night {night} midday {midday} evening {evening}"
        );
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (max - evening).abs() < 1e-9,
            "evening should be the daily peak"
        );
    }

    #[test]
    fn diurnal_phase_shifts_the_peak() {
        let base = DiurnalTrace::synthesize(10.0, 0.0, 0.0);
        let shifted = DiurnalTrace::synthesize(10.0, 3.0, 0.0);
        let argmax = |t: &DiurnalTrace| {
            t.hourly_means()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!((argmax(&base) + 3) % 24, argmax(&shifted));
    }

    #[test]
    fn diurnal_wraps_across_periods() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = DiurnalTrace::synthesize(10.0, 0.0, 0.0);
        assert_eq!(t.arrivals(5, &mut rng), t.arrivals(29, &mut rng));
    }

    #[test]
    fn random_areas_differ() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DiurnalTrace::random_area(10.0, &mut rng);
        let b = DiurnalTrace::random_area(10.0, &mut rng);
        assert_ne!(a.hourly_means(), b.hourly_means());
    }

    #[test]
    fn block_random_poisson_is_constant_within_block() {
        let t = BlockRandomPoisson::new(5.0, 20.0, 10, 42);
        assert_eq!(t.rate_at(0), t.rate_at(9));
        assert_ne!(t.rate_at(0), t.rate_at(10));
        for i in 0..100 {
            let r = t.rate_at(i);
            assert!((5.0..=20.0).contains(&r));
        }
    }

    #[test]
    fn block_random_poisson_is_seed_deterministic() {
        let a = BlockRandomPoisson::new(0.0, 10.0, 5, 7);
        let b = BlockRandomPoisson::new(0.0, 10.0, 5, 7);
        let c = BlockRandomPoisson::new(0.0, 10.0, 5, 8);
        assert_eq!(a.rate_at(12), b.rate_at(12));
        assert_ne!(a.rate_at(12), c.rate_at(12));
    }

    #[test]
    fn csv_trace_parses_and_wraps() {
        let t = CsvTrace::parse("# hour,calls\n0, 5.0\n2,7\n1, 6.5\n").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.mean_rate(1), 6.5);
        assert_eq!(t.mean_rate(4), 6.5); // wraps
    }

    #[test]
    fn csv_trace_loads_from_file() {
        let path = std::env::temp_dir().join("edgeslice_trace_test.csv");
        std::fs::write(
            &path,
            "0,3.5
1,4.5
",
        )
        .unwrap();
        let t = CsvTrace::from_file(&path).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.mean_rate(1), 4.5);
        std::fs::remove_file(&path).ok();
        assert!(CsvTrace::from_file("/definitely/not/a/file.csv").is_err());
    }

    #[test]
    fn csv_trace_rejects_garbage() {
        assert!(CsvTrace::parse("abc,def").is_err());
        assert!(CsvTrace::parse("0,-3").is_err());
        assert!(CsvTrace::parse("# only comments\n").is_err());
    }
}
