//! Per-slice FIFO service queues (paper Sec. VI-B, Fig. 5).
//!
//! Each network slice buffers its users' arriving tasks in a FIFO queue; an
//! interval's resource orchestration determines the per-task service time
//! and therefore how much of the queue drains. The queue length `l` is the
//! network state observed by orchestration agents (Eq. 13) and the argument
//! of the performance function `U = −l^α` (Sec. VII).

use serde::{Deserialize, Serialize};

/// A FIFO queue of service tasks, measured in (possibly fractional) tasks.
///
/// Fractional backlog models a task partially served at an interval
/// boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceQueue {
    backlog: f64,
    total_arrived: f64,
    total_served: f64,
    total_dropped: f64,
    capacity: Option<f64>,
}

impl ServiceQueue {
    /// Creates an empty, unbounded queue.
    pub fn new() -> Self {
        Self {
            backlog: 0.0,
            total_arrived: 0.0,
            total_served: 0.0,
            total_dropped: 0.0,
            capacity: None,
        }
    }

    /// Creates an empty queue that drops arrivals beyond `capacity` tasks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn with_capacity(capacity: f64) -> Self {
        assert!(capacity > 0.0, "queue capacity must be positive");
        Self {
            capacity: Some(capacity),
            ..Self::new()
        }
    }

    /// Current backlog in tasks (the paper's `l`).
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    /// Cumulative arrivals accepted into the queue.
    pub fn total_arrived(&self) -> f64 {
        self.total_arrived
    }

    /// Cumulative tasks served.
    pub fn total_served(&self) -> f64 {
        self.total_served
    }

    /// Cumulative arrivals dropped at a full bounded queue.
    pub fn total_dropped(&self) -> f64 {
        self.total_dropped
    }

    /// Enqueues `tasks` arrivals, returning how many were accepted.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is negative or non-finite.
    pub fn arrive(&mut self, tasks: f64) -> f64 {
        assert!(
            tasks.is_finite() && tasks >= 0.0,
            "invalid arrival count {tasks}"
        );
        let accepted = match self.capacity {
            Some(cap) => tasks.min((cap - self.backlog).max(0.0)),
            None => tasks,
        };
        self.total_dropped += tasks - accepted;
        self.backlog += accepted;
        self.total_arrived += accepted;
        accepted
    }

    /// Serves up to `capacity` tasks, returning how many were actually
    /// served (bounded by the backlog).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is negative or non-finite.
    pub fn serve(&mut self, capacity: f64) -> f64 {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "invalid service capacity {capacity}"
        );
        let served = capacity.min(self.backlog);
        self.backlog -= served;
        self.total_served += served;
        served
    }

    /// Empties the queue and returns the flushed backlog (counters are
    /// preserved; the flushed work counts as dropped).
    pub fn flush(&mut self) -> f64 {
        let b = self.backlog;
        self.backlog = 0.0;
        self.total_dropped += b;
        b
    }

    /// Flow-conservation check:
    /// `arrived == served + backlog` (within floating-point tolerance).
    pub fn is_conserving(&self) -> bool {
        (self.total_arrived - self.total_served - self.backlog).abs() < 1e-6
    }
}

impl Default for ServiceQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_and_service_update_backlog() {
        let mut q = ServiceQueue::new();
        q.arrive(10.0);
        assert_eq!(q.backlog(), 10.0);
        let served = q.serve(4.0);
        assert_eq!(served, 4.0);
        assert_eq!(q.backlog(), 6.0);
        assert!(q.is_conserving());
    }

    #[test]
    fn service_is_bounded_by_backlog() {
        let mut q = ServiceQueue::new();
        q.arrive(3.0);
        assert_eq!(q.serve(100.0), 3.0);
        assert_eq!(q.backlog(), 0.0);
        assert!(q.is_conserving());
    }

    #[test]
    fn bounded_queue_drops_overflow() {
        let mut q = ServiceQueue::with_capacity(5.0);
        let accepted = q.arrive(8.0);
        assert_eq!(accepted, 5.0);
        assert_eq!(q.total_dropped(), 3.0);
        assert_eq!(q.backlog(), 5.0);
        assert!(q.is_conserving());
    }

    #[test]
    fn flush_counts_as_drops() {
        let mut q = ServiceQueue::new();
        q.arrive(7.0);
        q.serve(2.0);
        assert_eq!(q.flush(), 5.0);
        assert_eq!(q.backlog(), 0.0);
        assert_eq!(q.total_dropped(), 5.0);
    }

    #[test]
    #[should_panic(expected = "invalid arrival count")]
    fn negative_arrival_panics() {
        ServiceQueue::new().arrive(-1.0);
    }

    #[test]
    fn conservation_over_random_walk() {
        let mut q = ServiceQueue::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            // Cheap deterministic pseudo-random walk.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) as f64 / 4e9;
            q.arrive(a * 10.0);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (x >> 33) as f64 / 4e9;
            q.serve(s * 10.0);
        }
        assert!(q.is_conserving());
    }
}
