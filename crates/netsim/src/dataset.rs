//! Grid-search dataset + local linear model (paper Sec. VI-B, Fig. 5).
//!
//! The paper generates its training dataset by traversing all orchestration
//! actions at 10% resource granularity, recording the resulting service
//! time, and fits a scikit-learn linear regression over **adjacent** grid
//! actions to predict service time for off-grid actions. This module is
//! that pipeline: [`GridDataset::generate`] runs the grid search against
//! the physical RA model, and [`GridDataset::predict`] interpolates with a
//! locally-fitted [`LinearModel`].

use edgeslice_optim::LinearModel;
use serde::{Deserialize, Serialize};

use crate::app::{service_time_seconds, AppProfile};

/// Service times are capped here so unserved grid points (zero allocation →
/// infinite service time) stay finite for regression.
pub const SERVICE_TIME_CAP_S: f64 = 1.0e4;

/// Physical capacities of an RA used for the grid search, mirroring
/// Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaCapacities {
    /// Peak radio rate at full allocation, Mb/s.
    pub radio_mbps: f64,
    /// Link bandwidth, Mb/s.
    pub transport_mbps: f64,
    /// GPU throughput at full allocation, GFLOPs/s.
    pub compute_gflops_s: f64,
}

impl RaCapacities {
    /// The prototype: 18 Mb/s cell, 80 Mb/s link, 8000 GFLOPs/s GPU.
    pub fn prototype() -> Self {
        Self {
            radio_mbps: 18.0,
            transport_mbps: 80.0,
            compute_gflops_s: 8_000.0,
        }
    }

    /// Service time of one `app` task under fractional shares
    /// `[radio, transport, compute]`, capped at [`SERVICE_TIME_CAP_S`].
    pub fn service_time(&self, app: &AppProfile, shares: [f64; 3]) -> f64 {
        service_time_seconds(
            app,
            shares[0].clamp(0.0, 1.0) * self.radio_mbps,
            shares[1].clamp(0.0, 1.0) * self.transport_mbps,
            shares[2].clamp(0.0, 1.0) * self.compute_gflops_s,
        )
        .min(SERVICE_TIME_CAP_S)
    }
}

/// The grid-search dataset for one application profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridDataset {
    app: AppProfile,
    capacities: RaCapacities,
    /// Grid step (paper: 0.1).
    granularity: f64,
    /// Points per axis (`1/granularity + 1`).
    axis: usize,
    /// Service time per grid point, indexed `r * axis² + t * axis + c`.
    times: Vec<f64>,
}

impl GridDataset {
    /// Runs the grid search at the paper's 10% granularity.
    pub fn generate(app: AppProfile, capacities: RaCapacities) -> Self {
        Self::generate_with_granularity(app, capacities, 0.1)
    }

    /// Runs the grid search at a custom granularity (must divide 1 evenly).
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is not in `(0, 1]`.
    pub fn generate_with_granularity(
        app: AppProfile,
        capacities: RaCapacities,
        granularity: f64,
    ) -> Self {
        assert!(
            granularity > 0.0 && granularity <= 1.0,
            "bad granularity {granularity}"
        );
        let axis = (1.0 / granularity).round() as usize + 1;
        let mut times = Vec::with_capacity(axis * axis * axis);
        for r in 0..axis {
            for t in 0..axis {
                for c in 0..axis {
                    let shares = [
                        r as f64 * granularity,
                        t as f64 * granularity,
                        c as f64 * granularity,
                    ];
                    times.push(capacities.service_time(&app, shares));
                }
            }
        }
        Self {
            app,
            capacities,
            granularity,
            axis,
            times,
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the dataset is empty (never after generation).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The application profile this dataset models.
    pub fn app(&self) -> &AppProfile {
        &self.app
    }

    /// Exact lookup for an on-grid action, if `shares` lies on the grid.
    pub fn lookup(&self, shares: [f64; 3]) -> Option<f64> {
        let mut idx = [0usize; 3];
        for (d, &s) in shares.iter().enumerate() {
            let g = s / self.granularity;
            if (g - g.round()).abs() > 1e-9 {
                return None;
            }
            let i = g.round() as isize;
            if i < 0 || i as usize >= self.axis {
                return None;
            }
            idx[d] = i as usize;
        }
        Some(self.times[idx[0] * self.axis * self.axis + idx[1] * self.axis + idx[2]])
    }

    /// Predicts the service time of an arbitrary action the paper's way:
    /// fit a linear model over the 8 adjacent grid actions (the cell
    /// corners) and evaluate it (Sec. VI-B's example: `[12, 38, 22]%` is
    /// fitted from `[10, 30, 20]%`, `[10, 40, 20]%`, …).
    ///
    /// On-grid actions return their recorded value exactly.
    pub fn predict(&self, shares: [f64; 3]) -> f64 {
        let clamped = [
            shares[0].clamp(0.0, 1.0),
            shares[1].clamp(0.0, 1.0),
            shares[2].clamp(0.0, 1.0),
        ];
        if let Some(exact) = self.lookup(clamped) {
            return exact;
        }
        // Collect the surrounding cell's corners.
        let mut corners: Vec<Vec<f64>> = Vec::with_capacity(8);
        let mut ys: Vec<f64> = Vec::with_capacity(8);
        let lo_hi: Vec<(usize, usize)> = clamped
            .iter()
            .map(|&s| {
                let g = s / self.granularity;
                let lo = (g.floor() as usize).min(self.axis - 1);
                let hi = (g.ceil() as usize).min(self.axis - 1);
                (lo, hi)
            })
            .collect();
        for &r in &[lo_hi[0].0, lo_hi[0].1] {
            for &t in &[lo_hi[1].0, lo_hi[1].1] {
                for &c in &[lo_hi[2].0, lo_hi[2].1] {
                    let x = vec![
                        r as f64 * self.granularity,
                        t as f64 * self.granularity,
                        c as f64 * self.granularity,
                    ];
                    if corners.contains(&x) {
                        continue;
                    }
                    ys.push(self.times[r * self.axis * self.axis + t * self.axis + c]);
                    corners.push(x);
                }
            }
        }
        match LinearModel::fit(&corners, &ys, 1e-8) {
            Ok(model) => model.predict(&clamped).clamp(0.0, SERVICE_TIME_CAP_S),
            // Degenerate corner set (e.g. all identical): average.
            Err(_) => ys.iter().sum::<f64>() / ys.len().max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> GridDataset {
        GridDataset::generate(AppProfile::traffic_heavy(), RaCapacities::prototype())
    }

    #[test]
    fn grid_has_expected_size() {
        let d = dataset();
        assert_eq!(d.len(), 11 * 11 * 11);
    }

    #[test]
    fn lookup_matches_direct_computation() {
        let d = dataset();
        let shares = [0.5, 0.3, 0.2];
        let direct = RaCapacities::prototype().service_time(&AppProfile::traffic_heavy(), shares);
        // The grid stores `i * granularity`, which differs from the literal
        // share by at most one ulp.
        let stored = d.lookup(shares).unwrap();
        assert!(
            (stored - direct).abs() < 1e-12,
            "stored {stored} direct {direct}"
        );
    }

    #[test]
    fn lookup_rejects_off_grid() {
        let d = dataset();
        assert!(d.lookup([0.55, 0.3, 0.2]).is_none());
        assert!(d.lookup([1.2, 0.0, 0.0]).is_none());
    }

    #[test]
    fn predict_on_grid_is_exact() {
        let d = dataset();
        let shares = [0.4, 0.7, 0.1];
        assert_eq!(d.predict(shares), d.lookup(shares).unwrap());
    }

    #[test]
    fn predict_interpolates_between_corners() {
        let d = dataset();
        // The paper's example: predict [12, 38, 22]% between grid corners.
        let mid = d.predict([0.12, 0.38, 0.22]);
        let lo = d.lookup([0.1, 0.3, 0.2]).unwrap();
        let hi = d.lookup([0.2, 0.4, 0.3]).unwrap();
        assert!(
            mid <= lo.max(hi) + 1e-6 && mid >= hi.min(lo) - lo * 0.5,
            "prediction {mid} implausible vs corners [{hi}, {lo}]"
        );
        // More resources at the corners ⇒ the high corner is faster.
        assert!(hi < lo);
    }

    #[test]
    fn predict_decreases_with_more_resources_on_average() {
        let d = dataset();
        let slow = d.predict([0.15, 0.15, 0.15]);
        let fast = d.predict([0.85, 0.85, 0.85]);
        assert!(fast < slow);
    }

    #[test]
    fn zero_allocation_is_capped_not_infinite() {
        let d = dataset();
        let t = d.lookup([0.0, 0.5, 0.5]).unwrap();
        assert_eq!(t, SERVICE_TIME_CAP_S);
    }

    #[test]
    fn coarse_grid_still_predicts() {
        let d = GridDataset::generate_with_granularity(
            AppProfile::compute_heavy(),
            RaCapacities::prototype(),
            0.25,
        );
        assert_eq!(d.len(), 5 * 5 * 5);
        assert!(d.predict([0.3, 0.6, 0.9]).is_finite());
    }
}
