//! A resource autonomy (RA): one eNodeB + one transport path + one edge
//! GPU, the unit an orchestration agent manages (paper Sec. II, VI-A).

use serde::{Deserialize, Serialize};

use crate::app::{service_time_seconds, AppProfile};
use crate::compute::{Gpu, Kernel, TenantId};
use crate::radio::{extract_imsi, EnodeB, Imsi, LteBand, UserEquipment};
use crate::transport::{FlowMatch, IpAddr, ReconfigMode, SdnController};

/// A slice's end-to-end allocation inside one RA, as fractions of the RA's
/// radio / transport / computing capacity (the three resources `k ∈ K`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainShares {
    /// Radio share ∈ [0, 1].
    pub radio: f64,
    /// Transport share ∈ [0, 1].
    pub transport: f64,
    /// Computing share ∈ [0, 1].
    pub compute: f64,
}

impl DomainShares {
    /// Creates a share triple, clamping each component into `[0, 1]`.
    pub fn new(radio: f64, transport: f64, compute: f64) -> Self {
        Self {
            radio: radio.clamp(0.0, 1.0),
            transport: transport.clamp(0.0, 1.0),
            compute: compute.clamp(0.0, 1.0),
        }
    }

    /// The shares as a `[radio, transport, compute]` array.
    pub fn as_array(&self) -> [f64; 3] {
        [self.radio, self.transport, self.compute]
    }
}

/// Per-slice effective service rates produced by one RA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceRates {
    /// Scheduled radio rate, Mb/s.
    pub radio_mbps: f64,
    /// Metered transport rate, Mb/s.
    pub transport_mbps: f64,
    /// Granted GPU throughput, GFLOPs/s.
    pub compute_gflops_s: f64,
}

/// One resource autonomy, wiring the three domain simulators together.
///
/// The prototype hosts 1 user per slice per RA (Sec. VI-A); this model does
/// the same — each slice's allocation inside the RA serves a single
/// representative user whose IMSI and IP identify the slice in the radio
/// and transport domains respectively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceAutonomy {
    enodeb: EnodeB,
    transport: SdnController,
    gpu: Gpu,
    /// Total RAN↔edge link bandwidth, Mb/s (prototype: 80).
    link_mbps: f64,
    /// Per-slice representative users.
    users: Vec<RaUser>,
    reconfig_mode: ReconfigMode,
    /// Per-domain capacity multipliers `[radio, transport, compute]`,
    /// `1.0` when healthy — fault injection shrinks a domain's `R^{tot}`
    /// by lowering its entry (interference, co-tenancy, partial failure).
    capacity_scale: [f64; 3],
}

/// A slice's representative user within an RA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct RaUser {
    imsi: Imsi,
    flow: FlowMatch,
    tenant: TenantId,
}

impl ResourceAutonomy {
    /// Builds an RA with prototype-equivalent hardware (Table II): a 25-PRB
    /// eNodeB, a 6-switch 80 Mb/s transport path, and a 51200-thread GPU —
    /// then attaches one user per slice.
    pub fn prototype(ra_index: usize, n_slices: usize) -> Self {
        let band = if ra_index.is_multiple_of(2) {
            LteBand::Band7
        } else {
            LteBand::Band38
        };
        Self::new(
            EnodeB::prototype(band),
            SdnController::prototype(),
            Gpu::prototype(),
            80.0,
            ra_index,
            n_slices,
        )
    }

    /// Builds an RA from explicit substrates. One user per slice is
    /// attached and associated across all three domains.
    pub fn new(
        mut enodeb: EnodeB,
        transport: SdnController,
        gpu: Gpu,
        link_mbps: f64,
        ra_index: usize,
        n_slices: usize,
    ) -> Self {
        assert!(link_mbps > 0.0, "link bandwidth must be positive");
        let mut users = Vec::with_capacity(n_slices);
        for s in 0..n_slices {
            let imsi = Imsi(310_170_000_000_000 + (ra_index as u64) * 1_000 + s as u64);
            let ue = UserEquipment {
                imsi,
                band: enodeb.band(),
            };
            let msg = enodeb.attach(ue).expect("band matches by construction");
            let learned = extract_imsi(&msg).expect("attach carries IMSI");
            enodeb.associate(learned, s);
            let flow = FlowMatch {
                src: IpAddr([10, ra_index as u8, 0, s as u8 + 1]),
                dst: IpAddr([192, 168, ra_index as u8, 10]),
            };
            users.push(RaUser {
                imsi,
                flow,
                tenant: TenantId(s as u32),
            });
        }
        Self {
            enodeb,
            transport,
            gpu,
            link_mbps,
            users,
            reconfig_mode: ReconfigMode::MakeBeforeBreak,
            capacity_scale: [1.0; 3],
        }
    }

    /// Number of slices served in this RA.
    pub fn n_slices(&self) -> usize {
        self.users.len()
    }

    /// Total link bandwidth, Mb/s.
    pub fn link_mbps(&self) -> f64 {
        self.link_mbps
    }

    /// The eNodeB.
    pub fn enodeb(&self) -> &EnodeB {
        &self.enodeb
    }

    /// The SDN controller over the transport path.
    pub fn transport(&self) -> &SdnController {
        &self.transport
    }

    /// The edge GPU.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Sets the transport reconfiguration strategy (default
    /// make-before-break, the paper's mechanism).
    pub fn set_reconfig_mode(&mut self, mode: ReconfigMode) {
        self.reconfig_mode = mode;
    }

    /// Sets the transport controller's per-switch meter delete–create
    /// interval, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or non-finite.
    pub fn set_reconfig_interval_s(&mut self, seconds: f64) {
        self.transport.set_deletion_creation_interval_s(seconds);
    }

    /// Scales each domain's total capacity by the given multipliers
    /// `[radio, transport, compute]` (fault injection: a degraded domain's
    /// `R^{tot}` shrinks; `[1.0; 3]` restores full capacity).
    ///
    /// # Panics
    ///
    /// Panics unless every multiplier is finite and in `(0, 1]`.
    pub fn set_capacity_scale(&mut self, scale: [f64; 3]) {
        for s in scale {
            assert!(
                s.is_finite() && s > 0.0 && s <= 1.0,
                "capacity scale {s} not in (0, 1]"
            );
        }
        self.capacity_scale = scale;
    }

    /// The per-domain capacity multipliers in effect.
    pub fn capacity_scale(&self) -> [f64; 3] {
        self.capacity_scale
    }

    /// Applies an orchestration action: per-slice domain shares. Configures
    /// the PRB scheduler, rewrites the transport meters, resizes the GPU
    /// budgets, and returns the resulting per-slice rates.
    ///
    /// Shares may overshoot (the DRL agent explores); each domain clamps to
    /// its own capacity exactly as the real managers would, and the reward
    /// function separately penalizes the violation (Eq. 15).
    ///
    /// # Panics
    ///
    /// Panics if `shares.len() != n_slices()`.
    pub fn apply(&mut self, shares: &[DomainShares]) -> Vec<SliceRates> {
        assert_eq!(shares.len(), self.users.len(), "one share triple per slice");
        // A degraded domain delivers `scale · R^tot`; a share `x` of the
        // degraded capacity equals a share `x · scale` of the nominal one.
        let [radio_scale, transport_scale, compute_scale] = self.capacity_scale;
        // Radio: pass fractions to the slice-aware scheduler.
        let radio_shares: Vec<f64> = shares.iter().map(|s| s.radio * radio_scale).collect();
        let schedule = self.enodeb.schedule(&radio_shares);
        // Transport: one meter per slice flow.
        for (user, share) in self.users.iter().zip(shares) {
            self.transport.set_bandwidth(
                user.flow,
                share.transport * self.link_mbps * transport_scale,
                self.reconfig_mode,
            );
        }
        // Compute: budgets in threads.
        let total_threads = self.gpu.total_threads();
        for (user, share) in self.users.iter().zip(shares) {
            let threads = (share.compute * total_threads as f64 * compute_scale) as u32;
            self.gpu.set_budget(user.tenant, threads);
        }
        self.users
            .iter()
            .map(|u| SliceRates {
                radio_mbps: schedule.user_rate_mbps(u.imsi),
                transport_mbps: self.transport.path_rate_mbps(u.flow),
                compute_gflops_s: self.gpu.tenant_gflops_s(u.tenant),
            })
            .collect()
    }

    /// Computes per-slice task service times (seconds) for an action and
    /// the slices' application profiles, by applying the action to the
    /// substrates and composing the domain times.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn service_times(&mut self, shares: &[DomainShares], apps: &[AppProfile]) -> Vec<f64> {
        assert_eq!(shares.len(), apps.len(), "one app profile per slice");
        let rates = self.apply(shares);
        rates
            .iter()
            .zip(apps)
            .map(|(r, app)| {
                service_time_seconds(app, r.radio_mbps, r.transport_mbps, r.compute_gflops_s)
            })
            .collect()
    }

    /// Submits one slice task's inference kernel to the GPU (exercises the
    /// kernel-split path; the budget must already be applied).
    pub fn submit_task(&mut self, slice: usize, app: &AppProfile) {
        let user = self.users[slice];
        // A YOLO inference launches one big kernel; the manager splits it.
        self.gpu.submit(
            user.tenant,
            Kernel::new(self.gpu.total_threads(), app.compute_gflops()),
        );
    }

    /// Advances the GPU timeline (see [`Gpu::advance`]).
    pub fn advance_gpu(&mut self, dt: f64) {
        self.gpu.advance(dt);
    }

    /// True while every tenant's observed GPU occupancy respected its
    /// budget.
    pub fn gpu_isolated(&self) -> bool {
        self.gpu.occupancy_within_budgets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_table_ii() {
        let ra = ResourceAutonomy::prototype(0, 2);
        assert_eq!(ra.enodeb().total_prbs(), 25);
        assert_eq!(ra.gpu().total_threads(), 51_200);
        assert_eq!(ra.link_mbps(), 80.0);
        assert_eq!(ra.transport().switches().len(), 6);
        assert_eq!(ra.n_slices(), 2);
    }

    #[test]
    fn alternating_ras_use_different_bands() {
        let a = ResourceAutonomy::prototype(0, 1);
        let b = ResourceAutonomy::prototype(1, 1);
        assert_ne!(a.enodeb().band(), b.enodeb().band());
    }

    #[test]
    fn apply_produces_proportional_rates() {
        let mut ra = ResourceAutonomy::prototype(0, 2);
        let rates = ra.apply(&[
            DomainShares::new(0.6, 0.5, 0.25),
            DomainShares::new(0.4, 0.5, 0.75),
        ]);
        // Radio: 15/25 and 10/25 PRBs of an 18 Mb/s cell.
        assert!((rates[0].radio_mbps - 18.0 * 15.0 / 25.0).abs() < 1e-9);
        assert!((rates[1].radio_mbps - 18.0 * 10.0 / 25.0).abs() < 1e-9);
        // Transport: shares of 80 Mb/s.
        assert!((rates[0].transport_mbps - 40.0).abs() < 1e-9);
        // Compute: shares of 8000 GFLOPs/s.
        assert!((rates[0].compute_gflops_s - 2_000.0).abs() < 0.5);
        assert!((rates[1].compute_gflops_s - 6_000.0).abs() < 0.5);
    }

    #[test]
    fn service_times_reflect_app_asymmetry() {
        let mut ra = ResourceAutonomy::prototype(0, 2);
        let apps = [AppProfile::traffic_heavy(), AppProfile::compute_heavy()];
        let even = [
            DomainShares::new(0.5, 0.5, 0.5),
            DomainShares::new(0.5, 0.5, 0.5),
        ];
        let t_even = ra.service_times(&even, &apps);
        // Give slice 1 the network and slice 2 the GPU: both should speed up.
        let matched = [
            DomainShares::new(0.8, 0.8, 0.2),
            DomainShares::new(0.2, 0.2, 0.8),
        ];
        let t_matched = ra.service_times(&matched, &apps);
        assert!(
            t_matched[0] < t_even[0],
            "traffic-heavy slice should gain from network"
        );
        assert!(
            t_matched[1] < t_even[1],
            "compute-heavy slice should gain from GPU"
        );
    }

    #[test]
    fn zero_share_means_unserved() {
        let mut ra = ResourceAutonomy::prototype(0, 2);
        let apps = [AppProfile::traffic_heavy(), AppProfile::compute_heavy()];
        let t = ra.service_times(
            &[
                DomainShares::new(1.0, 1.0, 1.0),
                DomainShares::new(0.0, 0.0, 0.0),
            ],
            &apps,
        );
        assert!(t[0].is_finite());
        assert!(t[1].is_infinite());
    }

    #[test]
    fn capacity_degradation_scales_rates_and_restores() {
        let mut ra = ResourceAutonomy::prototype(0, 2);
        let shares = [
            DomainShares::new(0.5, 0.5, 0.5),
            DomainShares::new(0.5, 0.5, 0.5),
        ];
        let healthy = ra.apply(&shares);
        ra.set_capacity_scale([1.0, 0.5, 0.5]);
        let degraded = ra.apply(&shares);
        assert!((degraded[0].transport_mbps - healthy[0].transport_mbps * 0.5).abs() < 1e-9);
        assert!(degraded[0].compute_gflops_s < healthy[0].compute_gflops_s);
        assert_eq!(degraded[0].radio_mbps, healthy[0].radio_mbps);
        ra.set_capacity_scale([1.0; 3]);
        let restored = ra.apply(&shares);
        assert_eq!(restored[0].transport_mbps, healthy[0].transport_mbps);
        assert_eq!(restored[0].compute_gflops_s, healthy[0].compute_gflops_s);
    }

    #[test]
    #[should_panic(expected = "capacity scale")]
    fn zero_capacity_scale_is_rejected() {
        let mut ra = ResourceAutonomy::prototype(0, 1);
        ra.set_capacity_scale([0.0, 1.0, 1.0]);
    }

    #[test]
    fn kernel_split_isolation_holds_under_load() {
        let mut ra = ResourceAutonomy::prototype(0, 2);
        ra.apply(&[
            DomainShares::new(0.5, 0.5, 0.3),
            DomainShares::new(0.5, 0.5, 0.7),
        ]);
        let apps = [AppProfile::traffic_heavy(), AppProfile::compute_heavy()];
        for _ in 0..5 {
            ra.submit_task(0, &apps[0]);
            ra.submit_task(1, &apps[1]);
            ra.advance_gpu(0.5);
        }
        assert!(ra.gpu_isolated());
    }
}
