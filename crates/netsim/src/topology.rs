//! Transport-network topology: a weighted graph of switches with
//! capacitated links and shortest-path routing.
//!
//! The prototype's transport network is a fixed chain of six switches
//! between the RAN and the edge servers (Table II); production deployments
//! are meshes. This module generalizes the path model: an SDN controller
//! computes a route (Dijkstra over link weights), checks residual link
//! capacity, and the per-flow meters of [`crate::transport`] are then
//! installed along the chosen path.

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A node (switch) index in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A directed link with a routing weight and a bandwidth capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Link {
    to: usize,
    weight: f64,
    capacity_mbps: f64,
    reserved_mbps: f64,
}

/// Errors from topology operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A node index was out of range.
    UnknownNode {
        /// The offending node.
        node: NodeId,
    },
    /// No path exists between the endpoints.
    NoPath {
        /// Source.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// The chosen path lacks residual capacity for the reservation.
    InsufficientCapacity {
        /// The bottleneck link's residual, Mb/s.
        residual_mbps: f64,
        /// The requested reservation, Mb/s.
        requested_mbps: f64,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownNode { node } => write!(f, "unknown node {}", node.0),
            TopologyError::NoPath { from, to } => {
                write!(f, "no path from node {} to node {}", from.0, to.0)
            }
            TopologyError::InsufficientCapacity { residual_mbps, requested_mbps } => write!(
                f,
                "insufficient capacity: {requested_mbps} Mb/s requested, {residual_mbps} Mb/s residual"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A capacitated switch graph with reservation bookkeeping.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Topology {
    adjacency: Vec<Vec<Link>>,
}

impl Topology {
    /// Creates a topology with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); n],
        }
    }

    /// The prototype chain: 6 switches in a line, 80 Mb/s per hop
    /// (bidirectional).
    pub fn prototype_chain() -> Self {
        let mut t = Self::new(6);
        for i in 0..5 {
            t.add_bidirectional(NodeId(i), NodeId(i + 1), 1.0, 80.0)
                .expect("indices in range");
        }
        t
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds a directed link.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] for out-of-range endpoints.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
        capacity_mbps: f64,
    ) -> Result<(), TopologyError> {
        for node in [from, to] {
            if node.0 >= self.adjacency.len() {
                return Err(TopologyError::UnknownNode { node });
            }
        }
        self.adjacency[from.0].push(Link {
            to: to.0,
            weight: weight.max(0.0),
            capacity_mbps,
            reserved_mbps: 0.0,
        });
        Ok(())
    }

    /// Adds a link in both directions.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] for out-of-range endpoints.
    pub fn add_bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        weight: f64,
        capacity_mbps: f64,
    ) -> Result<(), TopologyError> {
        self.add_link(a, b, weight, capacity_mbps)?;
        self.add_link(b, a, weight, capacity_mbps)
    }

    /// Shortest path by total link weight (Dijkstra). Returns the node
    /// sequence including both endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] or [`TopologyError::NoPath`].
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Result<Vec<NodeId>, TopologyError> {
        for node in [from, to] {
            if node.0 >= self.adjacency.len() {
                return Err(TopologyError::UnknownNode { node });
            }
        }
        let n = self.adjacency.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        dist[from.0] = 0.0;
        // Max-heap on negated distance.
        let mut heap = BinaryHeap::new();
        heap.push((std::cmp::Reverse(ordered(0.0)), from.0));
        while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
            let d = d.0;
            if d > dist[u] {
                continue;
            }
            if u == to.0 {
                break;
            }
            for link in &self.adjacency[u] {
                let nd = d + link.weight;
                if nd < dist[link.to] {
                    dist[link.to] = nd;
                    prev[link.to] = u;
                    heap.push((std::cmp::Reverse(ordered(nd)), link.to));
                }
            }
        }
        if dist[to.0].is_infinite() {
            return Err(TopologyError::NoPath { from, to });
        }
        let mut path = vec![to.0];
        let mut cur = to.0;
        while cur != from.0 {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Ok(path.into_iter().map(NodeId).collect())
    }

    /// Residual capacity of the path (minimum over its links), Mb/s.
    ///
    /// # Panics
    ///
    /// Panics if `path` contains a hop with no link (callers pass paths
    /// produced by [`Topology::shortest_path`]).
    pub fn path_residual_mbps(&self, path: &[NodeId]) -> f64 {
        path.windows(2)
            .map(|w| {
                let link = self.adjacency[w[0].0]
                    .iter()
                    .find(|l| l.to == w[1].0)
                    .expect("path hop must correspond to a link");
                link.capacity_mbps - link.reserved_mbps
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Reserves `mbps` along `path` (admission for a slice's transport
    /// share).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InsufficientCapacity`] without reserving
    /// anything if some link lacks residual.
    pub fn reserve(&mut self, path: &[NodeId], mbps: f64) -> Result<(), TopologyError> {
        let residual = self.path_residual_mbps(path);
        if mbps > residual + 1e-12 {
            return Err(TopologyError::InsufficientCapacity {
                residual_mbps: residual,
                requested_mbps: mbps,
            });
        }
        for w in path.windows(2) {
            let link = self.adjacency[w[0].0]
                .iter_mut()
                .find(|l| l.to == w[1].0)
                .expect("checked above");
            link.reserved_mbps += mbps;
        }
        Ok(())
    }

    /// Releases `mbps` along `path`.
    pub fn release(&mut self, path: &[NodeId], mbps: f64) {
        for w in path.windows(2) {
            if let Some(link) = self.adjacency[w[0].0].iter_mut().find(|l| l.to == w[1].0) {
                link.reserved_mbps = (link.reserved_mbps - mbps).max(0.0);
            }
        }
    }
}

/// Total-order wrapper for finite f64 distances.
fn ordered(x: f64) -> OrderedF64 {
    OrderedF64(x)
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("distances are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_path_is_the_chain() {
        let t = Topology::prototype_chain();
        let p = t.shortest_path(NodeId(0), NodeId(5)).unwrap();
        assert_eq!(p, (0..6).map(NodeId).collect::<Vec<_>>());
        assert_eq!(t.path_residual_mbps(&p), 80.0);
    }

    #[test]
    fn dijkstra_prefers_lighter_route() {
        // 0 → 1 → 3 (weight 2) vs 0 → 2 → 3 (weight 1.5).
        let mut t = Topology::new(4);
        t.add_bidirectional(NodeId(0), NodeId(1), 1.0, 100.0)
            .unwrap();
        t.add_bidirectional(NodeId(1), NodeId(3), 1.0, 100.0)
            .unwrap();
        t.add_bidirectional(NodeId(0), NodeId(2), 0.5, 100.0)
            .unwrap();
        t.add_bidirectional(NodeId(2), NodeId(3), 1.0, 100.0)
            .unwrap();
        let p = t.shortest_path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let t = Topology::new(3);
        assert!(matches!(
            t.shortest_path(NodeId(0), NodeId(2)),
            Err(TopologyError::NoPath { .. })
        ));
    }

    #[test]
    fn unknown_node_is_reported() {
        let t = Topology::new(2);
        assert!(matches!(
            t.shortest_path(NodeId(0), NodeId(9)),
            Err(TopologyError::UnknownNode { .. })
        ));
    }

    #[test]
    fn reservations_consume_and_release_capacity() {
        let mut t = Topology::prototype_chain();
        let p = t.shortest_path(NodeId(0), NodeId(5)).unwrap();
        t.reserve(&p, 50.0).unwrap();
        assert_eq!(t.path_residual_mbps(&p), 30.0);
        let err = t.reserve(&p, 40.0).unwrap_err();
        assert!(matches!(err, TopologyError::InsufficientCapacity { .. }));
        // Nothing was partially reserved by the failed attempt.
        assert_eq!(t.path_residual_mbps(&p), 30.0);
        t.release(&p, 50.0);
        assert_eq!(t.path_residual_mbps(&p), 80.0);
    }

    #[test]
    fn bottleneck_link_bounds_residual() {
        let mut t = Topology::new(3);
        t.add_link(NodeId(0), NodeId(1), 1.0, 100.0).unwrap();
        t.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
        let p = t.shortest_path(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(t.path_residual_mbps(&p), 10.0);
    }
}
