//! Radio access network simulator — the OpenAirInterface substitute.
//!
//! Reproduces the mechanics the paper's **radio manager** controls
//! (Sec. V-A): an eNodeB exposes a grid of physical resource blocks (PRBs)
//! in PUSCH/PDSCH; a slice-aware MAC scheduler maps each slice's virtual
//! radio resources to **consecutive** PRBs and skips users whose slice holds
//! no radio resources; the user↔slice association is learned from the IMSI
//! carried in the S1AP initial UE message, with no modification on the UE
//! side.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// International mobile subscriber identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Imsi(pub u64);

impl fmt::Display for Imsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "imsi-{:015}", self.0)
    }
}

/// LTE frequency band. The prototype's eNodeBs operate on bands 7 and 38 to
/// avoid co-channel interference (Sec. VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LteBand {
    /// FDD band 7 (2600 MHz).
    Band7,
    /// TDD band 38 (2600 MHz).
    Band38,
}

/// A mobile user with band-selection capability (the prototype pins each
/// phone to one band so it attaches to exactly one eNodeB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserEquipment {
    /// The user's IMSI.
    pub imsi: Imsi,
    /// The only band this UE searches.
    pub band: LteBand,
}

/// An S1AP message from the eNodeB toward the MME. Only the initial UE
/// message matters here: it is where the radio manager transparently
/// extracts the IMSI (Sec. V-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum S1apMessage {
    /// UE attach: carries the IMSI in the NAS payload.
    InitialUeMessage {
        /// eNodeB-local UE identifier.
        enb_ue_id: u32,
        /// The attaching user's IMSI.
        imsi: Imsi,
    },
    /// Any other S1AP procedure (ignored by the extractor).
    Other,
}

/// Extracts the IMSI from an S1AP message if it is an attach.
pub fn extract_imsi(msg: &S1apMessage) -> Option<Imsi> {
    match msg {
        S1apMessage::InitialUeMessage { imsi, .. } => Some(*imsi),
        S1apMessage::Other => None,
    }
}

/// A channel quality indicator (3GPP 36.213: 1–15).
///
/// The prototype's smartphones report CQI per subframe; the scheduler maps
/// it to a modulation-and-coding scheme whose spectral efficiency scales
/// the rate each PRB delivers. The simulator defaults every UE to CQI 15
/// (the paper's bench-distance radio conditions) and lets experiments
/// degrade individual users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cqi(u8);

impl Cqi {
    /// The best reportable channel quality.
    pub const MAX: Cqi = Cqi(15);

    /// Creates a CQI.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ value ≤ 15`.
    pub fn new(value: u8) -> Self {
        assert!((1..=15).contains(&value), "CQI must be 1..=15, got {value}");
        Self(value)
    }

    /// The raw index.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Spectral efficiency in bits/s/Hz from the 3GPP 36.213 CQI table
    /// (QPSK 0.1523 … 64-QAM 5.5547).
    pub fn spectral_efficiency(self) -> f64 {
        const TABLE: [f64; 15] = [
            0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766, 1.9141, 2.4063, 2.7305, 3.3223,
            3.9023, 4.5234, 5.1152, 5.5547,
        ];
        TABLE[(self.0 - 1) as usize]
    }

    /// Rate scaling relative to the peak MCS (CQI 15 → 1.0).
    pub fn rate_factor(self) -> f64 {
        self.spectral_efficiency() / Cqi::MAX.spectral_efficiency()
    }
}

impl Default for Cqi {
    fn default() -> Self {
        Cqi::MAX
    }
}

/// One user's PRB assignment within a scheduling interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrbAssignment {
    /// First PRB index.
    pub start: u32,
    /// Number of PRBs.
    pub count: u32,
}

/// An eNodeB with a slice-aware PRB scheduler.
///
/// The prototype uses 5 MHz cells: 25 PRBs (Sec. VI-A, Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnodeB {
    band: LteBand,
    total_prbs: u32,
    /// Peak cell throughput at full PRB allocation, Mb/s.
    cell_rate_mbps: f64,
    /// IMSI → slice index, learned from S1AP.
    associations: BTreeMap<Imsi, usize>,
    attached: Vec<UserEquipment>,
    /// IMSI → last reported channel quality (absent ⇒ CQI 15).
    cqi: BTreeMap<Imsi, Cqi>,
}

impl EnodeB {
    /// Creates an eNodeB. `total_prbs` must be positive.
    ///
    /// # Panics
    ///
    /// Panics on a zero PRB grid or non-positive rate.
    pub fn new(band: LteBand, total_prbs: u32, cell_rate_mbps: f64) -> Self {
        assert!(total_prbs > 0, "an eNodeB needs at least one PRB");
        assert!(cell_rate_mbps > 0.0, "cell rate must be positive");
        Self {
            band,
            total_prbs,
            cell_rate_mbps,
            associations: BTreeMap::new(),
            attached: Vec::new(),
            cqi: BTreeMap::new(),
        }
    }

    /// The prototype's configuration: 5 MHz → 25 PRBs, ~18 Mb/s peak.
    pub fn prototype(band: LteBand) -> Self {
        Self::new(band, 25, 18.0)
    }

    /// The operating band.
    pub fn band(&self) -> LteBand {
        self.band
    }

    /// PRBs in the grid.
    pub fn total_prbs(&self) -> u32 {
        self.total_prbs
    }

    /// Peak cell rate in Mb/s.
    pub fn cell_rate_mbps(&self) -> f64 {
        self.cell_rate_mbps
    }

    /// Attached UEs, in attach order.
    pub fn attached_users(&self) -> &[UserEquipment] {
        &self.attached
    }

    /// Attempts to attach a UE; rejects UEs searching a different band
    /// (band selection, Sec. VI-A). On success the S1AP initial UE message
    /// is returned so a radio manager can learn the association.
    pub fn attach(&mut self, ue: UserEquipment) -> Option<S1apMessage> {
        if ue.band != self.band {
            return None;
        }
        if !self.attached.contains(&ue) {
            self.attached.push(ue);
        }
        Some(S1apMessage::InitialUeMessage {
            enb_ue_id: self.attached.len() as u32 - 1,
            imsi: ue.imsi,
        })
    }

    /// Records an IMSI → slice association (the radio manager calls this
    /// after extracting the IMSI from S1AP).
    pub fn associate(&mut self, imsi: Imsi, slice: usize) {
        self.associations.insert(imsi, slice);
    }

    /// The slice associated with `imsi`, if known.
    pub fn slice_of(&self, imsi: Imsi) -> Option<usize> {
        self.associations.get(&imsi).copied()
    }

    /// Records a UE's reported channel quality (default CQI 15).
    pub fn report_cqi(&mut self, imsi: Imsi, cqi: Cqi) {
        self.cqi.insert(imsi, cqi);
    }

    /// The channel quality currently assumed for `imsi`.
    pub fn cqi_of(&self, imsi: Imsi) -> Cqi {
        self.cqi.get(&imsi).copied().unwrap_or_default()
    }

    /// Schedules one interval.
    ///
    /// `slice_shares[s]` is slice `s`'s virtual radio resource as a fraction
    /// of the cell (`Σ ≤ 1` after capacity projection; shares beyond the
    /// grid are truncated). Users are scheduled **consecutively** in attach
    /// order; a user whose slice holds zero PRBs is not scheduled at all
    /// (vanilla OAI cannot do this — it is the new MAC behaviour of
    /// Sec. V-A). Each slice's PRBs are divided evenly among its attached
    /// users.
    pub fn schedule(&self, slice_shares: &[f64]) -> ScheduleOutcome {
        // Convert shares to PRB counts, truncating to the grid.
        let mut slice_prbs: Vec<u32> = slice_shares
            .iter()
            .map(|&f| (f.max(0.0) * self.total_prbs as f64).floor() as u32)
            .collect();
        let mut total: u32 = slice_prbs.iter().sum();
        // Trim overshoot (defensive: callers should have projected already).
        while total > self.total_prbs {
            if let Some(m) = slice_prbs.iter_mut().max() {
                *m -= 1;
                total -= 1;
            }
        }

        // Count users per slice.
        let mut users_per_slice = vec![0u32; slice_shares.len()];
        for ue in &self.attached {
            if let Some(&s) = self.associations.get(&ue.imsi) {
                if s < users_per_slice.len() {
                    users_per_slice[s] += 1;
                }
            }
        }

        let mut assignments = BTreeMap::new();
        let mut next_prb = 0u32;
        // Per-slice index of the next user to schedule (earliest users in a
        // slice absorb the division remainder).
        let mut slice_user_idx = vec![0u32; slice_shares.len()];
        for ue in &self.attached {
            let Some(&s) = self.associations.get(&ue.imsi) else {
                continue;
            };
            if s >= slice_prbs.len() || slice_prbs[s] == 0 || users_per_slice[s] == 0 {
                continue; // zero-resource users are not scheduled
            }
            let base = slice_prbs[s] / users_per_slice[s];
            let remainder = slice_prbs[s] % users_per_slice[s];
            let share = base + u32::from(slice_user_idx[s] < remainder);
            slice_user_idx[s] += 1;
            if share == 0 {
                continue;
            }
            assignments.insert(
                ue.imsi,
                PrbAssignment {
                    start: next_prb,
                    count: share,
                },
            );
            next_prb += share;
        }
        let rate_factors = assignments
            .keys()
            .map(|imsi| (*imsi, self.cqi_of(*imsi).rate_factor()))
            .collect();
        ScheduleOutcome {
            assignments,
            rate_factors,
            total_prbs: self.total_prbs,
            cell_rate_mbps: self.cell_rate_mbps,
        }
    }
}

/// The result of one scheduling interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    assignments: BTreeMap<Imsi, PrbAssignment>,
    /// Per-user MCS rate factor at schedule time (CQI-derived).
    rate_factors: BTreeMap<Imsi, f64>,
    total_prbs: u32,
    cell_rate_mbps: f64,
}

impl ScheduleOutcome {
    /// The PRB assignment for `imsi`, if the user was scheduled.
    pub fn assignment(&self, imsi: Imsi) -> Option<PrbAssignment> {
        self.assignments.get(&imsi).copied()
    }

    /// All scheduled users.
    pub fn scheduled_users(&self) -> impl Iterator<Item = (&Imsi, &PrbAssignment)> {
        self.assignments.iter()
    }

    /// Number of PRBs granted in total.
    pub fn prbs_used(&self) -> u32 {
        self.assignments.values().map(|a| a.count).sum()
    }

    /// The data rate `imsi` obtains this interval, Mb/s: its PRB share of
    /// the cell, scaled by the MCS its reported CQI supports.
    pub fn user_rate_mbps(&self, imsi: Imsi) -> f64 {
        match self.assignments.get(&imsi) {
            Some(a) => {
                let factor = self.rate_factors.get(&imsi).copied().unwrap_or(1.0);
                self.cell_rate_mbps * factor * a.count as f64 / self.total_prbs as f64
            }
            None => 0.0,
        }
    }

    /// Verifies the scheduler invariants: no grid overflow, assignments
    /// consecutive and non-overlapping.
    pub fn check_invariants(&self) -> bool {
        if self.prbs_used() > self.total_prbs {
            return false;
        }
        let mut spans: Vec<(u32, u32)> = self
            .assignments
            .values()
            .map(|a| (a.start, a.start + a.count))
            .collect();
        spans.sort_unstable();
        spans.windows(2).all(|w| w[0].1 <= w[1].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enb_with_users(n_slices: usize, users_per_slice: usize) -> EnodeB {
        let mut enb = EnodeB::prototype(LteBand::Band7);
        let mut next = 1000;
        for s in 0..n_slices {
            for _ in 0..users_per_slice {
                let ue = UserEquipment {
                    imsi: Imsi(next),
                    band: LteBand::Band7,
                };
                let msg = enb.attach(ue).expect("band matches");
                let imsi = extract_imsi(&msg).expect("attach carries IMSI");
                enb.associate(imsi, s);
                next += 1;
            }
        }
        enb
    }

    #[test]
    fn attach_rejects_wrong_band() {
        let mut enb = EnodeB::prototype(LteBand::Band7);
        let ue = UserEquipment {
            imsi: Imsi(1),
            band: LteBand::Band38,
        };
        assert!(enb.attach(ue).is_none());
        assert!(enb.attached_users().is_empty());
    }

    #[test]
    fn imsi_extraction_from_s1ap() {
        assert_eq!(
            extract_imsi(&S1apMessage::InitialUeMessage {
                enb_ue_id: 0,
                imsi: Imsi(42)
            }),
            Some(Imsi(42))
        );
        assert_eq!(extract_imsi(&S1apMessage::Other), None);
    }

    #[test]
    fn schedule_respects_slice_shares() {
        let enb = enb_with_users(2, 1);
        let out = enb.schedule(&[0.6, 0.4]);
        assert!(out.check_invariants());
        // 0.6 * 25 = 15 PRBs, 0.4 * 25 = 10 PRBs.
        assert_eq!(out.assignment(Imsi(1000)).unwrap().count, 15);
        assert_eq!(out.assignment(Imsi(1001)).unwrap().count, 10);
    }

    #[test]
    fn zero_share_user_is_not_scheduled() {
        let enb = enb_with_users(2, 1);
        let out = enb.schedule(&[1.0, 0.0]);
        assert!(out.assignment(Imsi(1000)).is_some());
        assert!(out.assignment(Imsi(1001)).is_none());
        assert_eq!(out.user_rate_mbps(Imsi(1001)), 0.0);
    }

    #[test]
    fn assignments_are_consecutive() {
        let enb = enb_with_users(2, 2);
        let out = enb.schedule(&[0.5, 0.5]);
        assert!(out.check_invariants());
        let mut spans: Vec<(u32, u32)> = out
            .scheduled_users()
            .map(|(_, a)| (a.start, a.count))
            .collect();
        spans.sort_unstable();
        // Users are packed back-to-back from PRB 0.
        let mut expected_start = 0;
        for (start, count) in spans {
            assert_eq!(start, expected_start);
            expected_start = start + count;
        }
    }

    #[test]
    fn shares_within_slice_are_balanced() {
        let enb = enb_with_users(1, 3);
        let out = enb.schedule(&[1.0]);
        let counts: Vec<u32> = out.scheduled_users().map(|(_, a)| a.count).collect();
        assert_eq!(counts.iter().sum::<u32>(), 25);
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "uneven split {counts:?}");
    }

    #[test]
    fn overshooting_shares_are_trimmed_to_grid() {
        let enb = enb_with_users(2, 1);
        let out = enb.schedule(&[0.9, 0.9]);
        assert!(out.prbs_used() <= 25);
        assert!(out.check_invariants());
    }

    #[test]
    fn user_rate_scales_with_prbs() {
        let enb = enb_with_users(1, 1);
        let full = enb.schedule(&[1.0]).user_rate_mbps(Imsi(1000));
        let half = enb.schedule(&[0.48]).user_rate_mbps(Imsi(1000));
        assert!((full - 18.0).abs() < 1e-9);
        assert!((half - 18.0 * 12.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn cqi_scales_user_rate() {
        let mut enb = enb_with_users(1, 1);
        let full = enb.schedule(&[1.0]).user_rate_mbps(Imsi(1000));
        enb.report_cqi(Imsi(1000), Cqi::new(7));
        let degraded = enb.schedule(&[1.0]).user_rate_mbps(Imsi(1000));
        let expected = full * Cqi::new(7).rate_factor();
        assert!((degraded - expected).abs() < 1e-9);
        assert!(
            degraded < full * 0.3,
            "CQI 7 is roughly a quarter of peak MCS"
        );
    }

    #[test]
    fn cqi_table_is_monotone() {
        for v in 1..15u8 {
            assert!(
                Cqi::new(v).spectral_efficiency() < Cqi::new(v + 1).spectral_efficiency(),
                "CQI {v}"
            );
        }
        assert_eq!(Cqi::default(), Cqi::MAX);
        assert!((Cqi::MAX.rate_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "CQI must be 1..=15")]
    fn cqi_zero_rejected() {
        Cqi::new(0);
    }

    #[test]
    fn unassociated_user_is_ignored() {
        let mut enb = EnodeB::prototype(LteBand::Band7);
        enb.attach(UserEquipment {
            imsi: Imsi(5),
            band: LteBand::Band7,
        });
        let out = enb.schedule(&[1.0]);
        assert!(out.assignment(Imsi(5)).is_none());
    }
}
