//! Transport network simulator — the OpenDayLight/OpenFlow substitute.
//!
//! Reproduces the mechanics the paper's **transport manager** controls
//! (Sec. V-B): SDN switches with flow tables and rate-limiting meters slice
//! the RAN↔edge link bandwidth; user↔slice association uses source and
//! destination IP addresses. OpenFlow can only change a user's bandwidth by
//! deleting and re-creating the meter and its attached flows, which breaks
//! the network during the deletion–creation interval — the transport
//! manager hides it by staging a **parallel configuration** and atomically
//! transitioning once the new one is installed (make-before-break). Both
//! reconfiguration modes are modeled so the outage can be measured.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IpAddr(pub [u8; 4]);

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// A flow match on (src, dst) IP — how the transport network identifies a
/// user's slice (Sec. V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowMatch {
    /// Source IP (the UE's address).
    pub src: IpAddr,
    /// Destination IP (the edge server's address).
    pub dst: IpAddr,
}

/// A meter identifier (OpenFlow meter table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MeterId(pub u32);

/// An OpenFlow-style rate-limiting meter with a drop band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Meter {
    /// Identifier in the meter table.
    pub id: MeterId,
    /// Committed rate in Mb/s; traffic beyond it is dropped.
    pub rate_mbps: f64,
}

/// A flow-table entry pointing at a meter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowEntry {
    /// Match fields.
    pub matcher: FlowMatch,
    /// Meter applied to matched traffic.
    pub meter: MeterId,
}

/// One OpenFlow switch: a flow table plus a meter table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Switch {
    flows: BTreeMap<FlowMatch, MeterId>,
    meters: BTreeMap<MeterId, Meter>,
}

impl Switch {
    /// Creates an empty switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) a meter.
    pub fn install_meter(&mut self, meter: Meter) {
        self.meters.insert(meter.id, meter);
    }

    /// Removes a meter and every flow attached to it (the OpenFlow
    /// delete-meter cascade that causes the outage).
    pub fn remove_meter(&mut self, id: MeterId) {
        self.meters.remove(&id);
        self.flows.retain(|_, m| *m != id);
    }

    /// Installs a flow entry.
    ///
    /// # Errors
    ///
    /// Returns an error string if the referenced meter does not exist.
    pub fn install_flow(&mut self, entry: FlowEntry) -> Result<(), String> {
        if !self.meters.contains_key(&entry.meter) {
            return Err(format!("meter {:?} not installed", entry.meter));
        }
        self.flows.insert(entry.matcher, entry.meter);
        Ok(())
    }

    /// The forwarding rate for traffic matching `m`, Mb/s; `0` (drop) when
    /// no flow matches — this is the outage state.
    pub fn rate_for(&self, m: FlowMatch) -> f64 {
        self.flows
            .get(&m)
            .and_then(|id| self.meters.get(id))
            .map_or(0.0, |meter| meter.rate_mbps)
    }

    /// Number of installed flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Number of installed meters.
    pub fn meter_count(&self) -> usize {
        self.meters.len()
    }
}

/// Bandwidth-reconfiguration strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigMode {
    /// Vanilla OpenFlow: delete the meter (+flows), then re-create — the
    /// network is broken during the deletion–creation interval.
    BreakBeforeMake,
    /// The paper's transport manager: install a parallel configuration,
    /// transition, then release the old one — no outage.
    MakeBeforeBreak,
}

/// A path of switches between an eNodeB and an edge server, managed by an
/// SDN controller through its northbound API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdnController {
    switches: Vec<Switch>,
    /// Seconds of outage a delete–create cycle costs per switch.
    deletion_creation_interval_s: f64,
    /// Next unallocated meter id.
    next_meter: u32,
    /// Per-flow currently active meter ids (one per switch).
    active: BTreeMap<FlowMatch, Vec<MeterId>>,
    /// Accumulated outage seconds (only grows under break-before-make).
    outage_seconds: f64,
}

impl SdnController {
    /// Creates a controller over a path of `n_switches` switches.
    /// `deletion_creation_interval_s` is the measured gap between a meter's
    /// deletion and its re-creation (per switch).
    ///
    /// # Panics
    ///
    /// Panics if `n_switches == 0` or the interval is negative.
    pub fn new(n_switches: usize, deletion_creation_interval_s: f64) -> Self {
        assert!(n_switches > 0, "a transport path needs at least one switch");
        assert!(deletion_creation_interval_s >= 0.0, "negative interval");
        Self {
            switches: vec![Switch::new(); n_switches],
            deletion_creation_interval_s,
            next_meter: 1,
            active: BTreeMap::new(),
            outage_seconds: 0.0,
        }
    }

    /// The prototype: 6 OpenFlow 1.3 switches (Table II); a 50 ms
    /// delete–create gap per switch.
    pub fn prototype() -> Self {
        Self::new(6, 0.05)
    }

    /// The switches on the path.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// Total outage accumulated by break-before-make reconfigurations,
    /// seconds.
    pub fn outage_seconds(&self) -> f64 {
        self.outage_seconds
    }

    /// The per-switch meter delete–create interval in effect, seconds.
    pub fn deletion_creation_interval_s(&self) -> f64 {
        self.deletion_creation_interval_s
    }

    /// Reconfigures the modeled per-switch delete–create interval (e.g. to
    /// study slower control planes).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or non-finite.
    pub fn set_deletion_creation_interval_s(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid interval {seconds}"
        );
        self.deletion_creation_interval_s = seconds;
    }

    /// Sets `flow`'s bandwidth to `rate_mbps` along the whole path.
    ///
    /// With [`ReconfigMode::BreakBeforeMake`] the old meters are removed
    /// before the new ones exist, accruing outage time; with
    /// [`ReconfigMode::MakeBeforeBreak`] new meters are installed in
    /// parallel and the flows repointed before the old meters are released,
    /// so the flow never loses service.
    ///
    /// # Panics
    ///
    /// Panics if `rate_mbps` is negative or non-finite.
    pub fn set_bandwidth(&mut self, flow: FlowMatch, rate_mbps: f64, mode: ReconfigMode) {
        assert!(
            rate_mbps.is_finite() && rate_mbps >= 0.0,
            "invalid rate {rate_mbps}"
        );
        let old = self.active.remove(&flow);
        match mode {
            ReconfigMode::BreakBeforeMake => {
                // Delete first: the flow is dark until re-created.
                if let Some(old_ids) = &old {
                    for (sw, id) in self.switches.iter_mut().zip(old_ids) {
                        sw.remove_meter(*id);
                    }
                    self.outage_seconds +=
                        self.deletion_creation_interval_s * self.switches.len() as f64;
                }
                let ids = self.install_path(flow, rate_mbps);
                self.active.insert(flow, ids);
            }
            ReconfigMode::MakeBeforeBreak => {
                // Parallel configuration: install new meters, repoint flows,
                // then release the old meters. rate_for(flow) never hits 0.
                let ids = self.install_path(flow, rate_mbps);
                if let Some(old_ids) = &old {
                    for (sw, id) in self.switches.iter_mut().zip(old_ids) {
                        sw.remove_meter(*id);
                    }
                }
                self.active.insert(flow, ids);
            }
        }
    }

    /// Installs a fresh meter + flow entry for `flow` on every switch and
    /// returns the allocated meter ids.
    fn install_path(&mut self, flow: FlowMatch, rate_mbps: f64) -> Vec<MeterId> {
        let mut ids = Vec::with_capacity(self.switches.len());
        for sw in &mut self.switches {
            let id = MeterId(self.next_meter);
            self.next_meter += 1;
            sw.install_meter(Meter { id, rate_mbps });
            sw.install_flow(FlowEntry {
                matcher: flow,
                meter: id,
            })
            .expect("meter installed just above");
            ids.push(id);
        }
        ids
    }

    /// End-to-end rate for `flow`: the minimum meter rate along the path
    /// (0 during an outage).
    pub fn path_rate_mbps(&self, flow: FlowMatch) -> f64 {
        let bottleneck = self
            .switches
            .iter()
            .map(|sw| sw.rate_for(flow))
            .fold(f64::INFINITY, f64::min);
        if bottleneck.is_finite() {
            bottleneck
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowMatch {
        FlowMatch {
            src: IpAddr([10, 0, 0, 1]),
            dst: IpAddr([192, 168, 1, 10]),
        }
    }

    #[test]
    fn switch_meters_flows_and_rates() {
        let mut sw = Switch::new();
        sw.install_meter(Meter {
            id: MeterId(1),
            rate_mbps: 40.0,
        });
        sw.install_flow(FlowEntry {
            matcher: flow(),
            meter: MeterId(1),
        })
        .unwrap();
        assert_eq!(sw.rate_for(flow()), 40.0);
        let other = FlowMatch {
            src: IpAddr([10, 0, 0, 2]),
            dst: IpAddr([192, 168, 1, 10]),
        };
        assert_eq!(sw.rate_for(other), 0.0);
    }

    #[test]
    fn flow_install_requires_meter() {
        let mut sw = Switch::new();
        assert!(sw
            .install_flow(FlowEntry {
                matcher: flow(),
                meter: MeterId(9)
            })
            .is_err());
    }

    #[test]
    fn meter_delete_cascades_to_flows() {
        let mut sw = Switch::new();
        sw.install_meter(Meter {
            id: MeterId(1),
            rate_mbps: 40.0,
        });
        sw.install_flow(FlowEntry {
            matcher: flow(),
            meter: MeterId(1),
        })
        .unwrap();
        sw.remove_meter(MeterId(1));
        assert_eq!(sw.flow_count(), 0);
        assert_eq!(sw.rate_for(flow()), 0.0);
    }

    #[test]
    fn make_before_break_has_no_outage() {
        let mut ctl = SdnController::prototype();
        ctl.set_bandwidth(flow(), 40.0, ReconfigMode::MakeBeforeBreak);
        assert_eq!(ctl.path_rate_mbps(flow()), 40.0);
        for rate in [20.0, 60.0, 10.0] {
            ctl.set_bandwidth(flow(), rate, ReconfigMode::MakeBeforeBreak);
            assert_eq!(ctl.path_rate_mbps(flow()), rate);
        }
        assert_eq!(ctl.outage_seconds(), 0.0);
    }

    #[test]
    fn break_before_make_accrues_outage() {
        let mut ctl = SdnController::prototype();
        ctl.set_bandwidth(flow(), 40.0, ReconfigMode::BreakBeforeMake);
        assert_eq!(
            ctl.outage_seconds(),
            0.0,
            "first install has nothing to delete"
        );
        ctl.set_bandwidth(flow(), 20.0, ReconfigMode::BreakBeforeMake);
        // 6 switches × 50 ms.
        assert!((ctl.outage_seconds() - 0.3).abs() < 1e-12);
        ctl.set_bandwidth(flow(), 30.0, ReconfigMode::BreakBeforeMake);
        assert!((ctl.outage_seconds() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn old_meters_are_released_after_transition() {
        let mut ctl = SdnController::new(2, 0.01);
        ctl.set_bandwidth(flow(), 40.0, ReconfigMode::MakeBeforeBreak);
        ctl.set_bandwidth(flow(), 20.0, ReconfigMode::MakeBeforeBreak);
        // Exactly one meter per switch remains.
        for sw in ctl.switches() {
            assert_eq!(sw.meter_count(), 1);
            assert_eq!(sw.flow_count(), 1);
        }
    }

    #[test]
    fn path_rate_is_bottleneck_rate() {
        let mut ctl = SdnController::new(3, 0.0);
        ctl.set_bandwidth(flow(), 50.0, ReconfigMode::MakeBeforeBreak);
        // Manually throttle the middle switch.
        let f = flow();
        let mid = &mut ctl.switches[1];
        let id = MeterId(999);
        mid.install_meter(Meter { id, rate_mbps: 5.0 });
        mid.install_flow(FlowEntry {
            matcher: f,
            meter: id,
        })
        .unwrap();
        assert_eq!(ctl.path_rate_mbps(f), 5.0);
    }

    #[test]
    fn two_slices_get_independent_rates() {
        let mut ctl = SdnController::prototype();
        let f1 = flow();
        let f2 = FlowMatch {
            src: IpAddr([10, 0, 0, 2]),
            dst: IpAddr([192, 168, 1, 10]),
        };
        ctl.set_bandwidth(f1, 60.0, ReconfigMode::MakeBeforeBreak);
        ctl.set_bandwidth(f2, 20.0, ReconfigMode::MakeBeforeBreak);
        assert_eq!(ctl.path_rate_mbps(f1), 60.0);
        assert_eq!(ctl.path_rate_mbps(f2), 20.0);
    }
}
