//! GPU computing simulator — the CUDA/MPS substitute.
//!
//! Reproduces the mechanics the paper's **computing manager** controls
//! (Sec. V-C): user applications launch kernels that request CUDA threads;
//! with the multi-process service (MPS) several tenants share the GPU, but
//! NVIDIA does not expose the scheduling, so a tenant's occupancy cannot be
//! controlled directly. The manager's **kernel-split** mechanism rewrites a
//! kernel requesting many threads into multiple small consecutive kernels
//! of at most the tenant's virtual resource, so — because kernel execution
//! is in-order — the tenant never occupies more threads than allocated.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A CUDA kernel launch: a thread request plus the work it performs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Threads named in the execution-configuration syntax `<<<...>>>`.
    pub threads: u32,
    /// Work carried by this kernel, GFLOPs.
    pub gflops: f64,
}

impl Kernel {
    /// Creates a kernel.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `gflops` is negative.
    pub fn new(threads: u32, gflops: f64) -> Self {
        assert!(threads > 0, "a kernel needs at least one thread");
        assert!(
            gflops >= 0.0 && gflops.is_finite(),
            "invalid workload {gflops}"
        );
        Self { threads, gflops }
    }
}

/// Splits `kernel` into consecutive kernels of at most `max_threads` each,
/// preserving total work (work divides proportionally to threads).
///
/// This is the kernel-split mechanism of Sec. V-C. Returns an empty vector
/// when `max_threads == 0` (a tenant with no virtual resources runs
/// nothing).
pub fn split_kernel(kernel: Kernel, max_threads: u32) -> Vec<Kernel> {
    if max_threads == 0 {
        return Vec::new();
    }
    if kernel.threads <= max_threads {
        return vec![kernel];
    }
    let full_chunks = kernel.threads / max_threads;
    let tail = kernel.threads % max_threads;
    let per_thread_work = kernel.gflops / kernel.threads as f64;
    let mut out = Vec::with_capacity(full_chunks as usize + usize::from(tail > 0));
    for _ in 0..full_chunks {
        out.push(Kernel {
            threads: max_threads,
            gflops: per_thread_work * max_threads as f64,
        });
    }
    if tail > 0 {
        out.push(Kernel {
            threads: tail,
            gflops: per_thread_work * tail as f64,
        });
    }
    out
}

/// A tenant application's identity on the GPU (associated to a slice by IP
/// address in the computing manager).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u32);

/// A shared GPU under MPS: tenants hold virtual thread budgets and submit
/// kernels that execute in order per tenant.
///
/// The prototype's edge servers are GTX 1080 Ti cards budgeted at 51200
/// concurrent threads per RA (Sec. VI-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpu {
    total_threads: u32,
    /// Throughput at full occupancy, GFLOPs/s.
    peak_gflops_s: f64,
    /// Tenant → maximum concurrent threads (its virtual resource).
    budgets: BTreeMap<TenantId, u32>,
    /// Tenant → pending kernel queue (in launch order, post-split).
    queues: BTreeMap<TenantId, Vec<Kernel>>,
    /// Peak concurrent occupancy observed per tenant (for reporting).
    peak_occupancy: BTreeMap<TenantId, u32>,
    /// Set if any kernel ever executed with more threads than its tenant's
    /// budget at that moment (the invariant the kernel-split mechanism
    /// guarantees can never happen).
    occupancy_violated: bool,
}

impl Gpu {
    /// Creates a GPU with the given thread capacity and peak throughput.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity or non-positive throughput.
    pub fn new(total_threads: u32, peak_gflops_s: f64) -> Self {
        assert!(total_threads > 0, "GPU needs threads");
        assert!(peak_gflops_s > 0.0, "GPU needs throughput");
        Self {
            total_threads,
            peak_gflops_s,
            budgets: BTreeMap::new(),
            queues: BTreeMap::new(),
            peak_occupancy: BTreeMap::new(),
            occupancy_violated: false,
        }
    }

    /// The prototype GPU: 51200 threads, ~8000 GFLOPs/s effective YOLO
    /// throughput per RA (a GTX 1080 Ti runs YOLOv3-608 at ~30 fps ≈
    /// 4200 GFLOPs/s; the prototype pairs two cards per edge server,
    /// Table II).
    pub fn prototype() -> Self {
        Self::new(51_200, 8_000.0)
    }

    /// Total thread capacity.
    pub fn total_threads(&self) -> u32 {
        self.total_threads
    }

    /// Peak throughput, GFLOPs/s.
    pub fn peak_gflops_s(&self) -> f64 {
        self.peak_gflops_s
    }

    /// Sets a tenant's virtual resource (maximum concurrent threads).
    ///
    /// Pending kernels are re-split against the new budget: the manager
    /// performs splitting in the modified user application at launch time
    /// (Sec. V-C), so anything not yet on the GPU is re-shaped by the next
    /// virtual-resource update.
    pub fn set_budget(&mut self, tenant: TenantId, max_threads: u32) {
        self.budgets.insert(tenant, max_threads);
        if let Some(queue) = self.queues.get_mut(&tenant) {
            let pending = std::mem::take(queue);
            for k in pending {
                queue.extend(split_kernel(k, max_threads));
            }
        }
    }

    /// A tenant's current budget (0 if unknown).
    pub fn budget(&self, tenant: TenantId) -> u32 {
        self.budgets.get(&tenant).copied().unwrap_or(0)
    }

    /// Submits an application kernel. The computing manager splits it
    /// against the tenant's budget before it reaches the kernel queue, so
    /// in-order execution bounds the tenant's occupancy by its budget.
    pub fn submit(&mut self, tenant: TenantId, kernel: Kernel) {
        let budget = self.budget(tenant);
        let queue = self.queues.entry(tenant).or_default();
        for k in split_kernel(kernel, budget) {
            queue.push(k);
        }
    }

    /// Pending kernels for a tenant.
    pub fn pending(&self, tenant: TenantId) -> usize {
        self.queues.get(&tenant).map_or(0, Vec::len)
    }

    /// The tenant's effective throughput in GFLOPs/s: its budget share of
    /// the card (MPS partitions SMs proportionally to occupancy).
    pub fn tenant_gflops_s(&self, tenant: TenantId) -> f64 {
        self.peak_gflops_s * self.budget(tenant) as f64 / self.total_threads as f64
    }

    /// Advances the execution timeline by `dt` seconds, draining each
    /// tenant's kernel queue in order at the tenant's effective throughput.
    /// Returns the completed work per tenant in GFLOPs.
    pub fn advance(&mut self, dt: f64) -> BTreeMap<TenantId, f64> {
        assert!(dt >= 0.0 && dt.is_finite(), "invalid time step {dt}");
        let mut done = BTreeMap::new();
        for (&tenant, queue) in &mut self.queues {
            let budget = self.budgets.get(&tenant).copied().unwrap_or(0);
            let rate = self.peak_gflops_s * budget as f64 / self.total_threads as f64;
            let mut capacity = rate * dt;
            let mut completed = 0.0;
            while capacity > 0.0 {
                let Some(front) = queue.first_mut() else {
                    break;
                };
                // In-order execution: the running kernel's threads are the
                // tenant's occupancy — checked against the budget in effect
                // *now*.
                if front.threads > budget {
                    self.occupancy_violated = true;
                }
                let occ = self.peak_occupancy.entry(tenant).or_insert(0);
                *occ = (*occ).max(front.threads);
                if front.gflops <= capacity {
                    capacity -= front.gflops;
                    completed += front.gflops;
                    queue.remove(0);
                } else {
                    front.gflops -= capacity;
                    completed += capacity;
                    capacity = 0.0;
                }
            }
            if completed > 0.0 {
                done.insert(tenant, completed);
            }
        }
        done
    }

    /// The invariant the kernel-split mechanism guarantees: no kernel ever
    /// executed with more threads than its tenant's budget at that moment.
    pub fn occupancy_within_budgets(&self) -> bool {
        !self.occupancy_violated
    }

    /// Peak concurrent occupancy a tenant has reached so far.
    pub fn peak_occupancy(&self, tenant: TenantId) -> u32 {
        self.peak_occupancy.get(&tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_threads_and_work() {
        let k = Kernel::new(1000, 50.0);
        let parts = split_kernel(k, 300);
        assert_eq!(parts.len(), 4); // 300+300+300+100
        assert_eq!(parts.iter().map(|p| p.threads).sum::<u32>(), 1000);
        let work: f64 = parts.iter().map(|p| p.gflops).sum();
        assert!((work - 50.0).abs() < 1e-9);
        assert!(parts.iter().all(|p| p.threads <= 300));
    }

    #[test]
    fn split_is_identity_when_within_budget() {
        let k = Kernel::new(100, 5.0);
        assert_eq!(split_kernel(k, 100), vec![k]);
        assert_eq!(split_kernel(k, 500), vec![k]);
    }

    #[test]
    fn zero_budget_runs_nothing() {
        assert!(split_kernel(Kernel::new(100, 5.0), 0).is_empty());
        let mut gpu = Gpu::prototype();
        let t = TenantId(1);
        gpu.submit(t, Kernel::new(4096, 10.0));
        assert_eq!(gpu.pending(t), 0);
        assert_eq!(gpu.tenant_gflops_s(t), 0.0);
    }

    #[test]
    fn occupancy_never_exceeds_budget() {
        let mut gpu = Gpu::prototype();
        let t = TenantId(7);
        gpu.set_budget(t, 10_000);
        // An application kernel far larger than the budget.
        gpu.submit(t, Kernel::new(51_200, 140.0));
        gpu.advance(10.0);
        assert!(gpu.occupancy_within_budgets());
    }

    #[test]
    fn budget_shrink_resplits_pending_kernels() {
        let mut gpu = Gpu::prototype();
        let t = TenantId(3);
        gpu.set_budget(t, 40_000);
        gpu.submit(t, Kernel::new(51_200, 100.0));
        // Shrink before execution: queued kernels must be re-split.
        gpu.set_budget(t, 8_000);
        gpu.advance(10.0);
        assert!(gpu.occupancy_within_budgets());
    }

    #[test]
    fn throughput_is_proportional_to_budget() {
        let mut gpu = Gpu::new(1000, 100.0);
        gpu.set_budget(TenantId(1), 250);
        gpu.set_budget(TenantId(2), 750);
        assert!((gpu.tenant_gflops_s(TenantId(1)) - 25.0).abs() < 1e-12);
        assert!((gpu.tenant_gflops_s(TenantId(2)) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn advance_drains_in_order() {
        let mut gpu = Gpu::new(1000, 100.0);
        let t = TenantId(1);
        gpu.set_budget(t, 1000); // full card: 100 GFLOPs/s
        gpu.submit(t, Kernel::new(100, 30.0));
        gpu.submit(t, Kernel::new(100, 30.0));
        let done = gpu.advance(0.5); // 50 GFLOPs of capacity
        assert!((done[&t] - 50.0).abs() < 1e-9);
        assert_eq!(gpu.pending(t), 1); // first kernel done, second partial
        let done = gpu.advance(0.1); // 10 more
        assert!((done[&t] - 10.0).abs() < 1e-9);
        assert_eq!(gpu.pending(t), 0);
    }

    #[test]
    fn tenants_share_without_interference() {
        let mut gpu = Gpu::new(1000, 100.0);
        gpu.set_budget(TenantId(1), 400);
        gpu.set_budget(TenantId(2), 600);
        gpu.submit(TenantId(1), Kernel::new(400, 100.0));
        gpu.submit(TenantId(2), Kernel::new(600, 100.0));
        let done = gpu.advance(1.0);
        assert!((done[&TenantId(1)] - 40.0).abs() < 1e-9);
        assert!((done[&TenantId(2)] - 60.0).abs() < 1e-9);
        assert!(gpu.occupancy_within_budgets());
    }
}
