//! TD3-vs-DDPG ablation: on a noisy-reward task, TD3's clipped double-Q
//! should resist critic overestimation at least as well as DDPG — the
//! motivation for shipping it as EdgeSlice's upgrade path.

use edgeslice_rl::{evaluate, Ddpg, DdpgConfig, Environment, Step, Td3, Td3Config};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tracking with heavy reward noise: the optimal action still mirrors the
/// state, but single-sample reward estimates are unreliable — the regime
/// where unclipped critics overestimate.
#[derive(Debug, Clone)]
struct NoisyTrackingEnv {
    target: f64,
    steps: usize,
    horizon: usize,
}

impl Environment for NoisyTrackingEnv {
    fn state_dim(&self) -> usize {
        1
    }

    fn action_dim(&self) -> usize {
        1
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.target = rng.gen_range(0.2..0.8);
        self.steps = 0;
        vec![self.target]
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> Step {
        let err = action[0] - self.target;
        let noise: f64 = rng.gen_range(-0.5..0.5);
        let reward = 1.0 - err * err + noise;
        self.target = rng.gen_range(0.2..0.8);
        self.steps += 1;
        Step {
            next_state: vec![self.target],
            reward,
            done: self.steps >= self.horizon,
        }
    }
}

/// Noise-free evaluation of a policy on the underlying task.
fn true_score(mut policy: impl FnMut(&[f64]) -> Vec<f64>, rng: &mut StdRng) -> f64 {
    let mut env = NoisyTrackingEnv {
        target: 0.5,
        steps: 0,
        horizon: 20,
    };
    let mut total = 0.0;
    for _ in 0..10 {
        let mut s = env.reset(rng);
        for _ in 0..20 {
            let a = policy(&s);
            let err = a[0] - s[0];
            total += 1.0 - err * err; // deterministic part only
            let out = env.step(&a, rng);
            s = out.next_state;
            if out.done {
                break;
            }
        }
    }
    total / 10.0
}

#[test]
fn td3_learns_under_reward_noise() {
    let mut rng = StdRng::seed_from_u64(71);
    let mut env = NoisyTrackingEnv {
        target: 0.5,
        steps: 0,
        horizon: 20,
    };
    let cfg = Td3Config {
        hidden: 16,
        batch_size: 32,
        warmup: 200,
        noise_sigma: 0.4,
        gamma: 0.3,
        ..Default::default()
    };
    let mut agent = Td3::new(1, 1, cfg, &mut rng);
    agent.train(&mut env, 3_000, &mut rng);
    let s = true_score(|st| agent.policy(st), &mut rng);
    assert!(s > 19.0, "TD3 noisy-task score {s:.2}");
}

#[test]
fn ddpg_also_learns_but_td3_is_no_worse() {
    let mut rng = StdRng::seed_from_u64(72);
    let mut env = NoisyTrackingEnv {
        target: 0.5,
        steps: 0,
        horizon: 20,
    };
    let ddpg_cfg = DdpgConfig {
        hidden: 16,
        batch_size: 32,
        warmup: 200,
        noise_sigma: 0.4,
        gamma: 0.3,
        ..Default::default()
    };
    let mut ddpg = Ddpg::new(1, 1, ddpg_cfg, &mut rng);
    ddpg.train(&mut env, 3_000, &mut rng);
    let ddpg_score = true_score(|st| ddpg.policy(st), &mut rng);

    let mut rng2 = StdRng::seed_from_u64(72);
    let td3_cfg = Td3Config {
        hidden: 16,
        batch_size: 32,
        warmup: 200,
        noise_sigma: 0.4,
        gamma: 0.3,
        ..Default::default()
    };
    let mut td3 = Td3::new(1, 1, td3_cfg, &mut rng2);
    td3.train(&mut env, 3_000, &mut rng2);
    let td3_score = true_score(|st| td3.policy(st), &mut rng2);

    assert!(ddpg_score > 17.0, "DDPG noisy-task score {ddpg_score:.2}");
    // TD3 must be competitive (within noise) or better.
    assert!(
        td3_score > ddpg_score - 1.0,
        "TD3 ({td3_score:.2}) should not trail DDPG ({ddpg_score:.2}) under reward noise"
    );
}

#[test]
fn both_policies_stay_in_unit_box() {
    let mut rng = StdRng::seed_from_u64(73);
    let ddpg = Ddpg::new(2, 3, DdpgConfig::default(), &mut rng);
    let td3 = Td3::new(2, 3, Td3Config::default(), &mut rng);
    for s in [[-10.0, 10.0], [0.0, 0.0], [3.0, -3.0]] {
        for a in [ddpg.policy(&s), td3.policy(&s)] {
            assert!(a.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}

#[test]
fn noise_free_evaluation_matches_evaluate_shape() {
    // Sanity: the crate's `evaluate` helper and our noise-free scorer agree
    // on ordering for an oracle vs a constant policy.
    let mut rng = StdRng::seed_from_u64(74);
    let mut env = NoisyTrackingEnv {
        target: 0.5,
        steps: 0,
        horizon: 20,
    };
    let oracle = evaluate(&mut env, |s| vec![s[0]], 20, 20, &mut rng);
    let constant = evaluate(&mut env, |_| vec![0.0], 20, 20, &mut rng);
    assert!(oracle > constant);
}
