//! Cross-algorithm integration tests: every technique must be able to
//! learn the same continuous-control task through the common
//! [`Environment`] interface — the property Fig. 10b relies on.

use edgeslice_rl::{
    evaluate, Ddpg, DdpgConfig, Environment, Ppo, PpoConfig, Sac, SacConfig, Step, Trpo,
    TrpoConfig, Vpg, VpgConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2-D bandit-with-state: reward peaks when the action mirrors the state.
#[derive(Debug, Clone)]
struct MirrorEnv {
    state: [f64; 2],
    steps: usize,
    horizon: usize,
}

impl MirrorEnv {
    fn new(horizon: usize) -> Self {
        Self {
            state: [0.5, 0.5],
            steps: 0,
            horizon,
        }
    }
}

impl Environment for MirrorEnv {
    fn state_dim(&self) -> usize {
        2
    }

    fn action_dim(&self) -> usize {
        2
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.state = [rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)];
        self.steps = 0;
        self.state.to_vec()
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> Step {
        let err: f64 = action
            .iter()
            .zip(&self.state)
            .map(|(a, s)| (a - s) * (a - s))
            .sum();
        self.state = [rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)];
        self.steps += 1;
        Step {
            next_state: self.state.to_vec(),
            reward: 1.0 - err,
            done: self.steps >= self.horizon,
        }
    }
}

/// Perfect play earns `horizon`; uniform-random play roughly
/// `horizon * (1 - 2/12 - ...) ≈ 0.83 horizon`.
const HORIZON: usize = 16;
const TARGET: f64 = 15.0;

fn score(policy: impl FnMut(&[f64]) -> Vec<f64>, rng: &mut StdRng) -> f64 {
    let mut env = MirrorEnv::new(HORIZON);
    evaluate(&mut env, policy, 10, HORIZON, rng)
}

#[test]
fn ddpg_learns_mirror() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut env = MirrorEnv::new(HORIZON);
    // The mirror task is a contextual bandit (next state independent of
    // the action, horizon not observable): a small γ keeps the critic's
    // bootstrap from chasing the hidden time-to-go.
    let cfg = DdpgConfig {
        hidden: 16,
        batch_size: 32,
        warmup: 200,
        noise_sigma: 0.4,
        gamma: 0.3,
        ..Default::default()
    };
    let mut agent = Ddpg::new(2, 2, cfg, &mut rng);
    agent.train(&mut env, 4_000, &mut rng);
    let s = score(|st| agent.policy(st), &mut rng);
    assert!(s > TARGET, "DDPG score {s:.2}");
}

#[test]
fn sac_learns_mirror() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut env = MirrorEnv::new(HORIZON);
    let cfg = SacConfig {
        hidden: 16,
        batch_size: 32,
        warmup: 100,
        ..Default::default()
    };
    let mut agent = Sac::new(2, 2, cfg, &mut rng);
    agent.train(&mut env, 2_500, &mut rng);
    let s = score(|st| agent.policy(st), &mut rng);
    assert!(s > TARGET - 0.7, "SAC score {s:.2}");
}

#[test]
fn ppo_learns_mirror() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut env = MirrorEnv::new(HORIZON);
    let cfg = PpoConfig {
        hidden: 16,
        rollout_len: 256,
        policy_lr: 1e-3,
        ..Default::default()
    };
    let mut agent = Ppo::new(2, 2, cfg, &mut rng);
    agent.train(&mut env, 25, &mut rng);
    let s = score(|st| agent.policy(st), &mut rng);
    assert!(s > TARGET - 0.7, "PPO score {s:.2}");
}

#[test]
fn trpo_learns_mirror() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut env = MirrorEnv::new(HORIZON);
    let cfg = TrpoConfig {
        hidden: 16,
        rollout_len: 256,
        ..Default::default()
    };
    let mut agent = Trpo::new(2, 2, cfg, &mut rng);
    agent.train(&mut env, 25, &mut rng);
    let s = score(|st| agent.policy(st), &mut rng);
    assert!(s > TARGET - 1.0, "TRPO score {s:.2}");
}

#[test]
fn vpg_learns_mirror() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut env = MirrorEnv::new(HORIZON);
    let cfg = VpgConfig {
        hidden: 16,
        rollout_len: 256,
        ..Default::default()
    };
    let mut agent = Vpg::new(2, 2, cfg, &mut rng);
    agent.train(&mut env, 35, &mut rng);
    let s = score(|st| agent.policy(st), &mut rng);
    assert!(s > TARGET - 1.5, "VPG score {s:.2}");
}

#[test]
fn all_policies_emit_unit_box_actions() {
    let mut rng = StdRng::seed_from_u64(6);
    let env = MirrorEnv::new(HORIZON);
    let _ = &env;
    let state = [0.25, 0.75];
    let ddpg = Ddpg::new(2, 2, DdpgConfig::default(), &mut rng);
    let sac = Sac::new(2, 2, SacConfig::default(), &mut rng);
    let ppo = Ppo::new(2, 2, PpoConfig::default(), &mut rng);
    let trpo = Trpo::new(2, 2, TrpoConfig::default(), &mut rng);
    let vpg = Vpg::new(2, 2, VpgConfig::default(), &mut rng);
    for action in [
        ddpg.policy(&state),
        sac.policy(&state),
        ppo.policy(&state),
        trpo.policy(&state),
        vpg.policy(&state),
    ] {
        assert_eq!(action.len(), 2);
        assert!(action.iter().all(|a| (0.0..=1.0).contains(a)), "{action:?}");
    }
}
