//! Proves the steady-state training step is allocation-free.
//!
//! A counting global allocator wraps the system allocator; counting is
//! switched on only around the measured region, so test-harness and warm-up
//! allocations are ignored. The agent is warmed past its first update (which
//! legitimately grows every scratch buffer to steady-state capacity), then a
//! burst of further updates must perform **zero** heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use edgeslice_rl::{Ddpg, DdpgConfig, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counts `alloc`/`realloc` calls while [`ENABLED`] is set. Deallocations
/// are not counted: freeing during the measured region would itself imply a
/// prior allocation, and steady-state buffers are never freed anyway.
struct CountingAllocator;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Serializes the tests in this binary: [`ENABLED`] is process-global, so a
/// concurrently running test's setup allocations would otherwise leak into
/// another test's measured region.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Runs `f` with allocation counting enabled and returns how many heap
/// allocations it performed.
fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    f();
    ENABLED.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn ddpg_update_is_allocation_free_at_steady_state() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let config = DdpgConfig {
        hidden: 32,
        batch_size: 64,
        replay_capacity: 4_096,
        warmup: 0,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(11);
    let mut agent = Ddpg::new(4, 2, config, &mut rng);

    // Fill the replay memory well past a batch.
    for _ in 0..512 {
        let state: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let next_state: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let action: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..1.0)).collect();
        agent.observe(&Transition {
            state,
            action,
            reward: rng.gen_range(-1.0..1.0),
            next_state,
            done: rng.gen_range(0.0..1.0) < 0.05,
        });
    }

    // Warm-up updates: the first sizes every scratch buffer, a few more
    // catch any lazily-grown corner (e.g. Adam bias-correction state).
    for _ in 0..4 {
        assert!(agent.update(&mut rng).is_some());
    }

    // Steady state: a burst of updates must never touch the heap.
    let allocations = count_allocations(|| {
        for _ in 0..16 {
            let update = agent.update(&mut rng);
            assert!(update.is_some());
        }
    });
    assert_eq!(
        allocations, 0,
        "steady-state Ddpg::update performed {allocations} heap allocations"
    );
}

#[test]
fn blocked_parallel_kernels_and_fleet_forward_are_allocation_free() {
    use edgeslice_nn::{Activation, FleetScratch, Matrix, Mlp, Parallelism, TILE_K, TILE_N};

    let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(13);

    // Shapes past TILE_K/TILE_N so the plain entry points auto-dispatch to
    // the cache-blocked schedule (the packed B panel lives on the stack).
    let (m, k, n) = (8, TILE_K + 5, TILE_N + 3);
    let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0f64..1.0));
    let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0f64..1.0));
    let at = Matrix::from_fn(k, m, |_, _| rng.gen_range(-1.0f64..1.0));
    let br = Matrix::from_fn(n, k, |_, _| rng.gen_range(-1.0f64..1.0));
    let mut out = Matrix::zeros(1, 1);

    // Warm-up sizes the output buffer once per largest shape.
    a.matmul_into(&b, &mut out);
    at.matmul_at_b_into(&b, &mut out);
    a.matmul_a_bt_into(&br, &mut out);

    // `Threaded(1)` degrades to the inline path — the row-chunk seam itself
    // must be free. (`Threaded(2+)` spawns scoped OS threads, whose control
    // blocks allocate by construction; its byte-identity is pinned by the
    // property suite instead.)
    for par in [Parallelism::Sequential, Parallelism::Threaded(1)] {
        let allocations = count_allocations(|| {
            a.matmul_into(&b, &mut out);
            a.matmul_blocked_into(&b, &mut out);
            a.matmul_par_into(&b, &mut out, par);
            at.matmul_at_b_into(&b, &mut out);
            at.matmul_at_b_blocked_into(&b, &mut out);
            at.matmul_at_b_par_into(&b, &mut out, par);
            a.matmul_a_bt_into(&br, &mut out);
            a.matmul_a_bt_blocked_into(&br, &mut out);
            a.matmul_a_bt_par_into(&br, &mut out, par);
        });
        assert_eq!(
            allocations, 0,
            "steady-state blocked/parallel kernels ({par:?}) performed {allocations} heap allocations"
        );
    }

    // Batched multi-network forward: stage once, then steady-state passes
    // (restage + forward) must never touch the heap.
    let net = Mlp::new(
        &[12, 32, 32, 6],
        Activation::leaky_default(),
        Activation::Sigmoid,
        &mut rng,
    );
    let inputs: Vec<Vec<f64>> = (0..64)
        .map(|_| (0..12).map(|_| rng.gen_range(-1.0f64..1.0)).collect())
        .collect();
    let mut scratch = FleetScratch::new();
    scratch.begin(inputs.len(), 12);
    for (i, x) in inputs.iter().enumerate() {
        scratch.set_input_row(i, x);
    }
    net.forward_fleet_scratch(&mut scratch, Parallelism::Sequential);
    let allocations = count_allocations(|| {
        for _ in 0..8 {
            scratch.begin(inputs.len(), 12);
            for (i, x) in inputs.iter().enumerate() {
                scratch.set_input_row(i, x);
            }
            let out = net.forward_fleet_scratch(&mut scratch, Parallelism::Sequential);
            assert_eq!(out.shape(), (64, 6));
        }
    });
    assert_eq!(
        allocations, 0,
        "steady-state fleet forward performed {allocations} heap allocations"
    );
}

#[test]
fn rejected_update_during_warmup_is_also_allocation_free() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let config = DdpgConfig {
        batch_size: 64,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(12);
    let mut agent = Ddpg::new(2, 1, config, &mut rng);
    // Empty replay: sampling fails with a typed error, touching nothing.
    let allocations = count_allocations(|| {
        assert!(agent.update(&mut rng).is_none());
    });
    assert_eq!(
        allocations, 0,
        "warm-up rejection performed {allocations} heap allocations"
    );
}
