//! The agent–environment interface.

use rand::rngs::StdRng;

/// A reinforcement-learning environment with continuous states and actions.
///
/// Actions are **normalized to `[0, 1]` per dimension** — this matches the
/// paper's sigmoid actor output (Sec. VI-A); environments scale actions to
/// physical resource amounts internally. Episodes correspond to the paper's
/// time period `T` (a fixed number of time intervals `t`).
pub trait Environment {
    /// Dimensionality of the state vector.
    fn state_dim(&self) -> usize;

    /// Dimensionality of the (normalized) action vector.
    fn action_dim(&self) -> usize;

    /// Resets the environment to the start of an episode and returns the
    /// initial state.
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64>;

    /// Applies `action` (each component in `[0, 1]`), advances one decision
    /// epoch and returns the resulting step.
    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> Step;
}

/// The result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The state after the transition.
    pub next_state: Vec<f64>,
    /// The reward `r(s_t, a_t)`.
    pub reward: f64,
    /// True if the episode ended with this step.
    pub done: bool,
}

/// A single `(s, a, r, s', done)` transition, the unit stored in the replay
/// memory (Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f64>,
    /// Action taken (normalized).
    pub action: Vec<f64>,
    /// Reward received.
    pub reward: f64,
    /// State after the action.
    pub next_state: Vec<f64>,
    /// Episode-termination flag.
    pub done: bool,
}

/// Runs `policy` greedily for `episodes` full episodes and returns the mean
/// episodic return (undiscounted), the standard evaluation used for every
/// figure.
pub fn evaluate<E: Environment + ?Sized>(
    env: &mut E,
    mut policy: impl FnMut(&[f64]) -> Vec<f64>,
    episodes: usize,
    horizon: usize,
    rng: &mut StdRng,
) -> f64 {
    let mut total = 0.0;
    for _ in 0..episodes {
        let mut state = env.reset(rng);
        for _ in 0..horizon {
            let action = policy(&state);
            let step = env.step(&action, rng);
            total += step.reward;
            state = step.next_state;
            if step.done {
                break;
            }
        }
    }
    total / episodes.max(1) as f64
}

#[cfg(test)]
pub(crate) mod test_env {
    use super::*;
    use rand::Rng;

    /// A 1-D toy environment whose optimal action tracks the state:
    /// `reward = 1 - (action - target(s))²`. Deterministic dynamics walk the
    /// target around the unit interval, exercising state-dependence.
    #[derive(Debug, Clone)]
    pub struct TrackingEnv {
        target: f64,
        steps: usize,
        pub horizon: usize,
    }

    impl TrackingEnv {
        pub fn new(horizon: usize) -> Self {
            Self {
                target: 0.3,
                steps: 0,
                horizon,
            }
        }
    }

    impl Environment for TrackingEnv {
        fn state_dim(&self) -> usize {
            1
        }

        fn action_dim(&self) -> usize {
            1
        }

        fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
            self.target = rng.gen_range(0.2..0.8);
            self.steps = 0;
            vec![self.target]
        }

        fn step(&mut self, action: &[f64], _rng: &mut StdRng) -> Step {
            let err = action[0] - self.target;
            let reward = 1.0 - err * err;
            // The target drifts deterministically; state fully reveals it.
            self.target = 0.2 + 0.6 * ((self.target * 7.13).sin() * 0.5 + 0.5);
            self.steps += 1;
            Step {
                next_state: vec![self.target],
                reward,
                done: self.steps >= self.horizon,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_env::TrackingEnv;
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn evaluate_scores_good_policy_higher() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut env = TrackingEnv::new(20);
        let good = evaluate(&mut env, |s| vec![s[0]], 5, 20, &mut rng);
        let bad = evaluate(&mut env, |_| vec![0.0], 5, 20, &mut rng);
        assert!(good > bad, "good {good} should beat bad {bad}");
        assert!((good - 20.0).abs() < 1e-9, "perfect tracking earns 1/step");
    }

    #[test]
    fn episode_terminates_at_horizon() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut env = TrackingEnv::new(3);
        let mut s = env.reset(&mut rng);
        let mut steps = 0;
        loop {
            let out = env.step(&[s[0]], &mut rng);
            steps += 1;
            s = out.next_state;
            if out.done {
                break;
            }
        }
        assert_eq!(steps, 3);
    }
}
