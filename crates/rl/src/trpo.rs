//! Trust region policy optimization (Schulman et al. 2015) — a comparator
//! training technique in Fig. 10b.
//!
//! The natural-gradient direction is obtained by conjugate gradient on
//! Fisher-vector products. For a diagonal-Gaussian policy with
//! state-independent σ the Fisher matrix is the Gauss–Newton matrix
//! `F = (1/n) Jᵀ diag(1/σ²) J` of the mean network, so `F v` is computed
//! matrix-free as a Jacobian-vector product (forward difference) followed
//! by a transposed-Jacobian product (backpropagation). The log-std is held
//! fixed during the trust-region step, the usual simplification.

use edgeslice_nn::Matrix;
use edgeslice_optim::conjugate_gradient;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::{collect_rollout, gae, normalize_advantages, Environment, GaussianPolicy, ValueNet};

/// Hyper-parameters for [`Trpo`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrpoConfig {
    /// Hidden width of policy and value networks.
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ.
    pub lambda: f64,
    /// Trust-region radius δ (max mean KL per update).
    pub max_kl: f64,
    /// Conjugate-gradient iterations.
    pub cg_iters: usize,
    /// Damping added to Fisher-vector products.
    pub cg_damping: f64,
    /// Backtracking line-search shrink factor.
    pub backtrack_coef: f64,
    /// Maximum line-search steps.
    pub backtrack_iters: usize,
    /// Environment steps per update.
    pub rollout_len: usize,
    /// Value-function learning rate.
    pub value_lr: f64,
    /// Value-regression epochs per update.
    pub value_epochs: usize,
    /// Fixed policy log standard deviation.
    pub initial_log_std: f64,
}

impl Default for TrpoConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            gamma: 0.99,
            lambda: 0.95,
            max_kl: 0.01,
            cg_iters: 10,
            cg_damping: 0.1,
            backtrack_coef: 0.8,
            backtrack_iters: 10,
            rollout_len: 512,
            value_lr: 1e-2,
            value_epochs: 10,
            initial_log_std: -0.7,
        }
    }
}

/// Diagnostics from one TRPO update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrpoUpdate {
    /// Mean per-step reward in the rollout.
    pub mean_reward: f64,
    /// KL divergence of the accepted step (0 if the step was rejected).
    pub kl: f64,
    /// Surrogate improvement of the accepted step.
    pub improvement: f64,
    /// Whether the line search accepted a step.
    pub accepted: bool,
}

/// A TRPO learner.
#[derive(Debug, Clone)]
pub struct Trpo {
    policy: GaussianPolicy,
    value: ValueNet,
    config: TrpoConfig,
}

impl Trpo {
    /// Creates a learner for the given dimensions.
    pub fn new(state_dim: usize, action_dim: usize, config: TrpoConfig, rng: &mut StdRng) -> Self {
        let mean = edgeslice_nn::Mlp::new(
            &[state_dim, config.hidden, config.hidden, action_dim],
            edgeslice_nn::Activation::leaky_default(),
            edgeslice_nn::Activation::Sigmoid,
            rng,
        );
        let policy = GaussianPolicy::new(mean, config.initial_log_std);
        let value = ValueNet::new(state_dim, config.hidden, config.value_lr, rng);
        Self {
            policy,
            value,
            config,
        }
    }

    /// The underlying stochastic policy.
    pub fn gaussian_policy(&self) -> &GaussianPolicy {
        &self.policy
    }

    /// The greedy (mean) policy action, clamped to the unit box.
    pub fn policy(&self, state: &[f64]) -> Vec<f64> {
        let mut a = self.policy.act_deterministic(state);
        for v in &mut a {
            *v = v.clamp(0.0, 1.0);
        }
        a
    }

    /// Surrogate objective `mean(exp(logπ_new − logπ_old) · A)`.
    fn surrogate(
        policy: &GaussianPolicy,
        states: &Matrix,
        raws: &Matrix,
        old_lp: &[f64],
        adv: &[f64],
    ) -> f64 {
        let means = policy.mean_net().forward(states);
        let new_lp = policy.log_prob_batch(&means, raws);
        new_lp
            .iter()
            .zip(old_lp)
            .zip(adv)
            .map(|((&n, &o), &a)| (n - o).exp() * a)
            .sum::<f64>()
            / adv.len().max(1) as f64
    }

    /// Collects one rollout and applies a trust-region step.
    pub fn update<E: Environment + ?Sized>(&mut self, env: &mut E, rng: &mut StdRng) -> TrpoUpdate {
        let rollout = collect_rollout(env, &self.policy, self.config.rollout_len, rng);
        let values = self.value.predict(&rollout.states);
        let last_value = self.value.predict_one(&rollout.final_state);
        let (mut adv, targets) = gae(
            &rollout.rewards,
            &values,
            &rollout.dones,
            last_value,
            self.config.gamma,
            self.config.lambda,
        );
        normalize_advantages(&mut adv);
        let n = rollout.rewards.len();

        // Policy gradient g = ∇_θ mean(logπ · A) at θ_old.
        let cache = self.policy.mean_net().forward_cached(&rollout.states);
        let means = cache.output().clone();
        let dlogp = self.policy.dlogp_dmean(&means, &rollout.raw_actions);
        let d_mean = Matrix::from_fn(dlogp.rows(), dlogp.cols(), |i, j| {
            adv[i] * dlogp[(i, j)] / n as f64
        });
        let (grads, _) = self.policy.mean_net().backward(&cache, &d_mean);
        let g = self.policy.mean_net().flat_grads(&grads);

        // Fisher-vector product via JVP (forward difference) + VJP
        // (backprop): F v = (1/n) Jᵀ diag(1/σ²) J v + damping v.
        let theta = self.policy.mean_net().flat_params();
        let sigma_inv2: Vec<f64> = self
            .policy
            .log_std()
            .iter()
            .map(|ls| (-2.0 * ls).exp())
            .collect();
        let fvp = |v: &[f64]| -> Vec<f64> {
            let eps = 1e-5 / v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            let mut net = self.policy.mean_net().clone();
            let perturbed: Vec<f64> = theta.iter().zip(v).map(|(t, vi)| t + eps * vi).collect();
            net.set_flat_params(&perturbed);
            let mu_eps = net.forward(&rollout.states);
            // Jv, weighted by 1/σ² and 1/n.
            let weighted = Matrix::from_fn(n, means.cols(), |i, j| {
                (mu_eps[(i, j)] - means[(i, j)]) / eps * sigma_inv2[j] / n as f64
            });
            let (jt, _) = self.policy.mean_net().backward(&cache, &weighted);
            let mut out = self.policy.mean_net().flat_grads(&jt);
            for (o, vi) in out.iter_mut().zip(v) {
                *o += self.config.cg_damping * vi;
            }
            out
        };

        let s = conjugate_gradient(fvp, &g, self.config.cg_iters, 1e-10);
        let s_fs: f64 = s.iter().zip(fvp(&s)).map(|(a, b)| a * b).sum();
        if s_fs <= 1e-12 || !s_fs.is_finite() {
            // Degenerate direction; skip the policy step but keep learning V.
            self.value
                .fit(&rollout.states, &targets, self.config.value_epochs, 64, rng);
            return TrpoUpdate {
                mean_reward: rollout.rewards.iter().sum::<f64>() / n as f64,
                kl: 0.0,
                improvement: 0.0,
                accepted: false,
            };
        }
        let beta = (2.0 * self.config.max_kl / s_fs).sqrt();

        let old_surrogate = Self::surrogate(
            &self.policy,
            &rollout.states,
            &rollout.raw_actions,
            &rollout.log_probs,
            &adv,
        );
        let old_policy = self.policy.clone();
        let mut accepted = false;
        let mut kl = 0.0;
        let mut improvement = 0.0;
        let mut alpha = 1.0;
        for _ in 0..self.config.backtrack_iters {
            let candidate: Vec<f64> = theta
                .iter()
                .zip(&s)
                .map(|(t, si)| t + alpha * beta * si)
                .collect();
            self.policy.mean_net_mut().set_flat_params(&candidate);
            let new_surrogate = Self::surrogate(
                &self.policy,
                &rollout.states,
                &rollout.raw_actions,
                &rollout.log_probs,
                &adv,
            );
            let step_kl = self.policy.mean_kl_from(&old_policy, &rollout.states);
            if new_surrogate > old_surrogate && step_kl <= 1.5 * self.config.max_kl {
                accepted = true;
                kl = step_kl;
                improvement = new_surrogate - old_surrogate;
                break;
            }
            alpha *= self.config.backtrack_coef;
        }
        if !accepted {
            self.policy = old_policy;
        }

        self.value
            .fit(&rollout.states, &targets, self.config.value_epochs, 64, rng);
        TrpoUpdate {
            mean_reward: rollout.rewards.iter().sum::<f64>() / n as f64,
            kl,
            improvement,
            accepted,
        }
    }

    /// Runs `iterations` update cycles; returns per-update mean rewards.
    pub fn train<E: Environment + ?Sized>(
        &mut self,
        env: &mut E,
        iterations: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        (0..iterations)
            .map(|_| self.update(env, rng).mean_reward)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::TrackingEnv;
    use crate::evaluate;
    use rand::SeedableRng;

    #[test]
    fn improves_on_tracking_task() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut env = TrackingEnv::new(20);
        let cfg = TrpoConfig {
            hidden: 16,
            rollout_len: 256,
            ..Default::default()
        };
        let mut agent = Trpo::new(1, 1, cfg, &mut rng);
        let before = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        agent.train(&mut env, 25, &mut rng);
        let after = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        assert!(
            after > before,
            "TRPO failed to improve: {before:.2} -> {after:.2}"
        );
        assert!(after > 17.5, "TRPO final score too low: {after:.2}");
    }

    #[test]
    fn accepted_steps_respect_kl_bound() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut env = TrackingEnv::new(10);
        let cfg = TrpoConfig {
            hidden: 8,
            rollout_len: 128,
            ..Default::default()
        };
        let mut agent = Trpo::new(1, 1, cfg, &mut rng);
        for _ in 0..5 {
            let u = agent.update(&mut env, &mut rng);
            if u.accepted {
                assert!(u.kl <= 1.5 * cfg.max_kl + 1e-9, "KL {0} over bound", u.kl);
                assert!(u.improvement >= 0.0);
            }
        }
    }
}
