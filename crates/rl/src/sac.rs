//! Soft actor-critic (Haarnoja et al. 2018) — a comparator training
//! technique in Fig. 10b.
//!
//! SAC learns a stochastic squashed-Gaussian policy by maximum-entropy RL
//! with twin critics. Because EdgeSlice actions live in `[0, 1]` (sigmoid
//! actor output, Sec. VI-A), the squashing function here is the logistic
//! sigmoid rather than the conventional tanh; the change-of-variables
//! correction uses `log σ'(u) = log a(1−a)` accordingly.

use edgeslice_nn::{Activation, Adam, Matrix, Mlp};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::noise::sample_standard_normal;
use crate::replay::Batch;
use crate::{Environment, ReplayBuffer, Transition};

const LOG_STD_MIN: f64 = -5.0;
const LOG_STD_MAX: f64 = 2.0;
const LOG_2PI: f64 = 1.837_877_066_409_345_5;

/// Hyper-parameters for [`Sac`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SacConfig {
    /// Hidden width of actor and critics.
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Polyak factor τ for the critic targets.
    pub tau: f64,
    /// Learning rate for actor and critics.
    pub lr: f64,
    /// Entropy temperature α.
    pub alpha: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Steps of uniform-random action collection before updates.
    pub warmup: usize,
}

impl Default for SacConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            gamma: 0.99,
            tau: 0.005,
            lr: 1e-3,
            alpha: 0.1,
            batch_size: 128,
            replay_capacity: 100_000,
            warmup: 500,
        }
    }
}

/// Diagnostics from one SAC update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SacUpdate {
    /// Mean twin-critic MSBE loss.
    pub critic_loss: f64,
    /// Actor loss `E[α log π − min Q]`.
    pub actor_loss: f64,
    /// Mean entropy `−E[log π]` of the current policy on the batch.
    pub entropy: f64,
}

/// A soft actor-critic learner.
#[derive(Debug, Clone)]
pub struct Sac {
    actor: Mlp,
    q1: Mlp,
    q2: Mlp,
    q1_target: Mlp,
    q2_target: Mlp,
    actor_opt: Adam,
    q1_opt: Adam,
    q2_opt: Adam,
    replay: ReplayBuffer,
    config: SacConfig,
    action_dim: usize,
    batch: Batch,
}

/// A batch of squashed-Gaussian samples with everything needed for the
/// reparameterized gradient.
struct PolicySample {
    /// Squashed actions `a = σ(u)`, `n × ad`.
    actions: Matrix,
    /// Pre-squash draws `u`, `n × ad`.
    u: Matrix,
    /// The standard-normal noise `ε` used, `n × ad`.
    eps: Matrix,
    /// Clamped log standard deviations, `n × ad`.
    log_std: Matrix,
    /// Per-sample log-probabilities.
    log_prob: Vec<f64>,
    /// Mask: 1.0 where the raw log-std head was inside the clamp range.
    std_grad_mask: Matrix,
}

impl Sac {
    /// Creates a learner for the given dimensions.
    pub fn new(state_dim: usize, action_dim: usize, config: SacConfig, rng: &mut StdRng) -> Self {
        let h = config.hidden;
        // Actor emits [μ | log σ_raw] per action dimension.
        let actor = Mlp::new(
            &[state_dim, h, h, 2 * action_dim],
            Activation::leaky_default(),
            Activation::Identity,
            rng,
        );
        let make_q = |rng: &mut StdRng| {
            Mlp::new(
                &[state_dim + action_dim, h, h, 1],
                Activation::leaky_default(),
                Activation::Identity,
                rng,
            )
        };
        let q1 = make_q(rng);
        let q2 = make_q(rng);
        let q1_target = q1.clone();
        let q2_target = q2.clone();
        let actor_opt = Adam::new(&actor, config.lr);
        let q1_opt = Adam::new(&q1, config.lr);
        let q2_opt = Adam::new(&q2, config.lr);
        let replay = ReplayBuffer::new(config.replay_capacity, state_dim, action_dim);
        Self {
            actor,
            q1,
            q2,
            q1_target,
            q2_target,
            actor_opt,
            q1_opt,
            q2_opt,
            replay,
            config,
            action_dim,
            batch: Batch::new(),
        }
    }

    /// Splits actor head output into `(mean, clamped log-std, mask)`.
    fn split_heads(&self, head: &Matrix) -> (Matrix, Matrix, Matrix) {
        let n = head.rows();
        let ad = self.action_dim;
        let mean = Matrix::from_fn(n, ad, |i, j| head[(i, j)]);
        let log_std = Matrix::from_fn(n, ad, |i, j| {
            head[(i, ad + j)].clamp(LOG_STD_MIN, LOG_STD_MAX)
        });
        let mask = Matrix::from_fn(n, ad, |i, j| {
            let raw = head[(i, ad + j)];
            if (LOG_STD_MIN..=LOG_STD_MAX).contains(&raw) {
                1.0
            } else {
                0.0
            }
        });
        (mean, log_std, mask)
    }

    /// Samples reparameterized actions for a batch of states given the
    /// forwarded actor heads.
    fn sample_from_heads(&self, head: &Matrix, rng: &mut StdRng) -> PolicySample {
        let (mean, log_std, mask) = self.split_heads(head);
        let n = mean.rows();
        let ad = self.action_dim;
        let mut u = Matrix::zeros(n, ad);
        let mut eps = Matrix::zeros(n, ad);
        let mut actions = Matrix::zeros(n, ad);
        let mut log_prob = vec![0.0; n];
        for i in 0..n {
            for j in 0..ad {
                let e = sample_standard_normal(rng);
                let sigma = log_std[(i, j)].exp();
                let ui = mean[(i, j)] + sigma * e;
                let a = edgeslice_nn::sigmoid(ui);
                eps[(i, j)] = e;
                u[(i, j)] = ui;
                actions[(i, j)] = a;
                // log N(u; μ, σ) − log |da/du|
                log_prob[i] += -0.5 * e * e
                    - log_std[(i, j)]
                    - 0.5 * LOG_2PI
                    - (a * (1.0 - a)).max(1e-12).ln();
            }
        }
        PolicySample {
            actions,
            u,
            eps,
            log_std,
            log_prob,
            std_grad_mask: mask,
        }
    }

    /// The actor network (emits `[μ | log σ_raw]`; see
    /// [`Sac::policy`] for how actions derive from it).
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// The greedy policy: squashed mean action.
    pub fn policy(&self, state: &[f64]) -> Vec<f64> {
        let head = self.actor.forward_one(state);
        (0..self.action_dim)
            .map(|j| edgeslice_nn::sigmoid(head[j]))
            .collect()
    }

    /// A stochastic action for exploration.
    pub fn explore(&self, state: &[f64], rng: &mut StdRng) -> Vec<f64> {
        let head = self.actor.forward(&Matrix::row_vector(state));
        let sample = self.sample_from_heads(&head, rng);
        sample.actions.row(0).to_vec()
    }

    /// Stores a transition.
    pub fn observe(&mut self, transition: &Transition) {
        self.replay.push(transition);
    }

    /// Runs one twin-critic + actor update with soft target tracking.
    ///
    /// Returns `None` (leaving every network untouched) until a full batch
    /// is available.
    pub fn update(&mut self, rng: &mut StdRng) -> Option<SacUpdate> {
        // Reuse the persistent batch buffer across updates. SAC keeps the
        // allocating reference kernels for the rest of its update — it is a
        // Fig. 10b comparator, not the paper's DDPG hot path.
        let mut batch = std::mem::take(&mut self.batch);
        if self
            .replay
            .sample_into(self.config.batch_size, rng, &mut batch)
            .is_err()
        {
            self.batch = batch;
            return None;
        }
        let result = self.update_with(&batch, rng);
        self.batch = batch;
        Some(result)
    }

    fn update_with(&mut self, batch: &Batch, rng: &mut StdRng) -> SacUpdate {
        let n = batch.rewards.len();
        let alpha = self.config.alpha;

        // ---- Critic targets: y = r + γ (min Q'(s',a') − α log π(a'|s')).
        let next_head = self.actor.forward(&batch.next_states);
        let next_sample = self.sample_from_heads(&next_head, rng);
        let next_sa = Matrix::hstack(&[&batch.next_states, &next_sample.actions]);
        let q1n = self.q1_target.forward(&next_sa);
        let q2n = self.q2_target.forward(&next_sa);
        let mut targets = Matrix::zeros(n, 1);
        for i in 0..n {
            let minq = q1n[(i, 0)].min(q2n[(i, 0)]);
            let soft = minq - alpha * next_sample.log_prob[i];
            let bootstrap = if batch.dones[i] {
                0.0
            } else {
                self.config.gamma * soft
            };
            targets[(i, 0)] = batch.rewards[i] + bootstrap;
        }

        let sa = Matrix::hstack(&[&batch.states, &batch.actions]);
        let mut critic_loss = 0.0;
        for (q, opt) in [
            (&mut self.q1, &mut self.q1_opt),
            (&mut self.q2, &mut self.q2_opt),
        ] {
            let cache = q.forward_cached(&sa);
            let (loss, d) = edgeslice_nn::mse_loss(cache.output(), &targets);
            let (mut grads, _) = q.backward(&cache, &d);
            grads.clip_global_norm(10.0);
            opt.step(q, &grads);
            critic_loss += 0.5 * loss;
        }

        // ---- Actor: minimize E[α log π(a|s) − min Q(s, a)] (reparameterized).
        let actor_cache = self.actor.forward_cached(&batch.states);
        let sample = self.sample_from_heads(actor_cache.output(), rng);
        let sa_pi = Matrix::hstack(&[&batch.states, &sample.actions]);
        let c1 = self.q1.forward_cached(&sa_pi);
        let c2 = self.q2.forward_cached(&sa_pi);
        let mut actor_loss = 0.0;
        // Per-row masks selecting the minimum critic.
        let mut d1 = Matrix::zeros(n, 1);
        let mut d2 = Matrix::zeros(n, 1);
        for i in 0..n {
            let (v1, v2) = (c1.output()[(i, 0)], c2.output()[(i, 0)]);
            actor_loss += (alpha * sample.log_prob[i] - v1.min(v2)) / n as f64;
            // d(−Qmin)/dQk = −1/n on the selected critic.
            if v1 <= v2 {
                d1[(i, 0)] = -1.0 / n as f64;
            } else {
                d2[(i, 0)] = -1.0 / n as f64;
            }
        }
        let (_, din1) = self.q1.backward(&c1, &d1);
        let (_, din2) = self.q2.backward(&c2, &d2);
        let sd = batch.states.cols();
        let ad = self.action_dim;
        // ∂L/∂a from the −Qmin path (already includes the 1/n factor).
        let dl_da = Matrix::from_fn(n, ad, |i, j| din1[(i, sd + j)] + din2[(i, sd + j)]);

        // Assemble head gradients.
        let mut d_head = Matrix::zeros(n, 2 * ad);
        for i in 0..n {
            for j in 0..ad {
                let a = sample.actions[(i, j)];
                let da_du = (a * (1.0 - a)).max(1e-12);
                // ∂L/∂u = (∂L/∂a)·σ'(u) + (α/n)·∂(−log σ'(u))/∂u.
                let dl_du = dl_da[(i, j)] * da_du + alpha / n as f64 * -(1.0 - 2.0 * a);
                d_head[(i, j)] = dl_du; // μ head
                let sigma = sample.log_std[(i, j)].exp();
                // log-σ head: via u = μ + σ ε, plus the −log σ term of log π.
                let dls = dl_du * sigma * sample.eps[(i, j)] - alpha / n as f64;
                d_head[(i, ad + j)] = dls * sample.std_grad_mask[(i, j)];
            }
        }
        let (mut actor_grads, _) = self.actor.backward(&actor_cache, &d_head);
        actor_grads.clip_global_norm(10.0);
        self.actor_opt.step(&mut self.actor, &actor_grads);

        // ---- Soft target updates.
        self.q1_target.soft_update_from(&self.q1, self.config.tau);
        self.q2_target.soft_update_from(&self.q2, self.config.tau);

        let entropy = -sample.log_prob.iter().sum::<f64>() / n as f64;
        let _ = &sample.u; // u retained for debugging/inspection parity
        SacUpdate {
            critic_loss,
            actor_loss,
            entropy,
        }
    }

    /// Convenience training loop mirroring [`crate::Ddpg::train`].
    pub fn train<E: Environment + ?Sized>(
        &mut self,
        env: &mut E,
        steps: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let mut returns = Vec::new();
        let mut state = env.reset(rng);
        let mut episode_return = 0.0;
        for step in 0..steps {
            let action = if step < self.config.warmup {
                (0..env.action_dim())
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect()
            } else {
                self.explore(&state, rng)
            };
            let out = env.step(&action, rng);
            episode_return += out.reward;
            self.observe(&Transition {
                state: state.clone(),
                action,
                reward: out.reward,
                next_state: out.next_state.clone(),
                done: out.done,
            });
            state = if out.done {
                returns.push(episode_return);
                episode_return = 0.0;
                env.reset(rng)
            } else {
                out.next_state
            };
            if step >= self.config.warmup {
                self.update(rng);
            }
        }
        returns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::TrackingEnv;
    use crate::evaluate;
    use rand::SeedableRng;

    fn small_config() -> SacConfig {
        SacConfig {
            hidden: 16,
            batch_size: 32,
            replay_capacity: 5_000,
            warmup: 100,
            ..Default::default()
        }
    }

    #[test]
    fn learns_to_track_the_target() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut env = TrackingEnv::new(20);
        let mut agent = Sac::new(1, 1, small_config(), &mut rng);
        let before = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        agent.train(&mut env, 2_500, &mut rng);
        let after = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        assert!(
            after > before && after > 18.5,
            "SAC failed to learn: before={before:.2} after={after:.2}"
        );
    }

    #[test]
    fn actions_live_in_unit_box() {
        let mut rng = StdRng::seed_from_u64(22);
        let agent = Sac::new(2, 3, small_config(), &mut rng);
        for _ in 0..20 {
            let s: Vec<f64> = (0..2).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let a = agent.policy(&s);
            assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let e = agent.explore(&s, &mut rng);
            assert!(e.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn update_diagnostics_are_finite() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut env = TrackingEnv::new(10);
        let mut agent = Sac::new(1, 1, small_config(), &mut rng);
        agent.train(&mut env, 200, &mut rng);
        let u = agent.update(&mut rng).unwrap();
        assert!(u.critic_loss.is_finite());
        assert!(u.actor_loss.is_finite());
        assert!(u.entropy.is_finite());
    }
}
