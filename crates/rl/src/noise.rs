//! Exploration noise.

use rand::rngs::StdRng;
use rand_distr_shim::StandardNormal;
use serde::{Deserialize, Serialize};

/// Decaying Gaussian action noise.
///
/// The paper adds `N(0, 1)` noise to actions during training, decaying the
/// standard deviation by a factor of `0.9999` per update step (Sec. VI-A);
/// [`DecayingGaussian::paper`] is exactly that schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayingGaussian {
    sigma: f64,
    decay: f64,
    min_sigma: f64,
}

impl DecayingGaussian {
    /// Creates a noise process starting at `sigma`, multiplying by `decay`
    /// each step, floored at `min_sigma`.
    pub fn new(sigma: f64, decay: f64, min_sigma: f64) -> Self {
        Self {
            sigma,
            decay,
            min_sigma,
        }
    }

    /// The paper's schedule: start `σ = 1`, decay `0.9999` per update.
    pub fn paper() -> Self {
        Self::new(1.0, 0.9999, 0.01)
    }

    /// Current standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Perturbs `action` in place with `N(0, σ²)` noise and clamps each
    /// component to `[0, 1]`, then advances the decay schedule.
    pub fn perturb(&mut self, action: &mut [f64], rng: &mut StdRng) {
        for a in action.iter_mut() {
            let n: f64 = StandardNormal.sample(rng);
            *a = (*a + self.sigma * n).clamp(0.0, 1.0);
        }
        self.sigma = (self.sigma * self.decay).max(self.min_sigma);
    }
}

/// Samples a standard normal via Box–Muller; isolated so the rest of the
/// crate does not care that the `rand` crate in use ships no `Normal`
/// distribution by default.
pub(crate) mod rand_distr_shim {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Zero-mean unit-variance normal distribution.
    #[derive(Debug, Clone, Copy)]
    pub struct StandardNormal;

    impl StandardNormal {
        /// Draws one sample.
        pub fn sample(&self, rng: &mut StdRng) -> f64 {
            // Box–Muller transform; u1 is kept away from 0.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }
}

/// Draws one standard-normal sample.
pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    rand_distr_shim::StandardNormal.sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sigma_decays_toward_floor() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut noise = DecayingGaussian::new(1.0, 0.5, 0.05);
        let mut a = vec![0.5];
        for _ in 0..20 {
            noise.perturb(&mut a, &mut rng);
        }
        assert!(
            (noise.sigma() - 0.05).abs() < 1e-12,
            "floor not reached: {}",
            noise.sigma()
        );
    }

    #[test]
    fn perturbed_actions_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut noise = DecayingGaussian::paper();
        for _ in 0..200 {
            let mut a = vec![0.1, 0.9, 0.5];
            noise.perturb(&mut a, &mut rng);
            assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)), "{a:?}");
        }
    }

    #[test]
    fn standard_normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn paper_schedule_parameters() {
        let n = DecayingGaussian::paper();
        assert!((n.sigma() - 1.0).abs() < 1e-12);
    }
}
