//! Vanilla policy gradient (REINFORCE with a learned baseline), one of the
//! comparator training techniques in Fig. 10b (Sutton et al. 2000).

use edgeslice_nn::{Adam, Matrix};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::{collect_rollout, gae, normalize_advantages, Environment, GaussianPolicy, ValueNet};

/// Hyper-parameters for [`Vpg`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VpgConfig {
    /// Hidden width of policy and value networks.
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ (1.0 recovers Monte-Carlo advantages).
    pub lambda: f64,
    /// Policy learning rate.
    pub policy_lr: f64,
    /// Value-function learning rate.
    pub value_lr: f64,
    /// Environment steps per policy update.
    pub rollout_len: usize,
    /// Value-regression epochs per update.
    pub value_epochs: usize,
    /// Initial policy log standard deviation.
    pub initial_log_std: f64,
}

impl Default for VpgConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            gamma: 0.99,
            lambda: 1.0,
            policy_lr: 3e-3,
            value_lr: 1e-2,
            rollout_len: 512,
            value_epochs: 10,
            initial_log_std: -0.7,
        }
    }
}

/// Diagnostics from one VPG update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VpgUpdate {
    /// Mean per-step reward in the rollout.
    pub mean_reward: f64,
    /// Final value-regression loss.
    pub value_loss: f64,
    /// Policy entropy after the update.
    pub entropy: f64,
}

/// A vanilla policy-gradient learner.
#[derive(Debug, Clone)]
pub struct Vpg {
    policy: GaussianPolicy,
    policy_opt: Adam,
    value: ValueNet,
    config: VpgConfig,
}

impl Vpg {
    /// Creates a learner for the given dimensions.
    pub fn new(state_dim: usize, action_dim: usize, config: VpgConfig, rng: &mut StdRng) -> Self {
        let mean = edgeslice_nn::Mlp::new(
            &[state_dim, config.hidden, config.hidden, action_dim],
            edgeslice_nn::Activation::leaky_default(),
            edgeslice_nn::Activation::Sigmoid,
            rng,
        );
        let policy = GaussianPolicy::new(mean, config.initial_log_std);
        let policy_opt = Adam::new(policy.mean_net(), config.policy_lr);
        let value = ValueNet::new(state_dim, config.hidden, config.value_lr, rng);
        Self {
            policy,
            policy_opt,
            value,
            config,
        }
    }

    /// The greedy (mean) policy action.
    pub fn policy(&self, state: &[f64]) -> Vec<f64> {
        let mut a = self.policy.act_deterministic(state);
        for v in &mut a {
            *v = v.clamp(0.0, 1.0);
        }
        a
    }

    /// The underlying stochastic policy.
    pub fn gaussian_policy(&self) -> &GaussianPolicy {
        &self.policy
    }

    /// Collects one rollout and applies one policy-gradient step.
    pub fn update<E: Environment + ?Sized>(&mut self, env: &mut E, rng: &mut StdRng) -> VpgUpdate {
        let rollout = collect_rollout(env, &self.policy, self.config.rollout_len, rng);
        let values = self.value.predict(&rollout.states);
        let last_value = self.value.predict_one(&rollout.final_state);
        let (mut adv, targets) = gae(
            &rollout.rewards,
            &values,
            &rollout.dones,
            last_value,
            self.config.gamma,
            self.config.lambda,
        );
        normalize_advantages(&mut adv);

        // Policy gradient of -E[log π(a|s) A]: upstream gradient on the
        // mean head is -A_i * ∂logπ/∂μ for each sample.
        let cache = self.policy.mean_net().forward_cached(&rollout.states);
        let means = cache.output().clone();
        let dlogp = self.policy.dlogp_dmean(&means, &rollout.raw_actions);
        let n = rollout.rewards.len() as f64;
        let d_mean = Matrix::from_fn(dlogp.rows(), dlogp.cols(), |i, j| {
            -adv[i] * dlogp[(i, j)] / n
        });
        let (mut grads, _) = self.policy.mean_net().backward(&cache, &d_mean);
        grads.clip_global_norm(5.0);
        self.policy_opt.step(self.policy.mean_net_mut(), &grads);

        // log-std gradient (ascend E[logπ A]).
        let dls = self.policy.dlogp_dlogstd(&means, &rollout.raw_actions);
        for j in 0..self.policy.action_dim() {
            let mut g = 0.0;
            for i in 0..dls.rows() {
                g += -adv[i] * dls[(i, j)] / n;
            }
            let ls = &mut self.policy.log_std_mut()[j];
            *ls = (*ls - self.config.policy_lr * g).clamp(-3.0, 1.0);
        }

        let value_loss =
            self.value
                .fit(&rollout.states, &targets, self.config.value_epochs, 64, rng);
        VpgUpdate {
            mean_reward: rollout.rewards.iter().sum::<f64>() / n,
            value_loss,
            entropy: self.policy.entropy(),
        }
    }

    /// Runs `iterations` update cycles; returns the per-update mean rewards.
    pub fn train<E: Environment + ?Sized>(
        &mut self,
        env: &mut E,
        iterations: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        (0..iterations)
            .map(|_| self.update(env, rng).mean_reward)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::TrackingEnv;
    use crate::evaluate;
    use rand::SeedableRng;

    #[test]
    fn improves_on_tracking_task() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut env = TrackingEnv::new(20);
        let cfg = VpgConfig {
            hidden: 16,
            rollout_len: 256,
            ..Default::default()
        };
        let mut agent = Vpg::new(1, 1, cfg, &mut rng);
        let before = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        agent.train(&mut env, 30, &mut rng);
        let after = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        assert!(
            after > before,
            "VPG failed to improve: {before:.2} -> {after:.2}"
        );
        assert!(after > 18.0, "VPG final score too low: {after:.2}");
    }

    #[test]
    fn actions_clamped_to_unit_box() {
        let mut rng = StdRng::seed_from_u64(5);
        let agent = Vpg::new(2, 2, VpgConfig::default(), &mut rng);
        let a = agent.policy(&[100.0, -100.0]);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn update_reports_finite_diagnostics() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut env = TrackingEnv::new(10);
        let cfg = VpgConfig {
            hidden: 8,
            rollout_len: 64,
            ..Default::default()
        };
        let mut agent = Vpg::new(1, 1, cfg, &mut rng);
        let u = agent.update(&mut env, &mut rng);
        assert!(u.mean_reward.is_finite());
        assert!(u.value_loss.is_finite());
        assert!(u.entropy.is_finite());
    }
}
