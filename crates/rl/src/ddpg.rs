//! Deep deterministic policy gradient (Lillicrap et al.), the paper's
//! training technique for orchestration agents (Sec. IV-B2, Fig. 3).
//!
//! The agent maintains a deterministic actor `μ(s|θ^μ)` and a critic
//! `Q(s, a|θ^π)`, each shadowed by a slowly-tracking target network. The
//! critic minimizes the mean-squared Bellman error against the target value
//! `g_t = r + γ Q'(s', μ'(s'))` (paper Eq. 16–17); the actor ascends
//! `∇_θ J ≈ E[∇_a Q(s, a)|_{a=μ(s)} ∇_θ μ(s)]` (paper Eq. 18).

use edgeslice_nn::{Adam, FleetScratch, Matrix, Mlp, Parallelism, TrainScratch};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Batch, DecayingGaussian, Environment, ReplayBuffer, Transition};

/// Hyper-parameters for [`Ddpg`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdpgConfig {
    /// Hidden width of both actor and critic (paper: 128).
    pub hidden: usize,
    /// Discount factor γ (paper: 0.99).
    pub gamma: f64,
    /// Polyak factor τ for target-network tracking.
    pub tau: f64,
    /// Actor/critic learning rate (paper: 0.001 for both).
    pub lr: f64,
    /// Minibatch size (paper: 512).
    pub batch_size: usize,
    /// Replay memory capacity.
    pub replay_capacity: usize,
    /// Environment steps collected before updates begin.
    pub warmup: usize,
    /// Initial exploration noise σ (paper: 1.0).
    pub noise_sigma: f64,
    /// Per-update noise decay (paper: 0.9999).
    pub noise_decay: f64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            gamma: 0.99,
            tau: 0.005,
            lr: 1e-3,
            batch_size: 128,
            replay_capacity: 100_000,
            warmup: 500,
            noise_sigma: 1.0,
            noise_decay: 0.999,
        }
    }
}

impl DdpgConfig {
    /// The paper's exact hyper-parameters (Sec. VI-A): 2×128 hidden layers,
    /// batch 512, lr 1e-3, γ = 0.99, noise decay 0.9999. Training for the
    /// paper's 1e6 steps takes hours on CPU; the figure binaries use the
    /// scaled default instead and record the deviation in EXPERIMENTS.md.
    pub fn paper() -> Self {
        Self {
            hidden: 128,
            batch_size: 512,
            noise_decay: 0.9999,
            warmup: 2_000,
            ..Default::default()
        }
    }
}

/// Diagnostics from one gradient update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdpgUpdate {
    /// Critic MSBE loss (Eq. 16).
    pub critic_loss: f64,
    /// Mean critic value of the actor's on-batch actions (the actor
    /// objective being ascended).
    pub actor_objective: f64,
    /// Exploration σ after this update.
    pub noise_sigma: f64,
}

/// Reusable buffers for one [`Ddpg::update`] step: the sampled batch, one
/// [`TrainScratch`] per (network, role) pair, and every intermediate matrix
/// the update touches. After the first update everything here sits at its
/// steady-state capacity and the step is allocation-free.
#[derive(Debug, Clone, Default)]
struct DdpgScratch {
    batch: Batch,
    /// Target-actor forward for `μ'(s')`.
    ta_fwd: TrainScratch,
    /// Target-critic forward for `Q'(s', μ'(s'))`.
    tc_fwd: TrainScratch,
    /// Critic forward/backward for the TD loss.
    critic_td: TrainScratch,
    /// Actor forward/backward for the policy gradient.
    actor_fwd: TrainScratch,
    /// Critic re-forward (and input-gradient backward) at `(s, μ(s))`.
    critic_pi: TrainScratch,
    next_sa: Matrix,
    sa: Matrix,
    sa_mu: Matrix,
    targets: Matrix,
    d_pred: Matrix,
    d_q: Matrix,
    d_action: Matrix,
}

/// A DDPG learner.
#[derive(Debug, Clone)]
pub struct Ddpg {
    actor: Mlp,
    critic: Mlp,
    target_actor: Mlp,
    target_critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    replay: ReplayBuffer,
    noise: DecayingGaussian,
    config: DdpgConfig,
    updates: u64,
    scratch: DdpgScratch,
}

impl Ddpg {
    /// Creates a learner for the given state/action dimensions.
    pub fn new(state_dim: usize, action_dim: usize, config: DdpgConfig, rng: &mut StdRng) -> Self {
        let h = config.hidden;
        let actor = Mlp::new(
            &[state_dim, h, h, action_dim],
            edgeslice_nn::Activation::leaky_default(),
            edgeslice_nn::Activation::Sigmoid,
            rng,
        );
        let critic = Mlp::new(
            &[state_dim + action_dim, h, h, 1],
            edgeslice_nn::Activation::leaky_default(),
            edgeslice_nn::Activation::Identity,
            rng,
        );
        let target_actor = actor.clone();
        let target_critic = critic.clone();
        let actor_opt = Adam::new(&actor, config.lr);
        let critic_opt = Adam::new(&critic, config.lr);
        let replay = ReplayBuffer::new(config.replay_capacity, state_dim, action_dim);
        let noise = DecayingGaussian::new(config.noise_sigma, config.noise_decay, 0.01);
        Self {
            actor,
            critic,
            target_actor,
            target_critic,
            actor_opt,
            critic_opt,
            replay,
            noise,
            config,
            updates: 0,
            scratch: DdpgScratch::default(),
        }
    }

    /// The configuration this learner was built with.
    pub fn config(&self) -> &DdpgConfig {
        &self.config
    }

    /// The greedy (noise-free) policy action for `state`.
    pub fn policy(&self, state: &[f64]) -> Vec<f64> {
        self.actor.forward_one(state)
    }

    /// Batched greedy policy: the actor's fused multi-row forward over the
    /// input batch staged in `s` ([`Mlp::forward_fleet_scratch`]). Row `i`
    /// of the returned matrix is bit-identical to [`Ddpg::policy`] on input
    /// row `i`, for any `par`; allocation-free at steady state.
    pub fn policy_batch_scratch<'s>(
        &self,
        s: &'s mut FleetScratch,
        par: Parallelism,
    ) -> &'s Matrix {
        self.actor.forward_fleet_scratch(s, par)
    }

    /// Immutable access to the actor network (e.g. for checkpointing).
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// Immutable access to the critic network.
    pub fn critic(&self) -> &Mlp {
        &self.critic
    }

    /// Number of gradient updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Exploration action: policy output plus decaying Gaussian noise,
    /// clamped to `[0, 1]`.
    pub fn explore(&mut self, state: &[f64], rng: &mut StdRng) -> Vec<f64> {
        let mut a = self.policy(state);
        self.noise.perturb(&mut a, rng);
        a
    }

    /// Stores a transition in the replay memory.
    pub fn observe(&mut self, transition: &Transition) {
        self.replay.push(transition);
    }

    /// Runs one critic + actor gradient step and soft target updates.
    ///
    /// Returns `None` while the replay memory holds fewer than a batch of
    /// transitions (the warm-up contract: no network is touched until the
    /// buffer can fill a batch).
    ///
    /// The step runs entirely through the `_into` kernels and this agent's
    /// scratch arena — zero heap allocations at steady state — and is
    /// bit-identical to [`Ddpg::update_reference`] for the same RNG state.
    pub fn update(&mut self, rng: &mut StdRng) -> Option<DdpgUpdate> {
        // Move the scratch out so its buffers and `self`'s networks can be
        // borrowed independently; moving is allocation-free.
        let mut s = std::mem::take(&mut self.scratch);
        let result = self.update_with(&mut s, rng);
        self.scratch = s;
        result
    }

    fn update_with(&mut self, s: &mut DdpgScratch, rng: &mut StdRng) -> Option<DdpgUpdate> {
        if self
            .replay
            .sample_into(self.config.batch_size, rng, &mut s.batch)
            .is_err()
        {
            return None;
        }
        let n = s.batch.rewards.len();

        // ---- Critic: minimize (Q(s,a) - g)² with g = r + γ Q'(s', μ'(s')).
        self.target_actor
            .forward_scratch(&s.batch.next_states, &mut s.ta_fwd);
        Matrix::hstack_into(&[&s.batch.next_states, s.ta_fwd.output()], &mut s.next_sa);
        self.target_critic
            .forward_scratch(&s.next_sa, &mut s.tc_fwd);
        s.targets.resize_for(n, 1);
        {
            let next_q = s.tc_fwd.output();
            for i in 0..n {
                let bootstrap = if s.batch.dones[i] {
                    0.0
                } else {
                    self.config.gamma * next_q[(i, 0)]
                };
                s.targets[(i, 0)] = s.batch.rewards[i] + bootstrap;
            }
        }
        Matrix::hstack_into(&[&s.batch.states, &s.batch.actions], &mut s.sa);
        self.critic.forward_scratch(&s.sa, &mut s.critic_td);
        let critic_loss =
            edgeslice_nn::mse_loss_into(s.critic_td.output(), &s.targets, &mut s.d_pred);
        self.critic.backward_scratch(&mut s.critic_td, &s.d_pred);
        s.critic_td.grads_mut().clip_global_norm(10.0);
        self.critic_opt.step(&mut self.critic, s.critic_td.grads());

        // ---- Actor: ascend Q(s, μ(s)).
        self.actor
            .forward_scratch(&s.batch.states, &mut s.actor_fwd);
        Matrix::hstack_into(&[&s.batch.states, s.actor_fwd.output()], &mut s.sa_mu);
        self.critic.forward_scratch(&s.sa_mu, &mut s.critic_pi);
        let actor_objective = s.critic_pi.output().mean();
        // d(-mean Q)/dQ = -1/n; backprop through the critic to get ∇_a Q.
        // Only the input-gradient chain is needed — the critic's parameter
        // gradients would be discarded, so they are never computed.
        s.d_q.resize_for(n, 1);
        s.d_q.fill(-1.0 / n as f64);
        self.critic.backward_input_scratch(&mut s.critic_pi, &s.d_q);
        // Slice out the action part of the critic input gradient.
        let sd = s.batch.states.cols();
        let ad = s.actor_fwd.output().cols();
        s.d_action.resize_for(n, ad);
        {
            let d_input = s.critic_pi.d_input();
            for i in 0..n {
                s.d_action
                    .row_mut(i)
                    .copy_from_slice(&d_input.row(i)[sd..sd + ad]);
            }
        }
        self.actor.backward_scratch(&mut s.actor_fwd, &s.d_action);
        s.actor_fwd.grads_mut().clip_global_norm(10.0);
        self.actor_opt.step(&mut self.actor, s.actor_fwd.grads());

        // ---- Soft target updates.
        self.target_actor
            .soft_update_from(&self.actor, self.config.tau);
        self.target_critic
            .soft_update_from(&self.critic, self.config.tau);
        self.updates += 1;

        Some(DdpgUpdate {
            critic_loss,
            actor_objective,
            noise_sigma: self.noise.sigma(),
        })
    }

    /// The pre-fusion update step (allocating kernels, flat-vector Adam),
    /// kept as the baseline for the `trainperf` benchmark and the
    /// kernel-equivalence tests. For the same RNG state this produces
    /// bit-identical networks to [`Ddpg::update`].
    pub fn update_reference(&mut self, rng: &mut StdRng) -> Option<DdpgUpdate> {
        let batch = self.replay.sample(self.config.batch_size, rng).ok()?;
        let n = batch.rewards.len();

        // ---- Critic: minimize (Q(s,a) - g)² with g = r + γ Q'(s', μ'(s')).
        let next_actions = self.target_actor.forward(&batch.next_states);
        let next_sa = Matrix::hstack(&[&batch.next_states, &next_actions]);
        let next_q = self.target_critic.forward(&next_sa);
        let mut targets = Matrix::zeros(n, 1);
        for i in 0..n {
            let bootstrap = if batch.dones[i] {
                0.0
            } else {
                self.config.gamma * next_q[(i, 0)]
            };
            targets[(i, 0)] = batch.rewards[i] + bootstrap;
        }
        let sa = Matrix::hstack(&[&batch.states, &batch.actions]);
        let cache = self.critic.forward_cached(&sa);
        let (critic_loss, d_pred) = edgeslice_nn::mse_loss(cache.output(), &targets);
        let (mut critic_grads, _) = self.critic.backward(&cache, &d_pred);
        critic_grads.clip_global_norm(10.0);
        self.critic_opt
            .step_reference(&mut self.critic, &critic_grads);

        // ---- Actor: ascend Q(s, μ(s)).
        let actor_cache = self.actor.forward_cached(&batch.states);
        let mu = actor_cache.output().clone();
        let sa_mu = Matrix::hstack(&[&batch.states, &mu]);
        let critic_cache = self.critic.forward_cached(&sa_mu);
        let actor_objective = critic_cache.output().mean();
        // d(-mean Q)/dQ = -1/n; backprop through the critic to get ∇_a Q.
        let d_q = Matrix::filled(n, 1, -1.0 / n as f64);
        let (_, d_input) = self.critic.backward(&critic_cache, &d_q);
        // Slice out the action part of the critic input gradient.
        let sd = batch.states.cols();
        let ad = mu.cols();
        let d_action = Matrix::from_fn(n, ad, |i, j| d_input[(i, sd + j)]);
        let (mut actor_grads, _) = self.actor.backward(&actor_cache, &d_action);
        actor_grads.clip_global_norm(10.0);
        self.actor_opt.step_reference(&mut self.actor, &actor_grads);

        // ---- Soft target updates.
        self.target_actor
            .soft_update_from(&self.actor, self.config.tau);
        self.target_critic
            .soft_update_from(&self.critic, self.config.tau);
        self.updates += 1;

        Some(DdpgUpdate {
            critic_loss,
            actor_objective,
            noise_sigma: self.noise.sigma(),
        })
    }

    /// Convenience training loop: interacts with `env` for `steps`
    /// environment steps, updating once per step after warm-up. Returns the
    /// per-episode returns observed during training.
    pub fn train<E: Environment + ?Sized>(
        &mut self,
        env: &mut E,
        steps: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        self.train_impl(env, steps, rng, false)
    }

    /// [`Ddpg::train`] through [`Ddpg::update_reference`] instead of the
    /// fused update — the baseline half of the kernel-equivalence tests and
    /// the `trainperf` benchmark. Identical RNG schedule, bit-identical
    /// resulting networks.
    pub fn train_reference<E: Environment + ?Sized>(
        &mut self,
        env: &mut E,
        steps: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        self.train_impl(env, steps, rng, true)
    }

    fn train_impl<E: Environment + ?Sized>(
        &mut self,
        env: &mut E,
        steps: usize,
        rng: &mut StdRng,
        reference: bool,
    ) -> Vec<f64> {
        let mut returns = Vec::new();
        let mut state = env.reset(rng);
        let mut episode_return = 0.0;
        for step in 0..steps {
            let action = if step < self.config.warmup {
                // Uniform random warm-up fills the replay memory with
                // diverse actions before the policy is trusted.
                (0..env.action_dim())
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect()
            } else {
                self.explore(&state, rng)
            };
            let out = env.step(&action, rng);
            episode_return += out.reward;
            self.observe(&Transition {
                state: state.clone(),
                action,
                reward: out.reward,
                next_state: out.next_state.clone(),
                done: out.done,
            });
            state = if out.done {
                returns.push(episode_return);
                episode_return = 0.0;
                env.reset(rng)
            } else {
                out.next_state
            };
            if step >= self.config.warmup {
                if reference {
                    self.update_reference(rng);
                } else {
                    self.update(rng);
                }
            }
        }
        returns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::TrackingEnv;
    use crate::evaluate;
    use rand::SeedableRng;

    fn small_config() -> DdpgConfig {
        DdpgConfig {
            hidden: 16,
            batch_size: 32,
            replay_capacity: 5_000,
            warmup: 100,
            noise_sigma: 0.4,
            noise_decay: 0.999,
            ..Default::default()
        }
    }

    #[test]
    fn update_requires_warmup_data() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = Ddpg::new(1, 1, small_config(), &mut rng);
        assert!(agent.update(&mut rng).is_none());
    }

    #[test]
    fn update_before_warmup_leaves_networks_untouched() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = Ddpg::new(2, 1, small_config(), &mut rng);
        // A few transitions, but fewer than a batch: still warming up.
        for i in 0..5 {
            agent.observe(&Transition {
                state: vec![0.1, 0.2],
                action: vec![0.5],
                reward: i as f64,
                next_state: vec![0.2, 0.3],
                done: false,
            });
        }
        let actor_before = agent.actor.flat_params();
        let critic_before = agent.critic.flat_params();
        assert!(agent.update(&mut rng).is_none());
        assert!(agent.update_reference(&mut rng).is_none());
        assert_eq!(agent.actor.flat_params(), actor_before);
        assert_eq!(agent.critic.flat_params(), critic_before);
        assert_eq!(agent.updates(), 0);
    }

    #[test]
    fn fused_update_is_bit_identical_to_reference() {
        let mut env_a = TrackingEnv::new(20);
        let mut env_b = TrackingEnv::new(20);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let mut fused = Ddpg::new(1, 1, small_config(), &mut rng_a);
        let mut reference = Ddpg::new(1, 1, small_config(), &mut rng_b);
        fused.train(&mut env_a, 400, &mut rng_a);
        reference.train_reference(&mut env_b, 400, &mut rng_b);
        let bits =
            |net: &Mlp| -> Vec<u64> { net.flat_params().iter().map(|p| p.to_bits()).collect() };
        assert_eq!(bits(&fused.actor), bits(&reference.actor), "actor diverged");
        assert_eq!(
            bits(&fused.critic),
            bits(&reference.critic),
            "critic diverged"
        );
        assert_eq!(
            bits(&fused.target_actor),
            bits(&reference.target_actor),
            "target actor diverged"
        );
        assert_eq!(
            bits(&fused.target_critic),
            bits(&reference.target_critic),
            "target critic diverged"
        );
    }

    #[test]
    fn learns_to_track_the_target() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut env = TrackingEnv::new(20);
        let mut agent = Ddpg::new(1, 1, small_config(), &mut rng);
        let before = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        agent.train(&mut env, 2_000, &mut rng);
        let after = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        // Perfect play earns 20; random play ~17. Require clear learning.
        assert!(
            after > before && after > 19.0,
            "DDPG failed to learn: before={before:.2} after={after:.2}"
        );
    }

    #[test]
    fn policy_outputs_stay_in_unit_box() {
        let mut rng = StdRng::seed_from_u64(1);
        let agent = Ddpg::new(3, 2, small_config(), &mut rng);
        for _ in 0..20 {
            let s: Vec<f64> = (0..3).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let a = agent.policy(&s);
            assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn update_counter_and_diagnostics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut env = TrackingEnv::new(10);
        let mut agent = Ddpg::new(1, 1, small_config(), &mut rng);
        agent.train(&mut env, 200, &mut rng);
        assert_eq!(agent.updates(), 100); // steps - warmup
        let u = agent.update(&mut rng).unwrap();
        assert!(u.critic_loss.is_finite());
        assert!(u.actor_objective.is_finite());
        assert!(u.noise_sigma < small_config().noise_sigma);
    }

    #[test]
    fn paper_config_matches_section_vi() {
        let c = DdpgConfig::paper();
        assert_eq!(c.hidden, 128);
        assert_eq!(c.batch_size, 512);
        assert_eq!(c.lr, 1e-3);
        assert_eq!(c.gamma, 0.99);
        assert_eq!(c.noise_decay, 0.9999);
    }
}
