//! # edgeslice-rl
//!
//! Deep reinforcement learning for the EdgeSlice reproduction.
//!
//! The paper's orchestration agents are trained with **DDPG** (Sec. IV-B2,
//! Fig. 3); Fig. 10b additionally compares **SAC**, **PPO**, **TRPO** and
//! **VPG**. All five are implemented here over a common [`Environment`]
//! abstraction with actions normalized to `[0, 1]` per dimension — exactly
//! the range of the paper's sigmoid actor output — so any learner can drive
//! any slicing environment.
//!
//! # Examples
//!
//! ```no_run
//! use edgeslice_rl::{Ddpg, DdpgConfig, Environment};
//! use rand::SeedableRng;
//!
//! fn train<E: Environment>(env: &mut E) {
//!     let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//!     let mut agent = Ddpg::new(env.state_dim(), env.action_dim(), DdpgConfig::default(), &mut rng);
//!     agent.train(env, 10_000, &mut rng);
//!     let action = agent.policy(&vec![0.0; env.state_dim()]);
//!     assert_eq!(action.len(), env.action_dim());
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod common;
mod ddpg;
mod env;
mod noise;
mod ppo;
mod replay;
mod sac;
mod td3;
mod trpo;
mod value;
mod vpg;

pub use common::{
    collect_rollout, discounted_returns, gae, normalize_advantages, GaussianPolicy, Rollout,
};
pub use ddpg::{Ddpg, DdpgConfig, DdpgUpdate};
pub use env::{evaluate, Environment, Step, Transition};
pub use noise::{sample_standard_normal, DecayingGaussian};
pub use ppo::{Ppo, PpoConfig, PpoUpdate};
pub use replay::{Batch, ReplayBuffer, SampleError};
pub use sac::{Sac, SacConfig, SacUpdate};
pub use td3::{Td3, Td3Config, Td3Update};
pub use trpo::{Trpo, TrpoConfig, TrpoUpdate};
pub use value::ValueNet;
pub use vpg::{Vpg, VpgConfig, VpgUpdate};

/// The training technique used by an orchestration agent, enumerating
/// Fig. 10b's comparison axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Deep deterministic policy gradient (the paper's choice).
    Ddpg,
    /// Soft actor-critic.
    Sac,
    /// Proximal policy optimization.
    Ppo,
    /// Trust region policy optimization.
    Trpo,
    /// Vanilla policy gradient.
    Vpg,
}

impl Technique {
    /// All techniques in the order Fig. 10b plots them.
    pub const ALL: [Technique; 5] = [
        Technique::Ddpg,
        Technique::Sac,
        Technique::Ppo,
        Technique::Trpo,
        Technique::Vpg,
    ];

    /// Display label matching the paper's x-axis.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Ddpg => "DDPG",
            Technique::Sac => "SAC",
            Technique::Ppo => "PPO",
            Technique::Trpo => "TRPO",
            Technique::Vpg => "VPG",
        }
    }
}

impl std::fmt::Display for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technique_labels() {
        assert_eq!(Technique::Ddpg.label(), "DDPG");
        assert_eq!(Technique::ALL.len(), 5);
        assert_eq!(Technique::Sac.to_string(), "SAC");
    }
}
