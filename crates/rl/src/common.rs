//! Shared machinery for the policy-gradient family (VPG, PPO, TRPO, SAC):
//! diagonal-Gaussian policies, discounted returns and generalized advantage
//! estimation.

use edgeslice_nn::{Matrix, Mlp};
use rand::rngs::StdRng;

use crate::noise::sample_standard_normal;
use crate::{Environment, Step};

const LOG_2PI: f64 = 1.837_877_066_409_345_5;

/// A diagonal-Gaussian policy: the mean comes from an [`Mlp`] ending in a
/// sigmoid (so it lands in the normalized action box), and the per-dimension
/// log standard deviation is a free, state-independent parameter vector —
/// the standard parameterization for continuous-control policy-gradient
/// methods.
#[derive(Debug, Clone)]
pub struct GaussianPolicy {
    mean: Mlp,
    log_std: Vec<f64>,
}

impl GaussianPolicy {
    /// Wraps a mean network; initial `σ = exp(initial_log_std)` per
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics if the network output width is zero.
    pub fn new(mean: Mlp, initial_log_std: f64) -> Self {
        let dim = mean.out_dim();
        assert!(dim > 0, "policy needs at least one action dimension");
        Self {
            mean,
            log_std: vec![initial_log_std; dim],
        }
    }

    /// The mean network.
    pub fn mean_net(&self) -> &Mlp {
        &self.mean
    }

    /// Mutable access to the mean network.
    pub fn mean_net_mut(&mut self) -> &mut Mlp {
        &mut self.mean
    }

    /// Per-dimension log standard deviations.
    pub fn log_std(&self) -> &[f64] {
        &self.log_std
    }

    /// Mutable access to the log standard deviations.
    pub fn log_std_mut(&mut self) -> &mut [f64] {
        &mut self.log_std
    }

    /// Action dimensionality.
    pub fn action_dim(&self) -> usize {
        self.log_std.len()
    }

    /// Deterministic (mean) action for evaluation.
    pub fn act_deterministic(&self, state: &[f64]) -> Vec<f64> {
        self.mean.forward_one(state)
    }

    /// Samples a raw (unclamped) action and its log-probability.
    ///
    /// The raw action is what gradients are computed against; callers clamp
    /// a copy into `[0, 1]` before handing it to the environment.
    pub fn sample(&self, state: &[f64], rng: &mut StdRng) -> (Vec<f64>, f64) {
        let mean = self.mean.forward_one(state);
        let mut raw = Vec::with_capacity(mean.len());
        for (m, ls) in mean.iter().zip(&self.log_std) {
            raw.push(m + ls.exp() * sample_standard_normal(rng));
        }
        let logp = self.log_prob(&mean, &raw);
        (raw, logp)
    }

    /// Log-probability of `raw` under `N(mean, diag(σ²))`.
    pub fn log_prob(&self, mean: &[f64], raw: &[f64]) -> f64 {
        let mut lp = 0.0;
        for ((m, a), ls) in mean.iter().zip(raw).zip(&self.log_std) {
            let sigma = ls.exp();
            let z = (a - m) / sigma;
            lp += -0.5 * z * z - ls - 0.5 * LOG_2PI;
        }
        lp
    }

    /// Batched log-probabilities given the forwarded means.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn log_prob_batch(&self, means: &Matrix, raws: &Matrix) -> Vec<f64> {
        assert_eq!(means.shape(), raws.shape(), "log_prob_batch shape mismatch");
        (0..means.rows())
            .map(|i| self.log_prob(means.row(i), raws.row(i)))
            .collect()
    }

    /// `∂ log p / ∂ mean` for each sample/dimension: `(a − μ)/σ²`.
    pub fn dlogp_dmean(&self, means: &Matrix, raws: &Matrix) -> Matrix {
        assert_eq!(means.shape(), raws.shape(), "dlogp shape mismatch");
        Matrix::from_fn(means.rows(), means.cols(), |i, j| {
            let sigma = self.log_std[j].exp();
            (raws[(i, j)] - means[(i, j)]) / (sigma * sigma)
        })
    }

    /// `∂ log p / ∂ log_std_j` for each sample/dimension:
    /// `((a − μ)/σ)² − 1`.
    pub fn dlogp_dlogstd(&self, means: &Matrix, raws: &Matrix) -> Matrix {
        Matrix::from_fn(means.rows(), means.cols(), |i, j| {
            let sigma = self.log_std[j].exp();
            let z = (raws[(i, j)] - means[(i, j)]) / sigma;
            z * z - 1.0
        })
    }

    /// Differential entropy of the Gaussian, `Σ_j (log σ_j + ½ log 2πe)`.
    pub fn entropy(&self) -> f64 {
        self.log_std
            .iter()
            .map(|ls| ls + 0.5 * (LOG_2PI + 1.0))
            .sum()
    }

    /// Mean KL divergence `KL(old ‖ self)` over a batch of states, for two
    /// policies sharing the same `log_std` treatment (used by TRPO's line
    /// search).
    pub fn mean_kl_from(&self, old: &GaussianPolicy, states: &Matrix) -> f64 {
        let mu_new = self.mean.forward(states);
        let mu_old = old.mean.forward(states);
        let mut total = 0.0;
        for i in 0..states.rows() {
            for j in 0..self.log_std.len() {
                let s_new = self.log_std[j].exp();
                let s_old = old.log_std[j].exp();
                let d = mu_old[(i, j)] - mu_new[(i, j)];
                total += (s_new / s_old).ln().max(-1e9)
                    + (s_old * s_old + d * d) / (2.0 * s_new * s_new)
                    - 0.5;
            }
        }
        total / states.rows().max(1) as f64
    }
}

/// Discounted reward-to-go: `G_t = r_t + γ G_{t+1}`, resetting at episode
/// boundaries.
pub fn discounted_returns(rewards: &[f64], dones: &[bool], gamma: f64) -> Vec<f64> {
    assert_eq!(rewards.len(), dones.len(), "returns length mismatch");
    let mut out = vec![0.0; rewards.len()];
    let mut acc = 0.0;
    for i in (0..rewards.len()).rev() {
        if dones[i] {
            acc = 0.0;
        }
        acc = rewards[i] + gamma * acc;
        out[i] = acc;
    }
    out
}

/// Generalized advantage estimation (Schulman et al.).
///
/// Returns `(advantages, value_targets)` where
/// `A_t = δ_t + γλ A_{t+1}` with `δ_t = r_t + γ V(s_{t+1}) − V(s_t)`, and
/// `value_targets = A + V`.
///
/// `last_value` bootstraps the value of the state following the final
/// transition (ignored when that transition terminated an episode).
pub fn gae(
    rewards: &[f64],
    values: &[f64],
    dones: &[bool],
    last_value: f64,
    gamma: f64,
    lambda: f64,
) -> (Vec<f64>, Vec<f64>) {
    let n = rewards.len();
    assert_eq!(values.len(), n, "gae values length mismatch");
    assert_eq!(dones.len(), n, "gae dones length mismatch");
    let mut adv = vec![0.0; n];
    let mut next_adv = 0.0;
    let mut next_value = last_value;
    for i in (0..n).rev() {
        let (nv, na) = if dones[i] {
            (0.0, 0.0)
        } else {
            (next_value, next_adv)
        };
        let delta = rewards[i] + gamma * nv - values[i];
        adv[i] = delta + gamma * lambda * na;
        next_adv = adv[i];
        next_value = values[i];
    }
    let targets = adv.iter().zip(values).map(|(a, v)| a + v).collect();
    (adv, targets)
}

/// Normalizes a vector to zero mean and unit standard deviation (no-op for
/// constant input).
pub fn normalize_advantages(adv: &mut [f64]) {
    if adv.is_empty() {
        return;
    }
    let n = adv.len() as f64;
    let mean = adv.iter().sum::<f64>() / n;
    let var = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std < 1e-9 {
        return;
    }
    for a in adv.iter_mut() {
        *a = (*a - mean) / std;
    }
}

/// One on-policy rollout: flat arrays of length `steps`.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// Visited states, `steps × state_dim`.
    pub states: Matrix,
    /// Raw (pre-clamp) sampled actions, `steps × action_dim`.
    pub raw_actions: Matrix,
    /// Per-step rewards.
    pub rewards: Vec<f64>,
    /// Per-step episode-termination flags.
    pub dones: Vec<bool>,
    /// Log-probabilities of the sampled actions under the behaviour policy.
    pub log_probs: Vec<f64>,
    /// State following the final transition (for bootstrapping).
    pub final_state: Vec<f64>,
}

/// Collects `steps` transitions from `env` under the stochastic `policy`,
/// resetting at episode ends.
pub fn collect_rollout<E: Environment + ?Sized>(
    env: &mut E,
    policy: &GaussianPolicy,
    steps: usize,
    rng: &mut StdRng,
) -> Rollout {
    let sd = env.state_dim();
    let ad = env.action_dim();
    let mut states = Vec::with_capacity(steps * sd);
    let mut raw_actions = Vec::with_capacity(steps * ad);
    let mut rewards = Vec::with_capacity(steps);
    let mut dones = Vec::with_capacity(steps);
    let mut log_probs = Vec::with_capacity(steps);

    let mut state = env.reset(rng);
    for _ in 0..steps {
        let (raw, logp) = policy.sample(&state, rng);
        let mut clamped = raw.clone();
        for a in &mut clamped {
            *a = a.clamp(0.0, 1.0);
        }
        let Step {
            next_state,
            reward,
            done,
        } = env.step(&clamped, rng);
        states.extend_from_slice(&state);
        raw_actions.extend_from_slice(&raw);
        rewards.push(reward);
        dones.push(done);
        log_probs.push(logp);
        state = if done { env.reset(rng) } else { next_state };
    }
    Rollout {
        states: Matrix::from_vec(steps, sd, states),
        raw_actions: Matrix::from_vec(steps, ad, raw_actions),
        rewards,
        dones,
        log_probs,
        final_state: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeslice_nn::Activation;
    use rand::SeedableRng;

    fn policy() -> GaussianPolicy {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(
            &[2, 8, 2],
            Activation::leaky_default(),
            Activation::Sigmoid,
            &mut rng,
        );
        GaussianPolicy::new(net, -0.5)
    }

    #[test]
    fn log_prob_peaks_at_mean() {
        let p = policy();
        let mean = vec![0.5, 0.5];
        let at_mean = p.log_prob(&mean, &mean);
        let off = p.log_prob(&mean, &[0.9, 0.1]);
        assert!(at_mean > off);
    }

    #[test]
    fn log_prob_matches_univariate_gaussian_formula() {
        let mut p = policy();
        p.log_std_mut().copy_from_slice(&[0.0, 0.0]); // σ = 1
        let lp = p.log_prob(&[0.0, 0.0], &[1.0, 0.0]);
        // -0.5*1 - 0.5*log(2π) per dim with z=1 and z=0.
        let expected = (-0.5 - 0.5 * LOG_2PI) + (-0.5 * LOG_2PI);
        assert!((lp - expected).abs() < 1e-12);
    }

    #[test]
    fn dlogp_dmean_matches_finite_difference() {
        let p = policy();
        let means = Matrix::from_rows(&[&[0.4, 0.6]]);
        let raws = Matrix::from_rows(&[&[0.7, 0.2]]);
        let grad = p.dlogp_dmean(&means, &raws);
        let eps = 1e-6;
        for j in 0..2 {
            let mut up = means.clone();
            up[(0, j)] += eps;
            let mut dn = means.clone();
            dn[(0, j)] -= eps;
            let fd = (p.log_prob(up.row(0), raws.row(0)) - p.log_prob(dn.row(0), raws.row(0)))
                / (2.0 * eps);
            assert!((fd - grad[(0, j)]).abs() < 1e-5, "dim {j}");
        }
    }

    #[test]
    fn dlogp_dlogstd_matches_finite_difference() {
        let mut p = policy();
        let means = Matrix::from_rows(&[&[0.4, 0.6]]);
        let raws = Matrix::from_rows(&[&[0.9, 0.55]]);
        let grad = p.dlogp_dlogstd(&means, &raws);
        let eps = 1e-6;
        for j in 0..2 {
            let orig = p.log_std()[j];
            p.log_std_mut()[j] = orig + eps;
            let up = p.log_prob(means.row(0), raws.row(0));
            p.log_std_mut()[j] = orig - eps;
            let dn = p.log_prob(means.row(0), raws.row(0));
            p.log_std_mut()[j] = orig;
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - grad[(0, j)]).abs() < 1e-5,
                "dim {j}: fd={fd} an={}",
                grad[(0, j)]
            );
        }
    }

    #[test]
    fn kl_of_identical_policies_is_zero() {
        let p = policy();
        let states = Matrix::from_rows(&[&[0.1, 0.9], &[0.5, 0.5]]);
        assert!(p.mean_kl_from(&p.clone(), &states).abs() < 1e-12);
    }

    #[test]
    fn kl_grows_with_parameter_distance() {
        let p = policy();
        let mut q = p.clone();
        let mut params = q.mean_net().flat_params();
        for v in &mut params {
            *v += 0.5;
        }
        q.mean_net_mut().set_flat_params(&params);
        let states = Matrix::from_rows(&[&[0.1, 0.9], &[0.5, 0.5]]);
        assert!(q.mean_kl_from(&p, &states) > 1e-4);
    }

    #[test]
    fn discounted_returns_reset_at_done() {
        let r = discounted_returns(&[1.0, 1.0, 1.0, 1.0], &[false, true, false, false], 0.5);
        assert!((r[0] - 1.5).abs() < 1e-12);
        assert!((r[1] - 1.0).abs() < 1e-12);
        assert!((r[2] - 1.5).abs() < 1e-12);
        assert!((r[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gae_with_lambda_one_equals_mc_minus_baseline() {
        let rewards = [1.0, 2.0, 3.0];
        let values = [0.5, 0.5, 0.5];
        let dones = [false, false, true];
        let gamma = 0.9;
        let (adv, targets) = gae(&rewards, &values, &dones, 99.0, gamma, 1.0);
        let mc = discounted_returns(&rewards, &dones, gamma);
        for i in 0..3 {
            assert!((adv[i] - (mc[i] - values[i])).abs() < 1e-9, "t={i}");
            assert!((targets[i] - mc[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn gae_bootstraps_with_last_value_when_truncated() {
        let (adv, _) = gae(&[0.0], &[0.0], &[false], 10.0, 0.5, 1.0);
        assert!((adv[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_advantages_zero_mean_unit_std() {
        let mut a = vec![1.0, 2.0, 3.0, 4.0];
        normalize_advantages(&mut a);
        let mean = a.iter().sum::<f64>() / 4.0;
        let var = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_constant_is_noop() {
        let mut a = vec![2.0, 2.0];
        normalize_advantages(&mut a);
        assert_eq!(a, vec![2.0, 2.0]);
    }

    #[test]
    fn rollout_has_consistent_shapes() {
        use crate::env::test_env::TrackingEnv;
        let mut rng = StdRng::seed_from_u64(3);
        let mut env = TrackingEnv::new(5);
        let mut rng2 = StdRng::seed_from_u64(0);
        let net = Mlp::new(
            &[1, 8, 1],
            Activation::leaky_default(),
            Activation::Sigmoid,
            &mut rng2,
        );
        let p = GaussianPolicy::new(net, -1.0);
        let r = collect_rollout(&mut env, &p, 12, &mut rng);
        assert_eq!(r.states.shape(), (12, 1));
        assert_eq!(r.raw_actions.shape(), (12, 1));
        assert_eq!(r.rewards.len(), 12);
        assert_eq!(r.log_probs.len(), 12);
        // Horizon 5 ⇒ dones at steps 4 and 9.
        assert!(r.dones[4] && r.dones[9]);
        assert_eq!(r.final_state.len(), 1);
    }
}
