//! Experience replay memory (Fig. 3).

use edgeslice_nn::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::Transition;

/// A fixed-capacity ring buffer of transitions with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    state_dim: usize,
    action_dim: usize,
    states: Vec<f64>,
    actions: Vec<f64>,
    rewards: Vec<f64>,
    next_states: Vec<f64>,
    dones: Vec<bool>,
    len: usize,
    head: usize,
}

/// A sampled minibatch in matrix form, ready for batched forward passes.
#[derive(Debug, Clone)]
pub struct Batch {
    /// `batch × state_dim` states.
    pub states: Matrix,
    /// `batch × action_dim` actions.
    pub actions: Matrix,
    /// Rewards, one per row.
    pub rewards: Vec<f64>,
    /// `batch × state_dim` successor states.
    pub next_states: Matrix,
    /// Termination flags, one per row.
    pub dones: Vec<bool>,
}

impl ReplayBuffer {
    /// Creates a buffer for transitions of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, state_dim: usize, action_dim: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            state_dim,
            action_dim,
            states: vec![0.0; capacity * state_dim],
            actions: vec![0.0; capacity * action_dim],
            rewards: vec![0.0; capacity],
            next_states: vec![0.0; capacity * state_dim],
            dones: vec![false; capacity],
            len: 0,
            head: 0,
        }
    }

    /// Number of stored transitions (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no transitions are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a transition, overwriting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics if the transition's dimensions don't match the buffer's.
    pub fn push(&mut self, t: &Transition) {
        assert_eq!(t.state.len(), self.state_dim, "state dim mismatch");
        assert_eq!(t.action.len(), self.action_dim, "action dim mismatch");
        assert_eq!(
            t.next_state.len(),
            self.state_dim,
            "next state dim mismatch"
        );
        let i = self.head;
        self.states[i * self.state_dim..(i + 1) * self.state_dim].copy_from_slice(&t.state);
        self.actions[i * self.action_dim..(i + 1) * self.action_dim].copy_from_slice(&t.action);
        self.rewards[i] = t.reward;
        self.next_states[i * self.state_dim..(i + 1) * self.state_dim]
            .copy_from_slice(&t.next_state);
        self.dones[i] = t.done;
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Uniformly samples `batch_size` transitions (with replacement).
    ///
    /// Returns `None` when the buffer holds fewer than `batch_size`
    /// transitions, the usual warm-up guard.
    pub fn sample(&self, batch_size: usize, rng: &mut StdRng) -> Option<Batch> {
        if self.len < batch_size || batch_size == 0 {
            return None;
        }
        let mut states = Vec::with_capacity(batch_size * self.state_dim);
        let mut actions = Vec::with_capacity(batch_size * self.action_dim);
        let mut rewards = Vec::with_capacity(batch_size);
        let mut next_states = Vec::with_capacity(batch_size * self.state_dim);
        let mut dones = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let i = rng.gen_range(0..self.len);
            states.extend_from_slice(&self.states[i * self.state_dim..(i + 1) * self.state_dim]);
            actions
                .extend_from_slice(&self.actions[i * self.action_dim..(i + 1) * self.action_dim]);
            rewards.push(self.rewards[i]);
            next_states
                .extend_from_slice(&self.next_states[i * self.state_dim..(i + 1) * self.state_dim]);
            dones.push(self.dones[i]);
        }
        Some(Batch {
            states: Matrix::from_vec(batch_size, self.state_dim, states),
            actions: Matrix::from_vec(batch_size, self.action_dim, actions),
            rewards,
            next_states: Matrix::from_vec(batch_size, self.state_dim, next_states),
            dones,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(v: f64) -> Transition {
        Transition {
            state: vec![v, v],
            action: vec![v],
            reward: v,
            next_state: vec![v + 1.0, v + 1.0],
            done: false,
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut b = ReplayBuffer::new(3, 2, 1);
        for i in 0..5 {
            b.push(&t(i as f64));
        }
        assert_eq!(b.len(), 3);
        // Oldest two (0, 1) evicted: all stored rewards are in {2,3,4}.
        assert!(b.rewards.iter().all(|&r| (2.0..=4.0).contains(&r)));
    }

    #[test]
    fn sample_requires_enough_data() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = ReplayBuffer::new(10, 2, 1);
        assert!(b.sample(1, &mut rng).is_none());
        b.push(&t(1.0));
        assert!(b.sample(2, &mut rng).is_none());
        assert!(b.sample(1, &mut rng).is_some());
    }

    #[test]
    fn sampled_rows_are_consistent_tuples() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = ReplayBuffer::new(16, 2, 1);
        for i in 0..16 {
            b.push(&t(i as f64));
        }
        let batch = b.sample(8, &mut rng).unwrap();
        assert_eq!(batch.states.shape(), (8, 2));
        assert_eq!(batch.actions.shape(), (8, 1));
        for r in 0..8 {
            let v = batch.rewards[r];
            assert_eq!(batch.states.row(r), &[v, v], "state must match reward row");
            assert_eq!(batch.actions.row(r), &[v]);
            assert_eq!(batch.next_states.row(r), &[v + 1.0, v + 1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "state dim mismatch")]
    fn dimension_mismatch_panics() {
        let mut b = ReplayBuffer::new(4, 3, 1);
        b.push(&t(0.0));
    }
}
