//! Experience replay memory (Fig. 3).

use edgeslice_nn::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::Transition;

/// A fixed-capacity ring buffer of transitions with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    state_dim: usize,
    action_dim: usize,
    states: Vec<f64>,
    actions: Vec<f64>,
    rewards: Vec<f64>,
    next_states: Vec<f64>,
    dones: Vec<bool>,
    len: usize,
    head: usize,
}

/// A sampled minibatch in matrix form, ready for batched forward passes.
///
/// A `Batch` is a *reusable buffer*: [`ReplayBuffer::sample_into`] reshapes
/// the matrices in place, so a long-lived batch reaches steady-state
/// capacity after the first sample and never allocates again.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// `batch × state_dim` states.
    pub states: Matrix,
    /// `batch × action_dim` actions.
    pub actions: Matrix,
    /// Rewards, one per row.
    pub rewards: Vec<f64>,
    /// `batch × state_dim` successor states.
    pub next_states: Matrix,
    /// Termination flags, one per row.
    pub dones: Vec<bool>,
}

impl Batch {
    /// An empty batch buffer, sized lazily by the first
    /// [`ReplayBuffer::sample_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sampled transitions.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// True if the batch holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }
}

/// Why [`ReplayBuffer::sample`] could not produce a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleError {
    /// The buffer holds fewer transitions than the requested batch size —
    /// the warm-up contract: agents must not learn before `len >= batch`.
    NotEnoughSamples {
        /// Transitions currently stored.
        have: usize,
        /// Transitions the caller asked for.
        need: usize,
    },
    /// The caller asked for an empty batch, which is never meaningful.
    EmptyBatch,
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::NotEnoughSamples { have, need } => write!(
                f,
                "replay buffer holds {have} transitions but the batch needs {need} (still warming up)"
            ),
            SampleError::EmptyBatch => write!(f, "cannot sample an empty batch"),
        }
    }
}

impl std::error::Error for SampleError {}

impl ReplayBuffer {
    /// Creates a buffer for transitions of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, state_dim: usize, action_dim: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            state_dim,
            action_dim,
            states: vec![0.0; capacity * state_dim],
            actions: vec![0.0; capacity * action_dim],
            rewards: vec![0.0; capacity],
            next_states: vec![0.0; capacity * state_dim],
            dones: vec![false; capacity],
            len: 0,
            head: 0,
        }
    }

    /// Number of stored transitions (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no transitions are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a transition, overwriting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics if the transition's dimensions don't match the buffer's.
    pub fn push(&mut self, t: &Transition) {
        assert_eq!(t.state.len(), self.state_dim, "state dim mismatch");
        assert_eq!(t.action.len(), self.action_dim, "action dim mismatch");
        assert_eq!(
            t.next_state.len(),
            self.state_dim,
            "next state dim mismatch"
        );
        let i = self.head;
        self.states[i * self.state_dim..(i + 1) * self.state_dim].copy_from_slice(&t.state);
        self.actions[i * self.action_dim..(i + 1) * self.action_dim].copy_from_slice(&t.action);
        self.rewards[i] = t.reward;
        self.next_states[i * self.state_dim..(i + 1) * self.state_dim]
            .copy_from_slice(&t.next_state);
        self.dones[i] = t.done;
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Uniformly samples `batch_size` transitions (with replacement) into a
    /// freshly allocated [`Batch`].
    ///
    /// Returns a typed [`SampleError`] when the buffer is still warming up
    /// (fewer than `batch_size` transitions stored) or `batch_size == 0`;
    /// agents treat that as "skip this update" and leave their networks
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`SampleError::NotEnoughSamples`] during warm-up,
    /// [`SampleError::EmptyBatch`] for `batch_size == 0`.
    pub fn sample(&self, batch_size: usize, rng: &mut StdRng) -> Result<Batch, SampleError> {
        let mut out = Batch::new();
        self.sample_into(batch_size, rng, &mut out)?;
        Ok(out)
    }

    /// [`ReplayBuffer::sample`] into a caller-owned [`Batch`], reusing its
    /// allocations. Draws the RNG in the same per-row order as `sample`, so
    /// both produce identical batches from identical RNG states.
    ///
    /// # Errors
    ///
    /// [`SampleError::NotEnoughSamples`] during warm-up,
    /// [`SampleError::EmptyBatch`] for `batch_size == 0`. `out` is left
    /// unchanged on error.
    pub fn sample_into(
        &self,
        batch_size: usize,
        rng: &mut StdRng,
        out: &mut Batch,
    ) -> Result<(), SampleError> {
        if batch_size == 0 {
            return Err(SampleError::EmptyBatch);
        }
        if self.len < batch_size {
            return Err(SampleError::NotEnoughSamples {
                have: self.len,
                need: batch_size,
            });
        }
        out.states.resize_for(batch_size, self.state_dim);
        out.actions.resize_for(batch_size, self.action_dim);
        out.rewards.resize(batch_size, 0.0);
        out.next_states.resize_for(batch_size, self.state_dim);
        out.dones.resize(batch_size, false);
        for b in 0..batch_size {
            let i = rng.gen_range(0..self.len);
            out.states
                .row_mut(b)
                .copy_from_slice(&self.states[i * self.state_dim..(i + 1) * self.state_dim]);
            out.actions
                .row_mut(b)
                .copy_from_slice(&self.actions[i * self.action_dim..(i + 1) * self.action_dim]);
            out.rewards[b] = self.rewards[i];
            out.next_states
                .row_mut(b)
                .copy_from_slice(&self.next_states[i * self.state_dim..(i + 1) * self.state_dim]);
            out.dones[b] = self.dones[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(v: f64) -> Transition {
        Transition {
            state: vec![v, v],
            action: vec![v],
            reward: v,
            next_state: vec![v + 1.0, v + 1.0],
            done: false,
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut b = ReplayBuffer::new(3, 2, 1);
        for i in 0..5 {
            b.push(&t(i as f64));
        }
        assert_eq!(b.len(), 3);
        // Oldest two (0, 1) evicted: all stored rewards are in {2,3,4}.
        assert!(b.rewards.iter().all(|&r| (2.0..=4.0).contains(&r)));
    }

    #[test]
    fn sample_requires_enough_data() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = ReplayBuffer::new(10, 2, 1);
        assert_eq!(
            b.sample(1, &mut rng).unwrap_err(),
            SampleError::NotEnoughSamples { have: 0, need: 1 }
        );
        b.push(&t(1.0));
        assert_eq!(
            b.sample(2, &mut rng).unwrap_err(),
            SampleError::NotEnoughSamples { have: 1, need: 2 }
        );
        assert_eq!(b.sample(0, &mut rng).unwrap_err(), SampleError::EmptyBatch);
        assert!(b.sample(1, &mut rng).is_ok());
    }

    #[test]
    fn sample_into_reuses_buffers_and_matches_sample() {
        let mut b = ReplayBuffer::new(16, 2, 1);
        for i in 0..16 {
            b.push(&t(i as f64));
        }
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let fresh = b.sample(8, &mut rng_a).unwrap();
        let mut reused = Batch::new();
        // Warm the buffer with a differently-sized draw first, then check
        // the reshaped re-draw matches `sample` exactly.
        b.sample_into(4, &mut StdRng::seed_from_u64(0), &mut reused)
            .unwrap();
        b.sample_into(8, &mut rng_b, &mut reused).unwrap();
        assert_eq!(fresh.states, reused.states);
        assert_eq!(fresh.actions, reused.actions);
        assert_eq!(fresh.rewards, reused.rewards);
        assert_eq!(fresh.next_states, reused.next_states);
        assert_eq!(fresh.dones, reused.dones);
        assert_eq!(reused.len(), 8);
        assert!(!reused.is_empty());
    }

    #[test]
    fn sampled_rows_are_consistent_tuples() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = ReplayBuffer::new(16, 2, 1);
        for i in 0..16 {
            b.push(&t(i as f64));
        }
        let batch = b.sample(8, &mut rng).unwrap();
        assert_eq!(batch.states.shape(), (8, 2));
        assert_eq!(batch.actions.shape(), (8, 1));
        for r in 0..8 {
            let v = batch.rewards[r];
            assert_eq!(batch.states.row(r), &[v, v], "state must match reward row");
            assert_eq!(batch.actions.row(r), &[v]);
            assert_eq!(batch.next_states.row(r), &[v + 1.0, v + 1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "state dim mismatch")]
    fn dimension_mismatch_panics() {
        let mut b = ReplayBuffer::new(4, 3, 1);
        b.push(&t(0.0));
    }
}
