//! Proximal policy optimization (Schulman et al. 2017) with a clipped
//! surrogate objective — a comparator training technique in Fig. 10b.

use edgeslice_nn::{Adam, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::{collect_rollout, gae, normalize_advantages, Environment, GaussianPolicy, ValueNet};

/// Hyper-parameters for [`Ppo`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Hidden width of policy and value networks.
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ.
    pub lambda: f64,
    /// Clip range ε of the surrogate ratio.
    pub clip: f64,
    /// Policy learning rate.
    pub policy_lr: f64,
    /// Value-function learning rate.
    pub value_lr: f64,
    /// Environment steps per update.
    pub rollout_len: usize,
    /// Optimization epochs over each rollout.
    pub epochs: usize,
    /// Minibatch size within an epoch.
    pub minibatch: usize,
    /// Entropy bonus coefficient.
    pub entropy_coef: f64,
    /// Initial policy log standard deviation.
    pub initial_log_std: f64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            gamma: 0.99,
            lambda: 0.95,
            clip: 0.2,
            policy_lr: 3e-4,
            value_lr: 1e-2,
            rollout_len: 512,
            epochs: 8,
            minibatch: 64,
            entropy_coef: 1e-3,
            initial_log_std: -0.7,
        }
    }
}

/// Diagnostics from one PPO update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoUpdate {
    /// Mean per-step reward in the rollout.
    pub mean_reward: f64,
    /// Fraction of samples whose ratio hit the clip boundary in the final
    /// epoch.
    pub clip_fraction: f64,
    /// Final value-regression loss.
    pub value_loss: f64,
}

/// A PPO-clip learner.
#[derive(Debug, Clone)]
pub struct Ppo {
    policy: GaussianPolicy,
    policy_opt: Adam,
    value: ValueNet,
    config: PpoConfig,
}

impl Ppo {
    /// Creates a learner for the given dimensions.
    pub fn new(state_dim: usize, action_dim: usize, config: PpoConfig, rng: &mut StdRng) -> Self {
        let mean = edgeslice_nn::Mlp::new(
            &[state_dim, config.hidden, config.hidden, action_dim],
            edgeslice_nn::Activation::leaky_default(),
            edgeslice_nn::Activation::Sigmoid,
            rng,
        );
        let policy = GaussianPolicy::new(mean, config.initial_log_std);
        let policy_opt = Adam::new(policy.mean_net(), config.policy_lr);
        let value = ValueNet::new(state_dim, config.hidden, config.value_lr, rng);
        Self {
            policy,
            policy_opt,
            value,
            config,
        }
    }

    /// The underlying stochastic policy.
    pub fn gaussian_policy(&self) -> &GaussianPolicy {
        &self.policy
    }

    /// The greedy (mean) policy action, clamped to the unit box.
    pub fn policy(&self, state: &[f64]) -> Vec<f64> {
        let mut a = self.policy.act_deterministic(state);
        for v in &mut a {
            *v = v.clamp(0.0, 1.0);
        }
        a
    }

    /// Collects one rollout and runs the clipped-surrogate optimization.
    pub fn update<E: Environment + ?Sized>(&mut self, env: &mut E, rng: &mut StdRng) -> PpoUpdate {
        let rollout = collect_rollout(env, &self.policy, self.config.rollout_len, rng);
        let values = self.value.predict(&rollout.states);
        let last_value = self.value.predict_one(&rollout.final_state);
        let (mut adv, targets) = gae(
            &rollout.rewards,
            &values,
            &rollout.dones,
            last_value,
            self.config.gamma,
            self.config.lambda,
        );
        normalize_advantages(&mut adv);

        let n = rollout.rewards.len();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut clip_fraction = 0.0;
        for _ in 0..self.config.epochs {
            indices.shuffle(rng);
            let mut clipped = 0usize;
            for chunk in indices.chunks(self.config.minibatch.max(1)) {
                let states = rollout.states.select_rows(chunk);
                let raws = rollout.raw_actions.select_rows(chunk);
                let old_lp: Vec<f64> = chunk.iter().map(|&i| rollout.log_probs[i]).collect();
                let batch_adv: Vec<f64> = chunk.iter().map(|&i| adv[i]).collect();

                let cache = self.policy.mean_net().forward_cached(&states);
                let means = cache.output().clone();
                let new_lp = self.policy.log_prob_batch(&means, &raws);
                let dlogp = self.policy.dlogp_dmean(&means, &raws);
                let m = chunk.len() as f64;

                // Clipped-surrogate gradient wrt the mean head. For sample i
                // the objective is min(r A, clip(r) A); its gradient is
                // r A ∂logπ/∂μ when the unclipped branch is active, else 0.
                let mut d_mean = Matrix::zeros(dlogp.rows(), dlogp.cols());
                for (row, (&lp_new, &lp_old)) in new_lp.iter().zip(&old_lp).enumerate() {
                    let ratio = (lp_new - lp_old).exp();
                    let a = batch_adv[row];
                    let active = if a >= 0.0 {
                        ratio <= 1.0 + self.config.clip
                    } else {
                        ratio >= 1.0 - self.config.clip
                    };
                    if !active {
                        clipped += 1;
                        continue;
                    }
                    for j in 0..dlogp.cols() {
                        // Minimize the negative surrogate.
                        d_mean[(row, j)] = -ratio * a * dlogp[(row, j)] / m;
                    }
                }
                let (mut grads, _) = self.policy.mean_net().backward(&cache, &d_mean);
                grads.clip_global_norm(5.0);
                self.policy_opt.step(self.policy.mean_net_mut(), &grads);

                // log-std update: surrogate + entropy bonus.
                let dls = self.policy.dlogp_dlogstd(&means, &raws);
                for j in 0..self.policy.action_dim() {
                    let mut g = 0.0;
                    for (row, (&lp_new, &lp_old)) in new_lp.iter().zip(&old_lp).enumerate() {
                        let ratio = (lp_new - lp_old).exp();
                        let a = batch_adv[row];
                        let active = if a >= 0.0 {
                            ratio <= 1.0 + self.config.clip
                        } else {
                            ratio >= 1.0 - self.config.clip
                        };
                        if active {
                            g += -ratio * a * dls[(row, j)] / m;
                        }
                    }
                    // Entropy bonus gradient: ∂H/∂logσ = 1.
                    g -= self.config.entropy_coef;
                    let ls = &mut self.policy.log_std_mut()[j];
                    *ls = (*ls - self.config.policy_lr * g).clamp(-3.0, 1.0);
                }
            }
            clip_fraction = clipped as f64 / n as f64;
        }

        let value_loss = self
            .value
            .fit(&rollout.states, &targets, self.config.epochs, 64, rng);
        PpoUpdate {
            mean_reward: rollout.rewards.iter().sum::<f64>() / n as f64,
            clip_fraction,
            value_loss,
        }
    }

    /// Runs `iterations` update cycles; returns per-update mean rewards.
    pub fn train<E: Environment + ?Sized>(
        &mut self,
        env: &mut E,
        iterations: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        (0..iterations)
            .map(|_| self.update(env, rng).mean_reward)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::TrackingEnv;
    use crate::evaluate;
    use rand::SeedableRng;

    #[test]
    fn improves_on_tracking_task() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut env = TrackingEnv::new(20);
        let cfg = PpoConfig {
            hidden: 16,
            rollout_len: 256,
            policy_lr: 1e-3,
            ..Default::default()
        };
        let mut agent = Ppo::new(1, 1, cfg, &mut rng);
        let before = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        agent.train(&mut env, 25, &mut rng);
        let after = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        assert!(
            after > before,
            "PPO failed to improve: {before:.2} -> {after:.2}"
        );
        assert!(after > 18.0, "PPO final score too low: {after:.2}");
    }

    #[test]
    fn clip_fraction_is_a_fraction() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut env = TrackingEnv::new(10);
        let cfg = PpoConfig {
            hidden: 8,
            rollout_len: 64,
            epochs: 4,
            ..Default::default()
        };
        let mut agent = Ppo::new(1, 1, cfg, &mut rng);
        let u = agent.update(&mut env, &mut rng);
        assert!((0.0..=1.0).contains(&u.clip_fraction));
        assert!(u.value_loss.is_finite());
    }
}
