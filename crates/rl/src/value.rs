//! State-value function fitting shared by the on-policy algorithms.

use edgeslice_nn::{mse_loss, Activation, Adam, Matrix, Mlp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A state-value network `V(s)` trained by minibatch regression.
#[derive(Debug, Clone)]
pub struct ValueNet {
    net: Mlp,
    opt: Adam,
}

impl ValueNet {
    /// Creates a value network with the given hidden width.
    pub fn new(state_dim: usize, hidden: usize, lr: f64, rng: &mut StdRng) -> Self {
        let net = Mlp::new(
            &[state_dim, hidden, hidden, 1],
            Activation::leaky_default(),
            Activation::Identity,
            rng,
        );
        let opt = Adam::new(&net, lr);
        Self { net, opt }
    }

    /// Predicted values for a batch of states, one per row.
    pub fn predict(&self, states: &Matrix) -> Vec<f64> {
        self.net.forward(states).into_vec()
    }

    /// Predicted value of a single state.
    pub fn predict_one(&self, state: &[f64]) -> f64 {
        self.net.forward_one(state)[0]
    }

    /// Regresses the network toward `targets` for `epochs` passes of
    /// shuffled minibatches; returns the final epoch's mean loss.
    pub fn fit(
        &mut self,
        states: &Matrix,
        targets: &[f64],
        epochs: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f64 {
        assert_eq!(states.rows(), targets.len(), "value fit length mismatch");
        let n = states.rows();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut last = 0.0;
        for _ in 0..epochs {
            indices.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in indices.chunks(batch_size.max(1)) {
                let xs = states.select_rows(chunk);
                let ys =
                    Matrix::from_vec(chunk.len(), 1, chunk.iter().map(|&i| targets[i]).collect());
                let cache = self.net.forward_cached(&xs);
                let (loss, d) = mse_loss(cache.output(), &ys);
                let (grads, _) = self.net.backward(&cache, &d);
                self.opt.step(&mut self.net, &grads);
                epoch_loss += loss;
                batches += 1;
            }
            last = epoch_loss / batches.max(1) as f64;
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fits_a_simple_value_surface() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut v = ValueNet::new(2, 16, 1e-2, &mut rng);
        let states = Matrix::from_fn(64, 2, |i, j| ((i * 2 + j) % 8) as f64 / 8.0);
        let targets: Vec<f64> = (0..64)
            .map(|i| states[(i, 0)] + 2.0 * states[(i, 1)])
            .collect();
        let first = v.fit(&states, &targets, 1, 16, &mut rng);
        let last = v.fit(&states, &targets, 60, 16, &mut rng);
        assert!(last < first * 0.2, "value fit stalled: {first} -> {last}");
        assert!((v.predict_one(&[0.5, 0.5]) - 1.5).abs() < 0.3);
    }

    #[test]
    fn predict_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = ValueNet::new(3, 8, 1e-3, &mut rng);
        assert_eq!(v.predict(&Matrix::zeros(5, 3)).len(), 5);
    }
}
