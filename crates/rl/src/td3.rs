//! Twin-delayed DDPG (TD3, Fujimoto et al. 2018) — an extension beyond the
//! paper's DDPG that addresses its two failure modes (critic
//! overestimation and brittle actor updates) with clipped double-Q
//! learning, target-policy smoothing and delayed actor updates. Included
//! as the natural "future work" upgrade path for EdgeSlice's orchestration
//! agents; the ablation bench compares it against plain DDPG.

use edgeslice_nn::{Activation, Adam, Matrix, Mlp, TrainScratch};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::noise::sample_standard_normal;
use crate::{Batch, DecayingGaussian, Environment, ReplayBuffer, Transition};

/// Hyper-parameters for [`Td3`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Td3Config {
    /// Hidden width of actor and critics.
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Polyak factor τ.
    pub tau: f64,
    /// Learning rate for all networks.
    pub lr: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Environment steps before updates begin.
    pub warmup: usize,
    /// Exploration noise σ and its decay (as in the paper's DDPG).
    pub noise_sigma: f64,
    /// Per-update exploration-noise decay.
    pub noise_decay: f64,
    /// Target-policy smoothing noise σ.
    pub target_noise: f64,
    /// Clip bound for the smoothing noise.
    pub target_noise_clip: f64,
    /// Actor (and target) update period in critic updates.
    pub policy_delay: u64,
}

impl Default for Td3Config {
    fn default() -> Self {
        Self {
            hidden: 64,
            gamma: 0.99,
            tau: 0.005,
            lr: 1e-3,
            batch_size: 128,
            replay_capacity: 100_000,
            warmup: 500,
            noise_sigma: 1.0,
            noise_decay: 0.999,
            target_noise: 0.1,
            target_noise_clip: 0.25,
            policy_delay: 2,
        }
    }
}

/// Diagnostics from one TD3 update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Td3Update {
    /// Mean twin-critic MSBE loss.
    pub critic_loss: f64,
    /// Whether the delayed actor update ran this step.
    pub actor_updated: bool,
}

/// Reusable buffers for one [`Td3::update`] step (see the DDPG scratch for
/// the pattern); `q_td` is shared by both twin critics' TD passes because
/// they run sequentially.
#[derive(Debug, Clone, Default)]
struct Td3Scratch {
    batch: Batch,
    ta_fwd: TrainScratch,
    q1t_fwd: TrainScratch,
    q2t_fwd: TrainScratch,
    q_td: TrainScratch,
    actor_fwd: TrainScratch,
    q1_pi: TrainScratch,
    next_actions: Matrix,
    next_sa: Matrix,
    sa: Matrix,
    sa_mu: Matrix,
    targets: Matrix,
    d_pred: Matrix,
    d_q: Matrix,
    d_action: Matrix,
}

/// A TD3 learner.
#[derive(Debug, Clone)]
pub struct Td3 {
    actor: Mlp,
    q1: Mlp,
    q2: Mlp,
    target_actor: Mlp,
    q1_target: Mlp,
    q2_target: Mlp,
    actor_opt: Adam,
    q1_opt: Adam,
    q2_opt: Adam,
    replay: ReplayBuffer,
    noise: DecayingGaussian,
    config: Td3Config,
    updates: u64,
    scratch: Td3Scratch,
}

impl Td3 {
    /// Creates a learner for the given dimensions.
    pub fn new(state_dim: usize, action_dim: usize, config: Td3Config, rng: &mut StdRng) -> Self {
        let h = config.hidden;
        let actor = Mlp::new(
            &[state_dim, h, h, action_dim],
            Activation::leaky_default(),
            Activation::Sigmoid,
            rng,
        );
        let make_q = |rng: &mut StdRng| {
            Mlp::new(
                &[state_dim + action_dim, h, h, 1],
                Activation::leaky_default(),
                Activation::Identity,
                rng,
            )
        };
        let q1 = make_q(rng);
        let q2 = make_q(rng);
        Self {
            target_actor: actor.clone(),
            q1_target: q1.clone(),
            q2_target: q2.clone(),
            actor_opt: Adam::new(&actor, config.lr),
            q1_opt: Adam::new(&q1, config.lr),
            q2_opt: Adam::new(&q2, config.lr),
            replay: ReplayBuffer::new(config.replay_capacity, state_dim, action_dim),
            noise: DecayingGaussian::new(config.noise_sigma, config.noise_decay, 0.01),
            actor,
            q1,
            q2,
            config,
            updates: 0,
            scratch: Td3Scratch::default(),
        }
    }

    /// The actor network.
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// The greedy policy action.
    pub fn policy(&self, state: &[f64]) -> Vec<f64> {
        self.actor.forward_one(state)
    }

    /// Exploration action (decaying Gaussian noise, clamped to `[0, 1]`).
    pub fn explore(&mut self, state: &[f64], rng: &mut StdRng) -> Vec<f64> {
        let mut a = self.policy(state);
        self.noise.perturb(&mut a, rng);
        a
    }

    /// Stores a transition.
    pub fn observe(&mut self, transition: &Transition) {
        self.replay.push(transition);
    }

    /// Gradient updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// One TD3 update: twin-critic regression against the clipped double-Q
    /// target with smoothed target actions; the actor and targets update
    /// every `policy_delay` critic steps.
    ///
    /// Returns `None` until a full batch is available. Runs through the
    /// `_into` kernels and this agent's scratch arena — allocation-free at
    /// steady state, like [`crate::Ddpg::update`].
    pub fn update(&mut self, rng: &mut StdRng) -> Option<Td3Update> {
        let mut s = std::mem::take(&mut self.scratch);
        let result = self.update_with(&mut s, rng);
        self.scratch = s;
        result
    }

    fn update_with(&mut self, s: &mut Td3Scratch, rng: &mut StdRng) -> Option<Td3Update> {
        if self
            .replay
            .sample_into(self.config.batch_size, rng, &mut s.batch)
            .is_err()
        {
            return None;
        }
        let n = s.batch.rewards.len();

        // Smoothed target actions: μ'(s') + clip(ε), re-clamped to [0, 1].
        self.target_actor
            .forward_scratch(&s.batch.next_states, &mut s.ta_fwd);
        s.next_actions.copy_from(s.ta_fwd.output());
        for i in 0..n {
            for j in 0..s.next_actions.cols() {
                let eps = (self.config.target_noise * sample_standard_normal(rng)).clamp(
                    -self.config.target_noise_clip,
                    self.config.target_noise_clip,
                );
                s.next_actions[(i, j)] = (s.next_actions[(i, j)] + eps).clamp(0.0, 1.0);
            }
        }
        Matrix::hstack_into(&[&s.batch.next_states, &s.next_actions], &mut s.next_sa);
        self.q1_target.forward_scratch(&s.next_sa, &mut s.q1t_fwd);
        self.q2_target.forward_scratch(&s.next_sa, &mut s.q2t_fwd);
        s.targets.resize_for(n, 1);
        {
            let q1n = s.q1t_fwd.output();
            let q2n = s.q2t_fwd.output();
            for i in 0..n {
                let minq = q1n[(i, 0)].min(q2n[(i, 0)]);
                let bootstrap = if s.batch.dones[i] {
                    0.0
                } else {
                    self.config.gamma * minq
                };
                s.targets[(i, 0)] = s.batch.rewards[i] + bootstrap;
            }
        }

        Matrix::hstack_into(&[&s.batch.states, &s.batch.actions], &mut s.sa);
        let mut critic_loss = 0.0;
        for (q, opt) in [
            (&mut self.q1, &mut self.q1_opt),
            (&mut self.q2, &mut self.q2_opt),
        ] {
            q.forward_scratch(&s.sa, &mut s.q_td);
            let loss = edgeslice_nn::mse_loss_into(s.q_td.output(), &s.targets, &mut s.d_pred);
            q.backward_scratch(&mut s.q_td, &s.d_pred);
            s.q_td.grads_mut().clip_global_norm(10.0);
            opt.step(q, s.q_td.grads());
            critic_loss += 0.5 * loss;
        }

        self.updates += 1;
        let actor_updated = self.updates.is_multiple_of(self.config.policy_delay);
        if actor_updated {
            // Deterministic policy gradient through Q1 only; only the
            // input-gradient chain of Q1 is needed.
            self.actor
                .forward_scratch(&s.batch.states, &mut s.actor_fwd);
            Matrix::hstack_into(&[&s.batch.states, s.actor_fwd.output()], &mut s.sa_mu);
            self.q1.forward_scratch(&s.sa_mu, &mut s.q1_pi);
            s.d_q.resize_for(n, 1);
            s.d_q.fill(-1.0 / n as f64);
            self.q1.backward_input_scratch(&mut s.q1_pi, &s.d_q);
            let sd = s.batch.states.cols();
            let ad = s.actor_fwd.output().cols();
            s.d_action.resize_for(n, ad);
            {
                let d_input = s.q1_pi.d_input();
                for i in 0..n {
                    s.d_action
                        .row_mut(i)
                        .copy_from_slice(&d_input.row(i)[sd..sd + ad]);
                }
            }
            self.actor.backward_scratch(&mut s.actor_fwd, &s.d_action);
            s.actor_fwd.grads_mut().clip_global_norm(10.0);
            self.actor_opt.step(&mut self.actor, s.actor_fwd.grads());

            self.target_actor
                .soft_update_from(&self.actor, self.config.tau);
            self.q1_target.soft_update_from(&self.q1, self.config.tau);
            self.q2_target.soft_update_from(&self.q2, self.config.tau);
        }

        Some(Td3Update {
            critic_loss,
            actor_updated,
        })
    }

    /// Convenience training loop mirroring [`crate::Ddpg::train`].
    pub fn train<E: Environment + ?Sized>(
        &mut self,
        env: &mut E,
        steps: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let mut returns = Vec::new();
        let mut state = env.reset(rng);
        let mut episode_return = 0.0;
        for step in 0..steps {
            let action = if step < self.config.warmup {
                (0..env.action_dim())
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect()
            } else {
                self.explore(&state, rng)
            };
            let out = env.step(&action, rng);
            episode_return += out.reward;
            self.observe(&Transition {
                state: state.clone(),
                action,
                reward: out.reward,
                next_state: out.next_state.clone(),
                done: out.done,
            });
            state = if out.done {
                returns.push(episode_return);
                episode_return = 0.0;
                env.reset(rng)
            } else {
                out.next_state
            };
            if step >= self.config.warmup {
                self.update(rng);
            }
        }
        returns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::TrackingEnv;
    use crate::evaluate;
    use rand::SeedableRng;

    fn small_config() -> Td3Config {
        Td3Config {
            hidden: 16,
            batch_size: 32,
            replay_capacity: 5_000,
            warmup: 100,
            noise_sigma: 0.4,
            ..Default::default()
        }
    }

    #[test]
    fn learns_to_track_the_target() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut env = TrackingEnv::new(20);
        let mut agent = Td3::new(1, 1, small_config(), &mut rng);
        let before = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        agent.train(&mut env, 2_500, &mut rng);
        let after = evaluate(&mut env, |s| agent.policy(s), 10, 20, &mut rng);
        assert!(
            after > before && after > 19.0,
            "TD3 failed to learn: before={before:.2} after={after:.2}"
        );
    }

    #[test]
    fn actor_updates_are_delayed() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut env = TrackingEnv::new(10);
        let mut agent = Td3::new(1, 1, small_config(), &mut rng);
        agent.train(&mut env, 150, &mut rng);
        // With delay 2, updates alternate.
        let u1 = agent.update(&mut rng).unwrap();
        let u2 = agent.update(&mut rng).unwrap();
        assert_ne!(u1.actor_updated, u2.actor_updated);
    }

    #[test]
    fn policy_in_unit_box() {
        let mut rng = StdRng::seed_from_u64(33);
        let agent = Td3::new(3, 2, small_config(), &mut rng);
        let a = agent.policy(&[5.0, -5.0, 0.0]);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
