//! Ordinary least squares.
//!
//! The simulated network environment (paper Sec. VI-B) fits a **local linear
//! regression** over the grid-search dataset's neighbouring orchestration
//! actions to predict service time for off-grid actions; this module is that
//! regression (the paper used scikit-learn).

use serde::{Deserialize, Serialize};

use crate::{solve_spd, OptimError};

/// A fitted linear model `y = w · x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearModel {
    /// Fits ordinary least squares with an intercept on rows `xs` and
    /// targets `ys`, adding ridge damping `lambda ≥ 0` on the weights (not
    /// the intercept) for numerical robustness when neighbours are
    /// collinear.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] when `xs`/`ys` lengths
    /// disagree or `xs` is empty, and propagates solver failures for
    /// degenerate designs.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<Self, OptimError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(OptimError::DimensionMismatch {
                expected: ys.len(),
                found: xs.len(),
            });
        }
        let d = xs[0].len();
        let n = d + 1; // + intercept column
                       // Normal equations: (XᵀX + λI') w = Xᵀy with augmented X = [x, 1].
        let mut ata = vec![0.0f64; n * n];
        let mut atb = vec![0.0f64; n];
        for (x, &y) in xs.iter().zip(ys) {
            if x.len() != d {
                return Err(OptimError::DimensionMismatch {
                    expected: d,
                    found: x.len(),
                });
            }
            for i in 0..n {
                let xi = if i < d { x[i] } else { 1.0 };
                atb[i] += xi * y;
                for j in 0..n {
                    let xj = if j < d { x[j] } else { 1.0 };
                    ata[i * n + j] += xi * xj;
                }
            }
        }
        for i in 0..d {
            // Ridge on weights only; a tiny floor keeps the system SPD.
            ata[i * n + i] += lambda.max(1e-9);
        }
        ata[d * n + d] += 1e-9;
        let sol = solve_spd(&ata, &atb)?;
        Ok(Self {
            weights: sol[..d].to_vec(),
            intercept: sol[d],
        })
    }

    /// The fitted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Predicts `w · x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.weights.len(),
            "prediction dimensionality mismatch"
        );
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.intercept
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| (self.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 5.0).collect();
        let m = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.weights()[0] - 3.0).abs() < 1e-6);
        assert!((m.weights()[1] + 2.0).abs() < 1e-6);
        assert!((m.intercept() - 5.0).abs() < 1e-5);
        assert!(m.mse(&xs, &ys) < 1e-10);
    }

    #[test]
    fn ridge_handles_duplicate_rows() {
        // All identical rows: unregularized normal equations are singular.
        let xs = vec![vec![1.0, 2.0]; 5];
        let ys = vec![4.0; 5];
        let m = LinearModel::fit(&xs, &ys, 1e-3).unwrap();
        assert!((m.predict(&[1.0, 2.0]) - 4.0).abs() < 0.1);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(LinearModel::fit(&[], &[], 0.0).is_err());
    }

    #[test]
    fn mismatched_lengths_is_an_error() {
        assert!(LinearModel::fit(&[vec![1.0]], &[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn interpolates_between_grid_neighbours() {
        // Mimic the paper's use: predict service time between two adjacent
        // 10%-granularity grid actions.
        let xs = vec![
            vec![0.1, 0.3, 0.2],
            vec![0.1, 0.4, 0.2],
            vec![0.2, 0.3, 0.2],
        ];
        let ys = vec![10.0, 8.0, 9.0];
        let m = LinearModel::fit(&xs, &ys, 1e-6).unwrap();
        let mid = m.predict(&[0.12, 0.38, 0.2]);
        assert!(mid < 10.0 && mid > 7.5, "interpolation out of range: {mid}");
    }
}
