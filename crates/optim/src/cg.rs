//! Conjugate gradient for implicit linear systems.
//!
//! TRPO (one of the paper's comparator training techniques, Fig. 10b) needs
//! to solve `F x = g` where `F` is the Fisher information matrix, available
//! only through Fisher-vector products. CG with a matvec closure is the
//! standard tool.

/// Solves `A x = b` by conjugate gradient, given only the matvec
/// `matvec(v) = A v`. `A` must be symmetric positive (semi-)definite.
///
/// Returns the approximate solution after at most `max_iters` iterations or
/// once the residual norm falls under `tol`.
pub fn conjugate_gradient(
    matvec: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
) -> Vec<f64> {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    if rs_old.sqrt() < tol {
        return x;
    }
    for _ in 0..max_iters {
        let ap = matvec(&p);
        let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if p_ap.abs() < 1e-18 {
            break; // direction annihilated; A is (numerically) singular here
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        if rs_new.sqrt() < tol {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_diagonal_system() {
        let d = [2.0, 4.0, 8.0];
        let x = conjugate_gradient(
            |v| v.iter().zip(&d).map(|(vi, di)| vi * di).collect(),
            &[2.0, 4.0, 8.0],
            10,
            1e-12,
        );
        for xi in x {
            assert!((xi - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_dense_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11]
        let a = [4.0, 1.0, 1.0, 3.0];
        let matvec = |v: &[f64]| vec![a[0] * v[0] + a[1] * v[1], a[2] * v[0] + a[3] * v[1]];
        let x = conjugate_gradient(matvec, &[1.0, 2.0], 10, 1e-12);
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn matches_direct_solver() {
        let a = [5.0, 1.0, 0.5, 1.0, 4.0, 1.0, 0.5, 1.0, 3.0];
        let b = [1.0, -2.0, 0.5];
        let matvec = |v: &[f64]| {
            (0..3)
                .map(|i| (0..3).map(|j| a[i * 3 + j] * v[j]).sum())
                .collect::<Vec<f64>>()
        };
        let x_cg = conjugate_gradient(matvec, &b, 20, 1e-12);
        let x_direct = crate::solve_spd(&a, &b).unwrap();
        for (u, v) in x_cg.iter().zip(&x_direct) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let x = conjugate_gradient(|v| v.to_vec(), &[0.0, 0.0], 5, 1e-12);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
