//! # edgeslice-optim
//!
//! Convex-optimization building blocks for the EdgeSlice reproduction:
//!
//! * [`project_sum_halfspace`] / [`solve_projection_qp`] — the coordinator's
//!   `P2` quadratic program (paper Eq. 11), exactly and iteratively.
//! * [`dual_update`], [`AdmmResiduals`], [`ConvergenceTracker`] — the ADMM
//!   machinery of Sec. IV-A / Alg. 1.
//! * [`LinearModel`] — the local linear regression that the simulated
//!   environment fits over grid-search neighbours (Sec. VI-B; the paper used
//!   scikit-learn).
//! * [`solve_spd`] / [`solve_general`] — small dense direct solvers.
//! * [`conjugate_gradient`] — implicit-system solver used by TRPO.
//!
//! # Examples
//!
//! Solve the coordinator's per-slice projection:
//!
//! ```
//! use edgeslice_optim::project_sum_halfspace;
//!
//! // Achieved performance + duals per RA; SLA requires the sum ≥ -50.
//! let c = [-40.0, -30.0];
//! let z = project_sum_halfspace(&c, -50.0);
//! assert_eq!(z, vec![-30.0, -20.0]);
//! assert!(z.iter().sum::<f64>() >= -50.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod admm;
mod cg;
mod error;
mod linreg;
mod qp;
mod solve;

pub use admm::{augmented_penalty, dual_update, AdmmConfig, AdmmResiduals, ConvergenceTracker};
pub use cg::conjugate_gradient;
pub use error::OptimError;
pub use linreg::LinearModel;
pub use qp::{
    clamp_box, project_capacity, project_sum_halfspace, solve_projection_qp, QpConfig, QpSolution,
};
pub use solve::{solve_general, solve_spd};
