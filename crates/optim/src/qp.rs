//! Quadratic programs for the performance coordinator.
//!
//! Problem `P2` in the paper (Eq. 11) is, for each slice `i`,
//!
//! ```text
//! min_z Σ_j ‖c_j − z_j‖²   s.t.  Σ_j z_j ≥ Umin
//! ```
//!
//! with `c_j = Σ_t U_{i,j}^{(t)} + y_{i,j}`. This is the Euclidean
//! projection of `c` onto a half-space, which has a closed form; the paper
//! solved it with CVXPY. We provide both the exact projection and a
//! projected-gradient solver that cross-validates it (and generalizes to
//! additional constraints).

use serde::{Deserialize, Serialize};

/// Projects `c` onto the half-space `{ z : Σ z_j ≥ bound }`.
///
/// If the constraint is already satisfied the projection is `c` itself;
/// otherwise every coordinate is lifted by the same amount
/// `(bound − Σc)/n`, which is the unique minimizer of `‖c − z‖²`.
///
/// # Panics
///
/// Panics if `c` is empty.
pub fn project_sum_halfspace(c: &[f64], bound: f64) -> Vec<f64> {
    assert!(!c.is_empty(), "cannot project an empty vector");
    let sum: f64 = c.iter().sum();
    if sum >= bound {
        return c.to_vec();
    }
    let lift = (bound - sum) / c.len() as f64;
    c.iter().map(|&x| x + lift).collect()
}

/// Configuration for the iterative projected-gradient QP solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpConfig {
    /// Gradient step size.
    pub step: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the iterate displacement.
    pub tol: f64,
}

impl Default for QpConfig {
    fn default() -> Self {
        Self {
            step: 0.25,
            max_iters: 10_000,
            tol: 1e-10,
        }
    }
}

/// Result of a [`solve_projection_qp`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct QpSolution {
    /// The minimizer.
    pub z: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iters`.
    pub converged: bool,
}

/// Solves `min_z ‖c − z‖²  s.t. Σ z ≥ bound` by projected gradient descent.
///
/// Exists to cross-check [`project_sum_halfspace`] and to serve as the
/// template for QPs with extra constraints; for the plain half-space case
/// prefer the closed form.
///
/// # Panics
///
/// Panics if `c` is empty.
pub fn solve_projection_qp(c: &[f64], bound: f64, config: QpConfig) -> QpSolution {
    assert!(!c.is_empty(), "cannot solve an empty QP");
    let mut z = project_sum_halfspace(c, bound);
    let mut iterations = 0;
    let mut converged = false;
    for it in 0..config.max_iters {
        iterations = it + 1;
        // ∇ = 2 (z − c); step then re-project onto the feasible set.
        let mut next: Vec<f64> = z
            .iter()
            .zip(c)
            .map(|(&zi, &ci)| zi - config.step * 2.0 * (zi - ci))
            .collect();
        next = project_sum_halfspace(&next, bound);
        let delta: f64 = next.iter().zip(&z).map(|(a, b)| (a - b).powi(2)).sum();
        z = next;
        if delta.sqrt() < config.tol {
            converged = true;
            break;
        }
    }
    QpSolution {
        z,
        iterations,
        converged,
    }
}

/// Projects `x` onto the box `[lo, hi]^n` element-wise.
pub fn clamp_box(x: &mut [f64], lo: f64, hi: f64) {
    for v in x.iter_mut() {
        *v = v.clamp(lo, hi);
    }
}

/// Projects `x` onto the scaled simplex `{ x ≥ 0, Σ x ≤ cap }`.
///
/// Used when normalizing resource orchestration actions that overshoot an
/// RA's capacity. Nonnegative entries are kept; if their sum exceeds `cap`
/// the vector is rescaled proportionally (the multiplicative projection used
/// for resource shares, not the Euclidean one, so zero allocations stay
/// zero).
pub fn project_capacity(x: &mut [f64], cap: f64) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    let sum: f64 = x.iter().sum();
    if sum > cap && sum > 0.0 {
        let scale = cap / sum;
        for v in x.iter_mut() {
            *v *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_identity_when_feasible() {
        let c = [3.0, 4.0, 5.0];
        assert_eq!(project_sum_halfspace(&c, 10.0), c.to_vec());
    }

    #[test]
    fn projection_lifts_uniformly_when_infeasible() {
        let c = [0.0, 0.0];
        let z = project_sum_halfspace(&c, 4.0);
        assert_eq!(z, vec![2.0, 2.0]);
    }

    #[test]
    fn projection_satisfies_constraint_tightly() {
        let c = [-10.0, 2.0, 1.0];
        let z = project_sum_halfspace(&c, 0.0);
        let sum: f64 = z.iter().sum();
        assert!(
            (sum - 0.0).abs() < 1e-12,
            "projection should be tight, got {sum}"
        );
    }

    #[test]
    fn projection_is_optimal_vs_perturbations() {
        // Any feasible perturbation must not be closer to c.
        let c = [1.0, -3.0, 0.5];
        let bound = 2.0;
        let z = project_sum_halfspace(&c, bound);
        let dist = |p: &[f64]| p.iter().zip(&c).map(|(a, b)| (a - b).powi(2)).sum::<f64>();
        let base = dist(&z);
        for k in 0..3 {
            for &eps in &[0.01, -0.01] {
                let mut p = z.clone();
                p[k] += eps;
                // Keep feasible by compensating elsewhere upward only.
                if p.iter().sum::<f64>() >= bound {
                    assert!(dist(&p) >= base - 1e-12);
                }
            }
        }
    }

    #[test]
    fn iterative_qp_matches_closed_form() {
        let c = [-5.0, 1.0, 2.0, -0.5];
        let bound = 3.0;
        let exact = project_sum_halfspace(&c, bound);
        let sol = solve_projection_qp(&c, bound, QpConfig::default());
        assert!(sol.converged);
        for (a, b) in sol.z.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-6, "iterative {a} vs exact {b}");
        }
    }

    #[test]
    fn capacity_projection_preserves_ratios() {
        let mut x = vec![2.0, 6.0];
        project_capacity(&mut x, 4.0);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_projection_clips_negatives() {
        let mut x = vec![-1.0, 0.5];
        project_capacity(&mut x, 10.0);
        assert_eq!(x, vec![0.0, 0.5]);
    }

    #[test]
    fn clamp_box_bounds() {
        let mut x = vec![-2.0, 0.5, 7.0];
        clamp_box(&mut x, 0.0, 1.0);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }
}
