//! ADMM bookkeeping for the coordinator/agent decomposition.
//!
//! The paper decomposes `P1` by ADMM (Sec. IV-A): agents maximize the
//! augmented Lagrangian over `x` (Eq. 8), the coordinator updates the
//! auxiliary variables `z` (Eq. 9) and the scaled duals
//! `y ← y + (Σ_t U − z)` (Eq. 10). This module provides the residual
//! tracking and convergence test used by the orchestration loop (Alg. 1
//! line 12), plus the augmented-Lagrangian penalty term shared by the reward
//! function.

use serde::{Deserialize, Serialize};

/// Convergence thresholds for the ADMM iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmmConfig {
    /// The augmented-Lagrangian penalty weight ρ (paper: `ρ = 1.0`).
    pub rho: f64,
    /// Primal-residual tolerance `‖Σ_t U − z‖`.
    pub primal_tol: f64,
    /// Dual-residual tolerance `ρ ‖z_k − z_{k-1}‖`.
    pub dual_tol: f64,
    /// Hard cap on coordination rounds.
    pub max_rounds: usize,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        Self {
            rho: 1.0,
            primal_tol: 1e-3,
            dual_tol: 1e-3,
            max_rounds: 200,
        }
    }
}

/// Residuals of one ADMM round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmmResiduals {
    /// `‖u − z‖₂` where `u = Σ_t U` is the achieved per-(slice, RA)
    /// performance and `z` the coordinator's auxiliary variables.
    pub primal: f64,
    /// `ρ ‖z − z_prev‖₂`.
    pub dual: f64,
}

impl AdmmResiduals {
    /// Computes both residuals for a round.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn compute(achieved: &[f64], z: &[f64], z_prev: &[f64], rho: f64) -> Self {
        assert_eq!(achieved.len(), z.len(), "residual length mismatch");
        assert_eq!(z.len(), z_prev.len(), "residual length mismatch");
        let primal = achieved
            .iter()
            .zip(z)
            .map(|(u, zi)| (u - zi).powi(2))
            .sum::<f64>()
            .sqrt();
        let dual = rho
            * z.iter()
                .zip(z_prev)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt();
        Self { primal, dual }
    }

    /// True when both residuals are under their tolerances.
    pub fn converged(&self, config: &AdmmConfig) -> bool {
        self.primal <= config.primal_tol && self.dual <= config.dual_tol
    }
}

/// Scaled dual update (Eq. 10): `y ← y + (u − z)` element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dual_update(y: &mut [f64], achieved: &[f64], z: &[f64]) {
    assert_eq!(y.len(), achieved.len(), "dual update length mismatch");
    assert_eq!(y.len(), z.len(), "dual update length mismatch");
    for ((yi, &u), &zi) in y.iter_mut().zip(achieved).zip(z) {
        *yi += u - zi;
    }
}

/// The augmented-Lagrangian penalty `−(ρ/2) ‖u − z + y‖²` that appears in
/// both the agent objective `P3` (Eq. 12) and the reward (Eq. 15).
pub fn augmented_penalty(u: f64, z: f64, y: f64, rho: f64) -> f64 {
    -(rho / 2.0) * (u - z + y).powi(2)
}

/// Tracks a rolling window of residuals to detect convergence of the
/// coordinator/agent interaction (Alg. 1, "if convergence").
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTracker {
    history: Vec<AdmmResiduals>,
}

impl ConvergenceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a tracker from a previously recorded residual history —
    /// the restore half of a crash-consistent snapshot, so convergence
    /// checks (`should_stop`) see the same round count and last residuals
    /// a never-interrupted run would.
    pub fn from_history(history: Vec<AdmmResiduals>) -> Self {
        Self { history }
    }

    /// Records a round's residuals.
    pub fn record(&mut self, residuals: AdmmResiduals) {
        self.history.push(residuals);
    }

    /// All recorded residuals, in round order.
    pub fn history(&self) -> &[AdmmResiduals] {
        &self.history
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.history.len()
    }

    /// True once the most recent round satisfies the tolerances or the
    /// round cap has been reached.
    pub fn should_stop(&self, config: &AdmmConfig) -> bool {
        if self.history.len() >= config.max_rounds {
            return true;
        }
        self.history.last().is_some_and(|r| r.converged(config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residuals_zero_at_fixed_point() {
        let u = [1.0, 2.0];
        let r = AdmmResiduals::compute(&u, &u, &u, 1.0);
        assert_eq!(r.primal, 0.0);
        assert_eq!(r.dual, 0.0);
        assert!(r.converged(&AdmmConfig::default()));
    }

    #[test]
    fn dual_update_accumulates_constraint_violation() {
        let mut y = vec![0.0, 0.0];
        dual_update(&mut y, &[3.0, 1.0], &[1.0, 1.0]);
        assert_eq!(y, vec![2.0, 0.0]);
        dual_update(&mut y, &[3.0, 1.0], &[1.0, 1.0]);
        assert_eq!(y, vec![4.0, 0.0]);
    }

    #[test]
    fn penalty_is_zero_when_consensus_holds() {
        assert_eq!(augmented_penalty(5.0, 5.0, 0.0, 1.0), 0.0);
        // With scaled dual y, consensus means u - z + y = 0.
        assert_eq!(augmented_penalty(4.0, 5.0, 1.0, 2.0), 0.0);
    }

    #[test]
    fn penalty_is_negative_and_quadratic() {
        let p1 = augmented_penalty(1.0, 0.0, 0.0, 1.0);
        let p2 = augmented_penalty(2.0, 0.0, 0.0, 1.0);
        assert!(p1 < 0.0);
        assert!((p2 / p1 - 4.0).abs() < 1e-12, "quadratic growth expected");
    }

    #[test]
    fn tracker_stops_on_convergence_or_cap() {
        let config = AdmmConfig {
            max_rounds: 3,
            ..Default::default()
        };
        let mut t = ConvergenceTracker::new();
        t.record(AdmmResiduals {
            primal: 1.0,
            dual: 1.0,
        });
        assert!(!t.should_stop(&config));
        t.record(AdmmResiduals {
            primal: 1e-9,
            dual: 1e-9,
        });
        assert!(t.should_stop(&config));

        let mut t2 = ConvergenceTracker::new();
        for _ in 0..3 {
            t2.record(AdmmResiduals {
                primal: 1.0,
                dual: 1.0,
            });
        }
        assert!(t2.should_stop(&config), "round cap must stop the loop");

        let restored = ConvergenceTracker::from_history(t2.history().to_vec());
        assert_eq!(restored.rounds(), t2.rounds());
        assert_eq!(restored.history(), t2.history());
        assert!(restored.should_stop(&config));
    }

    #[test]
    fn admm_drives_consensus_on_a_toy_problem() {
        // Toy instance of the paper's decomposition with an "agent" that
        // produces u = argmax {-(ρ/2)(u - (z-y))² + u} = (z - y) + 1/ρ,
        // capped at 2.5 per RA (real slice performance is bounded too).
        let config = AdmmConfig {
            rho: 1.0,
            ..Default::default()
        };
        let umin = 4.0;
        let cap = 2.5;
        let mut z = vec![0.0, 0.0];
        let mut y = vec![0.0, 0.0];
        let mut tracker = ConvergenceTracker::new();
        for _ in 0..config.max_rounds {
            let u: Vec<f64> = z
                .iter()
                .zip(&y)
                .map(|(&zi, &yi)| ((zi - yi) + 1.0 / config.rho).min(cap))
                .collect();
            let c: Vec<f64> = u.iter().zip(&y).map(|(&ui, &yi)| ui + yi).collect();
            let z_prev = z.clone();
            z = crate::project_sum_halfspace(&c, umin);
            dual_update(&mut y, &u, &z);
            tracker.record(AdmmResiduals::compute(&u, &z, &z_prev, config.rho));
            if tracker.should_stop(&config) {
                break;
            }
        }
        let last_u: f64 = z.iter().sum();
        assert!(
            last_u >= umin - 1e-6,
            "consensus must satisfy the SLA, got {last_u}"
        );
        assert!(
            tracker.rounds() < config.max_rounds,
            "should converge before the cap"
        );
    }
}
