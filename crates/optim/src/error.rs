//! Error types for the optimization toolbox.

use std::error::Error;
use std::fmt;

/// Errors produced by the solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimError {
    /// Input dimensions were inconsistent.
    DimensionMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        found: usize,
    },
    /// A Cholesky pivot was non-positive.
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
        /// Its value.
        value: f64,
    },
    /// Gaussian elimination found no usable pivot.
    Singular {
        /// Column where elimination failed.
        column: usize,
    },
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} elements, found {found}"
                )
            }
            OptimError::NotPositiveDefinite { pivot, value } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot {pivot} = {value})"
                )
            }
            OptimError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
        }
    }
}

impl Error for OptimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OptimError::DimensionMismatch {
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = OptimError::NotPositiveDefinite {
            pivot: 1,
            value: -0.5,
        };
        assert!(e.to_string().contains("positive definite"));
        let e = OptimError::Singular { column: 2 };
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<OptimError>();
    }
}
