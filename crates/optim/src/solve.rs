//! Dense direct solvers for small symmetric systems.

use crate::OptimError;

/// Solves `A x = b` for a symmetric positive-definite `A` (row-major,
/// `n × n`) via Cholesky factorization.
///
/// # Errors
///
/// Returns [`OptimError::NotPositiveDefinite`] if a non-positive pivot is
/// encountered, and [`OptimError::DimensionMismatch`] if shapes disagree.
pub fn solve_spd(a: &[f64], b: &[f64]) -> Result<Vec<f64>, OptimError> {
    let n = b.len();
    if a.len() != n * n {
        return Err(OptimError::DimensionMismatch {
            expected: n * n,
            found: a.len(),
        });
    }
    // Cholesky: A = L Lᵀ with L lower-triangular.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(OptimError::NotPositiveDefinite {
                        pivot: i,
                        value: sum,
                    });
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward solve L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Backward solve Lᵀ x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Solves a general square system `A x = b` via Gaussian elimination with
/// partial pivoting.
///
/// # Errors
///
/// Returns [`OptimError::Singular`] if no usable pivot exists, and
/// [`OptimError::DimensionMismatch`] if shapes disagree.
pub fn solve_general(a: &[f64], b: &[f64]) -> Result<Vec<f64>, OptimError> {
    let n = b.len();
    if a.len() != n * n {
        return Err(OptimError::DimensionMismatch {
            expected: n * n,
            found: a.len(),
        });
    }
    let mut m = a.to_vec();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut best = col;
        for row in col + 1..n {
            if m[row * n + col].abs() > m[best * n + col].abs() {
                best = row;
            }
        }
        if m[best * n + col].abs() < 1e-12 {
            return Err(OptimError::Singular { column: col });
        }
        if best != col {
            for k in 0..n {
                m.swap(col * n + k, best * n + k);
            }
            x.swap(col, best);
        }
        let pivot = m[col * n + col];
        for row in col + 1..n {
            let f = m[row * n + col] / pivot;
            // lint:allow(float-eq): exact-zero multiplier skip; a tolerance would change the factorization
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= f * m[col * n + k];
            }
            x[row] -= f * x[col];
        }
    }
    for i in (0..n).rev() {
        let mut sum = x[i];
        for k in i + 1..n {
            sum -= m[i * n + k] * x[k];
        }
        x[i] = sum / m[i * n + i];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spd_solve_matches_known_solution() {
        // A = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11]
        let a = [4.0, 1.0, 1.0, 3.0];
        let b = [1.0, 2.0];
        let x = solve_spd(&a, &b).unwrap();
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn spd_rejects_indefinite() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(matches!(
            solve_spd(&a, &[1.0, 1.0]),
            Err(OptimError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn general_solve_with_pivoting() {
        // Requires a row swap: first pivot is 0.
        let a = [0.0, 1.0, 1.0, 0.0];
        let x = solve_general(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn general_detects_singular() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(matches!(
            solve_general(&a, &[1.0, 2.0]),
            Err(OptimError::Singular { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        assert!(matches!(
            solve_spd(&[1.0, 2.0, 3.0], &[1.0, 2.0]),
            Err(OptimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solvers_agree_on_spd_system() {
        let a = [5.0, 1.0, 0.5, 1.0, 4.0, 1.0, 0.5, 1.0, 3.0];
        let b = [1.0, -2.0, 0.5];
        let x1 = solve_spd(&a, &b).unwrap();
        let x2 = solve_general(&a, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
