//! A hand-rolled, token-level Rust lexer — just enough fidelity for the
//! project's invariant rules, with zero dependencies (no `syn`: the build
//! environment has no crates.io access, and the analyzer must never be
//! broken by the code it checks).
//!
//! The lexer produces a flat token stream plus the comment stream (comments
//! carry the `lint:allow` suppressions). It understands everything that
//! would otherwise produce false positives inside non-code text: line and
//! nested block comments, string/char/byte literals with escapes, raw
//! strings, lifetimes vs. char literals, and numeric literal shapes
//! (including `1.`, `1e-9`, `0x1f`, suffixes, and the `0..n` range that
//! must *not* lex as a float).

/// The classification a rule needs to pattern-match a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Instant`, `unwrap`, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1.`, `1e-9`, `0.5f32`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); `text`
    /// holds the *contents* (raw, escapes unprocessed), not the quotes.
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Punctuation. Compound only where a rule needs it as one unit
    /// (`==`, `!=`, `::`); everything else is a single character.
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what `Str` carries).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: usize,
}

/// One comment (line or block) with the line it starts on. Suppressions
/// (`// lint:allow(rule): why`) are parsed out of these downstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
    /// 1-indexed line the comment starts on.
    pub line: usize,
    /// Whether this is a doc comment (`///`, `//!`, `/** */`, `/*! */`).
    /// Doc comments never carry suppressions — text there is rendered
    /// documentation (which may legitimately *mention* the syntax).
    pub doc: bool,
}

/// Lexes `source` into its token and comment streams. Unterminated
/// strings/comments are tolerated (the remainder becomes one token):
/// the analyzer must degrade gracefully on mid-edit files, not abort.
pub fn lex(source: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            toks: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self, off: usize) -> u8 {
        self.src.get(self.pos + off).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        // Saturate at EOF: a truncated escape (`"...\`) double-bumps at
        // the end of input, and `pos` must stay a valid slice bound.
        if self.pos < self.src.len() {
            self.pos += 1;
        }
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        while self.pos < self.src.len() {
            let line = self.line;
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(line),
                b'/' if self.peek(1) == b'*' => self.block_comment(line),
                b'r' if self.peek(1) == b'"' || (self.peek(1) == b'#' && self.raw_str_ahead(1)) => {
                    self.bump();
                    self.raw_string(line);
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump();
                    self.string(line);
                }
                b'b' if self.peek(1) == b'r'
                    && (self.peek(2) == b'"'
                        || (self.peek(2) == b'#' && self.raw_str_ahead(2))) =>
                {
                    self.bump();
                    self.bump();
                    self.raw_string(line);
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump();
                    self.quote(line);
                }
                b'"' => self.string(line),
                b'\'' => self.quote(line),
                b'0'..=b'9' => self.number(line),
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(line),
                b'=' if self.peek(1) == b'=' => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "==".into(), line);
                }
                b'=' if self.peek(1) == b'>' => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "=>".into(), line);
                }
                b'-' if self.peek(1) == b'>' => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "->".into(), line);
                }
                b'!' if self.peek(1) == b'=' => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "!=".into(), line);
                }
                b':' if self.peek(1) == b':' => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "::".into(), line);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, (c as char).to_string(), line);
                }
            }
        }
        (self.toks, self.comments)
    }

    /// Whether `r##...#"` (any number of hashes) starts at `pos + off`.
    fn raw_str_ahead(&self, off: usize) -> bool {
        let mut i = off;
        while self.peek(i) == b'#' {
            i += 1;
        }
        self.peek(i) == b'"'
    }

    fn line_comment(&mut self, line: usize) {
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), b'/' | b'!');
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.comments.push(Comment { text, line, doc });
    }

    fn block_comment(&mut self, line: usize) {
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), b'*' | b'!');
        let start = self.pos;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let end = self.pos.saturating_sub(2).max(start);
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.comments.push(Comment { text, line, doc });
    }

    fn string(&mut self, line: usize) {
        self.bump(); // opening quote
        let start = self.pos;
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self, line: usize) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let start = self.pos;
        let end;
        loop {
            if self.pos >= self.src.len() {
                end = self.pos;
                break;
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    end = self.pos;
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    /// A `'`: either a char literal (`'a'`, `'\n'`) or a lifetime (`'a`).
    fn quote(&mut self, line: usize) {
        self.bump(); // the quote
        if self.peek(0) == b'\\' {
            // Escaped char literal.
            self.bump();
            self.bump();
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump(); // \u{...} payload
            }
            self.bump();
            self.push(TokKind::Char, String::new(), line);
            return;
        }
        let start = self.pos;
        let mut len = 0usize;
        while {
            let c = self.peek(0);
            c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
        } {
            self.bump();
            len += 1;
        }
        if self.peek(0) == b'\'' && len > 0 {
            // 'a' — char literal (multi-byte UTF-8 chars also land here).
            self.bump();
            let text = String::from_utf8_lossy(&self.src[start..self.pos - 1]).into_owned();
            self.push(TokKind::Char, text, line);
        } else if len == 0 && self.peek(0) == b'\'' {
            // ''' — degenerate; treat as a char literal.
            self.bump();
            self.push(TokKind::Char, String::new(), line);
        } else {
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line);
        }
    }

    fn number(&mut self, line: usize) {
        let start = self.pos;
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump();
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
            // A '.' continues the float only when NOT followed by another
            // '.' (range `0..n`) or an identifier start (`1.max(2)`).
            if self.peek(0) == b'.'
                && self.peek(1) != b'.'
                && !(self.peek(1) == b'_' || self.peek(1).is_ascii_alphabetic())
            {
                float = true;
                self.bump();
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
            if matches!(self.peek(0), b'e' | b'E')
                && (self.peek(1).is_ascii_digit()
                    || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
            {
                float = true;
                self.bump();
                if matches!(self.peek(0), b'+' | b'-') {
                    self.bump();
                }
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
            // Type suffix: `1.0f64`, `3usize`.
            if self.peek(0).is_ascii_alphabetic() {
                let sstart = self.pos;
                while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                    self.bump();
                }
                let suffix = &self.src[sstart..self.pos];
                if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
                    float = true;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, text, line);
    }

    fn ident(&mut self, line: usize) {
        let start = self.pos;
        while {
            let c = self.peek(0);
            c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
        } {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn ranges_are_not_floats() {
        let ts = kinds("for i in 0..n { a[1] }");
        assert!(ts.contains(&(TokKind::Int, "0".into())));
        assert!(!ts.iter().any(|(k, _)| *k == TokKind::Float));
    }

    #[test]
    fn float_shapes() {
        for src in ["1.0", "1.", "1e-9", "2.5E3", "3f64", "0.5_f32"] {
            let ts = kinds(src);
            assert_eq!(ts[0].0, TokKind::Float, "{src} should lex as float");
        }
        assert_eq!(kinds("0xff")[0].0, TokKind::Int);
        assert_eq!(kinds("1.max(2)")[0].0, TokKind::Int);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(ts.contains(&(TokKind::Lifetime, "a".into())));
        assert!(ts.contains(&(TokKind::Char, "x".into())));
    }

    #[test]
    fn strings_swallow_operators() {
        let ts = kinds("let s = \"a == b\"; let t = r#\"x != y\"#;");
        assert!(!ts.iter().any(|(k, t)| *k == TokKind::Punct && t == "=="));
        assert!(!ts.iter().any(|(k, t)| *k == TokKind::Punct && t == "!="));
    }

    #[test]
    fn comments_captured_with_lines() {
        let (_, cs) = lex("let a = 1;\n// lint:allow(x): reason\nlet b = 2; /* block */");
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].line, 2);
        assert!(cs[0].text.contains("lint:allow(x)"));
        assert_eq!(cs[1].line, 3);
    }

    #[test]
    fn compound_ops_lexed_as_units() {
        let ts = kinds("a == b; c != d; e::f; g <= h; i => j");
        let puncts: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&"::"));
        // `<=` and `=>` must not fuse into `==`.
        assert_eq!(puncts.iter().filter(|p| **p == "==").count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let (ts, cs) = lex("/* a /* b */ c */ let x = 1;");
        assert_eq!(cs.len(), 1);
        assert!(ts.iter().any(|t| t.text == "x"));
    }
}
