//! # edgeslice-lint
//!
//! A self-contained static analyzer enforcing the EdgeSlice workspace's
//! project invariants — the guarantees the last PRs bought dynamically,
//! held statically:
//!
//! | rule | invariant | scope |
//! |---|---|---|
//! | `determinism` | workers are pure functions of `(master_seed, ra, round)`: no wall clock, OS entropy, or hash-order iteration | `runtime`, `core`, `netsim` (clock module exempt) |
//! | `panic-policy` | the Supervisor catches *worker* panics; coordinator code returns typed errors | `runtime`, `core` |
//! | `hot-path-alloc` | the `*_into`/`*_scratch` training families reuse caller storage | `nn`, `rl` |
//! | `crate-header` | every crate root carries `#![forbid(unsafe_code)]` + `#![deny(missing_docs)]` | all crates |
//! | `float-eq` | no `==`/`!=` against float literals | all crates |
//!
//! On top of the per-file rules, three **cross-file passes** run over a
//! workspace symbol table and approximate call graph (see [`graph`]):
//!
//! | rule | invariant | scope |
//! |---|---|---|
//! | `rng-stream-separation` | every `*_STREAM_TAG`/`DOMAIN_*` constant is unique workspace-wide, and every seed-derivation site folds in exactly one *named* tag (no literal tags, no tag reuse) | `runtime`, `core`, `netsim` |
//! | `frame-protocol` | the `TAG_*` wire constants and `WireMsg` variants stay in sync, and every match over decoded frames names each variant — no wildcard arm silently swallowing a tag | `runtime` |
//! | `transitive-alloc` | a hot-path function (`*_into`, `*_scratch`, `matmul_*`, …) must not *reach* an allocating function at any call depth | `nn`, `rl` |
//!
//! All rules skip `#[cfg(test)]` / `#[test]` regions. A finding can be
//! waived inline with a **justified** suppression on the offending line or
//! the line above it:
//!
//! ```text
//! // lint:allow(float-eq): exact-zero is the disabled-jitter sentinel
//! if self.jitter == 0.0 { ... }
//! ```
//!
//! (`lint:allow-file(rule): why` waives a rule for a whole file.)
//! Suppressions without a justification are themselves an error
//! (`suppression-hygiene`) — the allow is the audit trail. An allow that
//! no longer suppresses anything is *also* an error: stale suppressions
//! are drift, and drift is what the analyzer exists to catch.
//!
//! Run it as `cargo run -p edgeslice-lint -- --workspace` (add
//! `--format json` for machine-readable output, `--jobs N` to bound the
//! parallel scan phase); the process exits non-zero when any unsuppressed
//! error-severity finding remains. The lexer and item parser are
//! hand-rolled (token-level, no `syn`): the build environment is
//! offline, and the analyzer must never be broken by the code it checks.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod driver;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use diag::{Diagnostic, Severity, Suppression};
pub use driver::{
    analyze_source, find_workspace_root, run, run_with_jobs, workspace_files, FileSpec, LintError,
    Report,
};
pub use rules::{cross_registry, registry, CrossRule, Rule, SourceFile};
