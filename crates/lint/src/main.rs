//! `edgeslice-lint` — the CLI over [`edgeslice_lint`].
//!
//! ```text
//! edgeslice-lint --workspace [--format text|json] [--jobs N]
//! edgeslice-lint [--as-crate NAME] FILE...
//! edgeslice-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use edgeslice_lint::{
    cross_registry, find_workspace_root, registry, run_with_jobs, workspace_files, FileSpec,
};

/// Parsed command line.
struct Args {
    workspace: bool,
    json: bool,
    list_rules: bool,
    as_crate: Option<String>,
    jobs: usize,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        list_rules: false,
        as_crate: None,
        jobs: 0,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--list-rules" => args.list_rules = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--as-crate" => {
                args.as_crate = Some(
                    it.next()
                        .ok_or_else(|| "--as-crate expects a crate name".to_string())?,
                );
            }
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--jobs expects a worker count (0 = all cores)".to_string())?;
                args.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a number, got {v:?}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: edgeslice-lint --workspace [--format text|json] [--jobs N] | \
                     [--as-crate NAME] FILE... | --list-rules"
                        .to_string(),
                )
            }
            f if !f.starts_with('-') => args.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !args.workspace && !args.list_rules && args.files.is_empty() {
        return Err("nothing to do: pass --workspace, files, or --list-rules".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("edgeslice-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in registry() {
            println!(
                "{:<24} {:<8} {}",
                rule.name, rule.severity, rule.description
            );
        }
        for rule in cross_registry() {
            println!(
                "{:<24} {:<8} {}",
                rule.name, rule.severity, rule.description
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut specs: Vec<FileSpec> = Vec::new();
    if args.workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("edgeslice-lint: cannot read cwd: {e}");
                return ExitCode::from(2);
            }
        };
        let root = match find_workspace_root(&cwd) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("edgeslice-lint: {e}");
                return ExitCode::from(2);
            }
        };
        match workspace_files(&root) {
            Ok(fs) => specs.extend(fs),
            Err(e) => {
                eprintln!("edgeslice-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for path in &args.files {
        let rel = path.to_string_lossy().replace('\\', "/");
        // Explicit files: the crate identity comes from --as-crate, or
        // from a `crates/<name>/` path component when present.
        let crate_name = args.as_crate.clone().unwrap_or_else(|| {
            rel.split("crates/")
                .nth(1)
                .and_then(|r| r.split('/').next())
                .unwrap_or("repro")
                .to_string()
        });
        specs.push(FileSpec {
            path: path.clone(),
            is_crate_root: rel.ends_with("src/lib.rs"),
            rel_path: rel,
            crate_name,
        });
    }

    let report = match run_with_jobs(&specs, args.jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("edgeslice-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
