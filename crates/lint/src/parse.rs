//! Item-level parse on top of the token stream — just enough structure
//! for the cross-file passes: `const` items, `enum` declarations, `fn`
//! items with their call expressions, and `match` expressions with their
//! arms.
//!
//! This is a *recognizer*, not a grammar: it walks the flat token stream
//! with delimiter matching and a handful of shape rules (documented on
//! each collector). It never fails — unrecognizable constructs are simply
//! not collected, which keeps the analyzer robust against code it has
//! never seen (the same posture as the lexer). The known approximations
//! and their consequences are written up in DESIGN.md §15.

use crate::lexer::{Tok, TokKind};

/// Index of the token matching the `open` delimiter at `i`, honoring
/// nesting. Returns `None` if unbalanced.
pub(crate) fn matching(toks: &[Tok], i: usize, open: &str, close: &str) -> Option<usize> {
    debug_assert_eq!(toks[i].text, open);
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(i) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// A `const NAME: Ty = value;` item.
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// The constant's name.
    pub name: String,
    /// 1-indexed declaration line.
    pub line: usize,
    /// Token index of the name (for test-region queries).
    pub name_tok: usize,
    /// The value when the initializer is a single integer literal
    /// (`0x51C3_0000_0000_0007u64` and friends); `None` for computed
    /// initializers.
    pub value: Option<u128>,
}

/// An `enum NAME { Variant, ... }` declaration.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// 1-indexed declaration line.
    pub line: usize,
    /// Token index of the name.
    pub name_tok: usize,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
}

/// One call expression inside a function body: `name(...)`,
/// `Qualifier::name(...)`, or `.name(...)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name.
    pub name: String,
    /// The `Qualifier` of a `Qualifier::name(...)` path call.
    pub qualifier: Option<String>,
    /// Whether this is a `.name(...)` method call.
    pub is_method: bool,
    /// 1-indexed call line.
    pub line: usize,
    /// Token index of the called name.
    pub name_tok: usize,
}

/// A `fn` item: name, owning `impl` type (if any), body token range, and
/// the call expressions inside the body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-indexed declaration line.
    pub line: usize,
    /// Token index of the name.
    pub name_tok: usize,
    /// The surrounding `impl` block's type name, when the fn is a method
    /// or associated fn (`impl Foo { fn bar ... }` → `Some("Foo")`).
    pub impl_type: Option<String>,
    /// Half-open token range of the body braces (`{` .. `}` inclusive of
    /// both delimiters); `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Calls inside the body, attributed to the *innermost* enclosing fn.
    pub calls: Vec<CallSite>,
}

/// One arm of a `match`: the pattern's token range (guard included).
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// 1-indexed line of the first pattern token.
    pub line: usize,
    /// Half-open token range `[start, end)` of the pattern, up to the
    /// `=>` (guard included when present).
    pub pat: (usize, usize),
}

/// A `match` expression and its arms.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// 1-indexed line of the `match` keyword.
    pub line: usize,
    /// Token index of the `match` keyword.
    pub match_tok: usize,
    /// The arms, in source order.
    pub arms: Vec<MatchArm>,
}

/// Everything the cross-file passes need from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// `const` items.
    pub consts: Vec<ConstItem>,
    /// `enum` declarations.
    pub enums: Vec<EnumItem>,
    /// `fn` items with their calls.
    pub fns: Vec<FnItem>,
    /// `match` expressions with their arms.
    pub matches: Vec<MatchExpr>,
}

/// Keywords that look like `name(` but are never call expressions.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "let", "else", "in", "as", "move",
    "break", "continue", "where", "impl", "pub", "use", "mod", "struct", "enum", "trait", "type",
    "const", "static", "ref", "mut", "dyn", "unsafe", "async", "await", "yield", "box",
];

/// Parses the token stream into items. Infallible by design: see the
/// module docs.
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let impls = collect_impls(toks);
    let mut parsed = ParsedFile {
        consts: collect_consts(toks),
        enums: collect_enums(toks),
        fns: collect_fns(toks, &impls),
        matches: collect_matches(toks),
    };
    attach_calls(toks, &mut parsed.fns);
    parsed
}

/// `impl` blocks as `(open_brace, close_brace, type_name)`. The type name
/// is the last path segment of the implementing type (`impl fmt::Display
/// for FrameError` → `FrameError`; `impl<T> Session<T>` → `Session`).
fn collect_impls(toks: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list right after `impl`.
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut angle = 0isize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // The header runs to the block `{` at delimiter depth 0.
        let header_start = j;
        let mut depth = 0usize;
        let mut open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let Some(close) = matching(toks, open, "{", "}") else {
            i += 1;
            continue;
        };
        // `impl Trait for Type`: the type follows the last `for` that is
        // not an HRTB (`for<'a>`). Then: last ident before the first `<`
        // (generic args), `where`, or the block.
        let header = &toks[header_start..open];
        let mut region_start = 0;
        for (k, t) in header.iter().enumerate() {
            if t.kind == TokKind::Ident
                && t.text == "for"
                && header.get(k + 1).is_none_or(|n| n.text != "<")
            {
                region_start = k + 1;
            }
        }
        let mut name = None;
        for t in &header[region_start..] {
            if t.text == "<" || (t.kind == TokKind::Ident && t.text == "where") {
                break;
            }
            if t.kind == TokKind::Ident && t.text != "mut" && t.text != "dyn" {
                name = Some(t.text.clone());
            }
        }
        if let Some(name) = name {
            out.push((open, close, name));
        }
        i = open + 1;
    }
    out
}

/// `const NAME: Ty = init;` items. Excluded shapes: `const fn`, raw
/// pointers (`*const T`), and generic const params (`<const N: usize>`,
/// recognized by the preceding `<` / `,` / `(`).
fn collect_consts(toks: &[Tok]) -> Vec<ConstItem> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "const") {
            continue;
        }
        if i > 0 && matches!(toks[i - 1].text.as_str(), "<" | "," | "(" | "*") {
            continue;
        }
        let Some(name_t) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if toks.get(i + 2).is_none_or(|t| t.text != ":") {
            continue;
        }
        // Initializer: the tokens between the `=` and the `;`, both at
        // delimiter depth 0.
        let mut depth = 0usize;
        let mut eq = None;
        let mut semi = None;
        for (j, t) in toks.iter().enumerate().skip(i + 3) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "=" if depth == 0 && eq.is_none() => eq = Some(j),
                ";" if depth == 0 => {
                    semi = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let value = match (eq, semi) {
            (Some(e), Some(s)) if s == e + 2 && toks[e + 1].kind == TokKind::Int => {
                parse_int(&toks[e + 1].text)
            }
            _ => None,
        };
        out.push(ConstItem {
            name: name_t.text.clone(),
            line: name_t.line,
            name_tok: i + 1,
            value,
        });
    }
    out
}

/// Parses an integer literal's text (`0x51C3_0000_0000_0007u64`,
/// `1_000`, `0b1010usize`) to its value.
fn parse_int(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match clean.as_bytes() {
        [b'0', b'x' | b'X', ..] => (16, &clean[2..]),
        [b'0', b'o' | b'O', ..] => (8, &clean[2..]),
        [b'0', b'b' | b'B', ..] => (2, &clean[2..]),
        _ => (10, clean.as_str()),
    };
    // Strip a type suffix (`u64`, `usize`, `i32`, ...).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u128::from_str_radix(&digits[..end], radix).ok()
}

/// `enum Name { Variant, Variant(..), Variant { .. } }` declarations.
fn collect_enums(toks: &[Tok]) -> Vec<EnumItem> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "enum") {
            continue;
        }
        let Some(name_t) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // The body `{` at delimiter depth 0 (skipping generics/where).
        let mut open = None;
        let mut depth = 0usize;
        for (j, t) in toks.iter().enumerate().skip(i + 2) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = matching(toks, open, "{", "}") else {
            continue;
        };
        let mut variants = Vec::new();
        let mut k = open + 1;
        while k < close {
            // Skip variant attributes.
            if toks[k].text == "#" && toks.get(k + 1).is_some_and(|t| t.text == "[") {
                match matching(toks, k + 1, "[", "]") {
                    Some(c) => {
                        k = c + 1;
                        continue;
                    }
                    None => break,
                }
            }
            if toks[k].kind == TokKind::Ident {
                variants.push(toks[k].text.clone());
                // Skip the payload / discriminant to the `,` at variant
                // depth.
                let mut depth = 0usize;
                k += 1;
                while k < close {
                    match toks[k].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
            k += 1;
        }
        out.push(EnumItem {
            name: name_t.text.clone(),
            line: name_t.line,
            name_tok: i + 1,
            variants,
        });
    }
    out
}

/// `fn name(...) { ... }` items (free fns, methods, nested fns). The body
/// is the first `{` after the signature at paren/bracket depth 0; a `;`
/// first means a bodyless trait declaration.
fn collect_fns(toks: &[Tok], impls: &[(usize, usize, String)]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            continue;
        }
        let Some(name_t) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue; // `fn(..)` pointer type
        };
        let mut depth = 0usize;
        let mut body = None;
        let mut j = i + 2;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    body = matching(toks, j, "{", "}").map(|c| (j, c));
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let impl_type = impls
            .iter()
            .filter(|(o, c, _)| (*o..*c).contains(&(i + 1)))
            .min_by_key(|(o, c, _)| c - o)
            .map(|(_, _, n)| n.clone());
        out.push(FnItem {
            name: name_t.text.clone(),
            line: name_t.line,
            name_tok: i + 1,
            impl_type,
            body,
            calls: Vec::new(),
        });
    }
    out
}

/// `match scrutinee { pat => body, ... }` expressions. Arm patterns run
/// to the `=>` at delimiter depth 0; arm bodies are either a brace block
/// or everything up to the `,` at depth 0.
fn collect_matches(toks: &[Tok]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "match") {
            continue;
        }
        // The block `{` at depth 0 after the scrutinee.
        let mut depth = 0usize;
        let mut open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 1) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = matching(toks, open, "{", "}") else {
            continue;
        };
        let mut arms = Vec::new();
        let mut k = open + 1;
        while k < close {
            // Skip arm attributes.
            if toks[k].text == "#" && toks.get(k + 1).is_some_and(|t| t.text == "[") {
                match matching(toks, k + 1, "[", "]") {
                    Some(c) => {
                        k = c + 1;
                        continue;
                    }
                    None => break,
                }
            }
            let pat_start = k;
            let line = toks[k].line;
            // Pattern: to the `=>` at delimiter depth 0.
            let mut depth = 0usize;
            let mut arrow = None;
            while k < close {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    "=>" if depth == 0 => {
                        arrow = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(arrow) = arrow else { break };
            arms.push(MatchArm {
                line,
                pat: (pat_start, arrow),
            });
            // Body: brace block, or to the `,` at depth 0.
            k = arrow + 1;
            if toks.get(k).is_some_and(|t| t.text == "{") {
                match matching(toks, k, "{", "}") {
                    Some(c) => k = c + 1,
                    None => break,
                }
                if toks.get(k).is_some_and(|t| t.text == ",") {
                    k += 1;
                }
            } else {
                let mut depth = 0usize;
                while k < close {
                    match toks[k].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "," if depth == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        out.push(MatchExpr {
            line: toks[i].line,
            match_tok: i,
            arms,
        });
    }
    out
}

/// Finds every call expression (`name(` with a non-keyword name that is
/// not a declaration or macro) and attributes it to the innermost
/// enclosing fn body.
fn attach_calls(toks: &[Tok], fns: &mut [FnItem]) {
    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokKind::Ident
            || toks.get(k + 1).is_none_or(|n| n.text != "(")
            || NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            continue;
        }
        if k > 0 && toks[k - 1].text == "fn" {
            continue; // the declaration itself
        }
        let qualifier = if k >= 2 && toks[k - 1].text == "::" && toks[k - 2].kind == TokKind::Ident
        {
            Some(toks[k - 2].text.clone())
        } else {
            None
        };
        let is_method = k > 0 && toks[k - 1].text == ".";
        let Some(owner) = fns
            .iter_mut()
            .filter(|f| f.body.is_some_and(|(o, c)| (o..=c).contains(&k)))
            .min_by_key(|f| {
                let (o, c) = f.body.unwrap_or((0, usize::MAX));
                c - o
            })
        else {
            continue; // top-level const/static initializer etc.
        };
        owner.calls.push(CallSite {
            name: t.text.clone(),
            qualifier,
            is_method,
            line: t.line,
            name_tok: k,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src).0)
    }

    #[test]
    fn const_items_with_int_values() {
        let p = parsed(
            "const A: u64 = 0x51C3_0000_0000_0007;\n\
             pub const B: usize = 1_000usize;\n\
             const C: u64 = 1 << 3;\n\
             fn f<const N: usize>(x: *const u8) {}\n\
             const fn g() {}",
        );
        let names: Vec<&str> = p.consts.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert_eq!(p.consts[0].value, Some(0x51C3_0000_0000_0007));
        assert_eq!(p.consts[1].value, Some(1_000));
        assert_eq!(p.consts[2].value, None, "computed initializer");
    }

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let p = parsed(
            "pub enum WireMsg {\n\
               Hello { version: u32, ra: u64 },\n\
               #[allow(dead_code)]\n\
               Round(RoundInfo),\n\
               Down { ra: u64, round: u64, cause: String },\n\
             }",
        );
        assert_eq!(p.enums.len(), 1);
        assert_eq!(p.enums[0].name, "WireMsg");
        assert_eq!(p.enums[0].variants, ["Hello", "Round", "Down"]);
    }

    #[test]
    fn fn_items_capture_impl_type_and_body() {
        let p = parsed(
            "fn free() {}\n\
             impl<T: Clone> Session<T> {\n\
               fn method(&self) { helper(); }\n\
             }\n\
             impl fmt::Display for FrameError {\n\
               fn fmt(&self) {}\n\
             }\n\
             trait X { fn bodyless(); }",
        );
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).expect("fn parsed");
        assert_eq!(by_name("free").impl_type, None);
        assert_eq!(by_name("method").impl_type.as_deref(), Some("Session"));
        assert_eq!(by_name("fmt").impl_type.as_deref(), Some("FrameError"));
        assert!(by_name("bodyless").body.is_none());
        assert_eq!(by_name("method").calls.len(), 1);
        assert_eq!(by_name("method").calls[0].name, "helper");
    }

    #[test]
    fn calls_distinguish_methods_paths_and_macros() {
        let p = parsed(
            "fn f(v: &[u8]) {\n\
               free_call();\n\
               v.method_call();\n\
               Qual::assoc_call();\n\
               not_a_macro!(arg);\n\
               if cond(x) { vec![1] }\n\
             }",
        );
        let calls = &p.fns[0].calls;
        let find = |n: &str| calls.iter().find(|c| c.name == n);
        assert!(find("free_call").is_some_and(|c| !c.is_method && c.qualifier.is_none()));
        assert!(find("method_call").is_some_and(|c| c.is_method));
        assert!(
            find("assoc_call").is_some_and(|c| c.qualifier.as_deref() == Some("Qual")),
            "{calls:?}"
        );
        assert!(find("not_a_macro").is_none(), "macros are not calls");
        assert!(find("if").is_none(), "keywords are not calls");
        assert!(find("cond").is_some());
    }

    #[test]
    fn nested_fn_calls_attribute_to_innermost() {
        let p = parsed("fn outer() {\n  fn inner() { deep(); }\n  shallow();\n}");
        let outer = p.fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = p.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(
            outer.calls.iter().map(|c| &c.name).collect::<Vec<_>>(),
            ["shallow"]
        );
        assert_eq!(
            inner.calls.iter().map(|c| &c.name).collect::<Vec<_>>(),
            ["deep"]
        );
    }

    #[test]
    fn match_arms_with_guards_blocks_and_nesting() {
        let p = parsed(
            "fn f(m: M) {\n\
               match m {\n\
                 M::A { x } if x > 0 => handle(x),\n\
                 M::B(inner) => match inner { 0 => {} _ => other() },\n\
                 _ => {\n   fallback();\n }\n\
               }\n\
             }",
        );
        assert_eq!(p.matches.len(), 2, "outer and nested");
        let outer = &p.matches[0];
        assert_eq!(outer.arms.len(), 3, "{outer:?}");
        let nested = &p.matches[1];
        assert_eq!(nested.arms.len(), 2, "{nested:?}");
    }

    #[test]
    fn range_patterns_and_or_patterns_parse() {
        let p = parsed("fn f(x: u8) { match x { 0..=9 | 20 => a(), _ => b(), } }");
        assert_eq!(p.matches[0].arms.len(), 2);
    }
}
