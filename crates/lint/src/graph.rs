//! The workspace graph: a symbol table and approximate call graph over
//! every analyzed file, plus the three cross-file passes that consume
//! them — `rng-stream-separation`, `frame-protocol`, and
//! `transitive-alloc`.
//!
//! The call graph is *name-based* (no type inference): free and
//! `Qualifier::`-path calls resolve same-file → same-crate → workspace,
//! path calls filter by the callee's `impl` type, and method calls
//! conservatively follow every same-crate impl fn with that name. The
//! soundness caveats of this approximation are documented executable
//! facts in the unit tests below and in DESIGN.md §15.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};
use crate::parse::{matching, CallSite, FnItem, ParsedFile};
use crate::rules::{
    alloc_construct, is_hot_path_fn_name, SourceFile, DETERMINISM_CRATES, FRAME_PROTOCOL,
    HOT_PATH_CRATES, RNG_STREAM_SEPARATION, TRANSITIVE_ALLOC,
};

/// One analyzed file, as the cross-file passes see it.
pub struct Unit<'a> {
    /// The pre-lexed file (crate identity, tokens, test-region map).
    pub file: &'a SourceFile,
    /// The item-level parse of the same tokens.
    pub parsed: &'a ParsedFile,
}

fn diag(unit: &Unit<'_>, rule: &'static str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        file: unit.file.rel_path.clone(),
        line,
        message,
    }
}

/// Whether a constant name is an RNG stream tag by the workspace's naming
/// convention: `*_STREAM_TAG` (XOR-folded whole-stream tags) or
/// `DOMAIN_*` (`derive_stream_seed` domain separators).
fn is_stream_tag_name(name: &str) -> bool {
    name.ends_with("_STREAM_TAG") || (name.starts_with("DOMAIN_") && name.len() > "DOMAIN_".len())
}

/// The argument token range `(open, close)` of the call at `name_tok`
/// (exclusive of the parens).
fn call_args<'t>(toks: &'t [Tok], call: &CallSite) -> &'t [Tok] {
    let open = call.name_tok + 1;
    match matching(toks, open, "(", ")") {
        Some(close) => &toks[open + 1..close],
        None => &[],
    }
}

/// Cross-file pass (a): RNG stream separation.
///
/// Byte-identical replay rests on every RNG stream being derived from a
/// distinct, *named* tag: (1) all `*_STREAM_TAG`/`DOMAIN_*` constants
/// must hold unique values workspace-wide; (2) every `seed_from_u64` /
/// `derive_stream_seed` site in the determinism crates must reference a
/// named tag constant — XOR-folding ad-hoc literals collides silently;
/// (3) a `*_STREAM_TAG` XORed into more than one stream aliases those
/// streams (tag families use `derive_stream_seed` with an index instead).
pub fn rng_stream_separation(units: &[Unit<'_>], out: &mut Vec<Diagnostic>) {
    // (1) Tag uniqueness, workspace-wide.
    let mut by_value: BTreeMap<u128, (usize, String, usize)> = BTreeMap::new();
    for (ui, u) in units.iter().enumerate() {
        for c in &u.parsed.consts {
            if !is_stream_tag_name(&c.name) || u.file.in_test(c.name_tok) {
                continue;
            }
            let Some(v) = c.value else { continue };
            match by_value.get(&v) {
                Some((fi, first_name, first_line)) => out.push(diag(
                    u,
                    RNG_STREAM_SEPARATION,
                    c.line,
                    format!(
                        "stream tag `{}` duplicates the value {v:#x} of `{first_name}` \
                         ({}:{first_line}) — RNG stream tags must be unique workspace-wide \
                         or the streams they separate collide",
                        c.name, units[*fi].file.rel_path
                    ),
                )),
                None => {
                    by_value.insert(v, (ui, c.name.clone(), c.line));
                }
            }
        }
    }

    // (2) + (3) Derivation sites in the determinism crates.
    let mut xor_sites: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    for (ui, u) in units.iter().enumerate() {
        if !DETERMINISM_CRATES.contains(&u.file.crate_name.as_str()) {
            continue;
        }
        for f in &u.parsed.fns {
            for call in &f.calls {
                if call.name != "seed_from_u64" && call.name != "derive_stream_seed" {
                    continue;
                }
                if u.file.in_test(call.name_tok) {
                    continue;
                }
                let args = call_args(&u.file.toks, call);
                let has_derive = call.name == "seed_from_u64"
                    && args
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text == "derive_stream_seed");
                let tags: Vec<&str> = args
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident && is_stream_tag_name(&t.text))
                    .map(|t| t.text.as_str())
                    .collect();
                let has_xor = args.iter().any(|t| t.text == "^");
                let has_int = args.iter().any(|t| t.kind == TokKind::Int);
                if has_derive {
                    continue; // the inner derive_stream_seed call is checked itself
                }
                if !tags.is_empty() {
                    if call.name == "seed_from_u64" {
                        for tag in tags {
                            xor_sites
                                .entry(tag.to_string())
                                .or_default()
                                .push((ui, call.line));
                        }
                    }
                    continue;
                }
                if has_xor {
                    out.push(diag(
                        u,
                        RNG_STREAM_SEPARATION,
                        call.line,
                        format!(
                            "`{}` folds stream material with `^` but no named \
                             `*_STREAM_TAG`/`DOMAIN_*` constant — ad-hoc tags collide \
                             silently; declare a named tag constant",
                            call.name
                        ),
                    ));
                } else if has_int {
                    out.push(diag(
                        u,
                        RNG_STREAM_SEPARATION,
                        call.line,
                        format!(
                            "`{}` uses literal seed material — derive the stream from a \
                             named `*_STREAM_TAG`/`DOMAIN_*` constant (or pass a \
                             pre-derived stream seed)",
                            call.name
                        ),
                    ));
                }
                // A bare pre-derived variable is fine: the deriving site
                // is where the tag discipline is enforced.
            }
        }
    }
    for (tag, sites) in &xor_sites {
        if sites.len() < 2 {
            continue;
        }
        let (fi, first_line) = sites[0];
        for &(ui, line) in &sites[1..] {
            out.push(diag(
                &units[ui],
                RNG_STREAM_SEPARATION,
                line,
                format!(
                    "stream tag `{tag}` is already XORed into a stream at {}:{first_line} — \
                     reusing a tag aliases the two streams; derive per-entity streams with \
                     `derive_stream_seed(master, DOMAIN, index)` instead",
                    units[fi].file.rel_path
                ),
            ));
        }
    }
}

/// Converts a frame tag constant name to its expected enum variant:
/// `TAG_REGISTER_ACK` → `RegisterAck`.
fn tag_to_variant(tag: &str) -> String {
    tag.trim_start_matches("TAG_")
        .split('_')
        .map(|part| {
            let mut cs = part.chars();
            match cs.next() {
                Some(first) => {
                    first.to_uppercase().collect::<String>() + &cs.as_str().to_lowercase()
                }
                None => String::new(),
            }
        })
        .collect()
}

/// The variant names a pattern handles: every ident following
/// `WireMsg ::`.
fn handled_variants(pat: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for k in 0..pat.len() {
        if pat[k].kind == TokKind::Ident
            && pat[k].text == "WireMsg"
            && pat.get(k + 1).is_some_and(|t| t.text == "::")
        {
            if let Some(v) = pat.get(k + 2).filter(|t| t.kind == TokKind::Ident) {
                out.push(v.text.clone());
            }
        }
    }
    out
}

/// Whether a pattern (guard stripped) is a silent catch-all: `_`, a bare
/// lowercase binding, or either wrapped in one `Ok(..)` / `Some(..)`.
fn is_silent_wildcard(pat: &[Tok]) -> bool {
    let guard_end = pat
        .iter()
        .position(|t| t.kind == TokKind::Ident && t.text == "if")
        .unwrap_or(pat.len());
    let pat = &pat[..guard_end];
    let is_catchall = |t: &Tok| {
        t.text == "_"
            || (t.kind == TokKind::Ident && t.text.starts_with(|c: char| c.is_lowercase()))
    };
    match pat {
        [t] => is_catchall(t),
        [w, open, t, close] if open.text == "(" && close.text == ")" => {
            (w.text == "Ok" || w.text == "Some") && is_catchall(t)
        }
        _ => false,
    }
}

/// Cross-file pass (b): frame-protocol exhaustiveness.
///
/// The wire protocol stays in lockstep end to end: (1) the `TAG_*`
/// constants and the `WireMsg` variants in the frame module must map
/// 1:1; (2) every non-test `match` whose arms pattern-match `WireMsg`
/// must handle every variant explicitly, with no wildcard arm silently
/// swallowing a future frame; (3) every `match` over raw tag bytes must
/// name every `TAG_*` constant (a binding arm for the typed unknown-tag
/// error is fine there).
pub fn frame_protocol(units: &[Unit<'_>], out: &mut Vec<Diagnostic>) {
    // Protocol declarations: files declaring `enum WireMsg`, with their
    // co-resident TAG_* constants.
    let mut variants: BTreeSet<String> = BTreeSet::new();
    let mut tags: BTreeSet<String> = BTreeSet::new();
    for u in units {
        let Some(e) = u
            .parsed
            .enums
            .iter()
            .find(|e| e.name == "WireMsg" && !u.file.in_test(e.name_tok))
        else {
            continue;
        };
        variants.extend(e.variants.iter().cloned());
        let file_tags: Vec<_> = u
            .parsed
            .consts
            .iter()
            .filter(|c| c.name.starts_with("TAG_") && !u.file.in_test(c.name_tok))
            .collect();
        // (1) Codec/enum sync, only where both sides live together.
        if !file_tags.is_empty() {
            for c in &file_tags {
                let want = tag_to_variant(&c.name);
                if !e.variants.contains(&want) {
                    out.push(diag(
                        u,
                        FRAME_PROTOCOL,
                        c.line,
                        format!(
                            "frame tag `{}` has no matching `WireMsg` variant `{want}` — \
                             the codec and the enum have drifted",
                            c.name
                        ),
                    ));
                }
            }
            for v in &e.variants {
                if !file_tags.iter().any(|c| tag_to_variant(&c.name) == *v) {
                    out.push(diag(
                        u,
                        FRAME_PROTOCOL,
                        e.line,
                        format!(
                            "`WireMsg::{v}` has no `TAG_*` constant — the codec cannot \
                             encode it; add the tag next to the other frame tags"
                        ),
                    ));
                }
            }
            tags.extend(file_tags.iter().map(|c| c.name.clone()));
        }
    }

    // (2) + (3) Frame matches everywhere.
    for u in units {
        for m in &u.parsed.matches {
            if u.file.in_test(m.match_tok) {
                continue;
            }
            let pats: Vec<&[Tok]> = m
                .arms
                .iter()
                .map(|a| &u.file.toks[a.pat.0..a.pat.1])
                .collect();
            let is_wire = pats.iter().any(|p| {
                p.iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "WireMsg")
            });
            if is_wire {
                let mut wildcarded = false;
                for (arm, pat) in m.arms.iter().zip(&pats) {
                    if is_silent_wildcard(pat) {
                        wildcarded = true;
                        out.push(diag(
                            u,
                            FRAME_PROTOCOL,
                            arm.line,
                            "wildcard arm in a frame match swallows future frame tags \
                             silently — list every `WireMsg` variant explicitly so a \
                             protocol change is a compile/lint error here"
                                .to_string(),
                        ));
                    }
                }
                if !wildcarded && !variants.is_empty() {
                    let handled: BTreeSet<String> =
                        pats.iter().flat_map(|p| handled_variants(p)).collect();
                    let missing: Vec<&str> = variants
                        .iter()
                        .filter(|v| !handled.contains(*v))
                        .map(String::as_str)
                        .collect();
                    if !missing.is_empty() {
                        out.push(diag(
                            u,
                            FRAME_PROTOCOL,
                            m.line,
                            format!(
                                "frame match does not handle `WireMsg` variant(s) {} — \
                                 every frame tag must be handled (or explicitly listed \
                                 as noise) wherever frames are matched",
                                missing.join(", ")
                            ),
                        ));
                    }
                }
            }
            // Tag-byte matches (the decoder): all TAG_* named.
            if !tags.is_empty() {
                let named: BTreeSet<String> = pats
                    .iter()
                    .flat_map(|p| p.iter())
                    .filter(|t| t.kind == TokKind::Ident && tags.contains(&t.text))
                    .map(|t| t.text.clone())
                    .collect();
                if !named.is_empty() {
                    let missing: Vec<&str> = tags
                        .iter()
                        .filter(|t| !named.contains(*t))
                        .map(String::as_str)
                        .collect();
                    if !missing.is_empty() {
                        out.push(diag(
                            u,
                            FRAME_PROTOCOL,
                            m.line,
                            format!(
                                "frame-tag match does not handle {} — the decoder must \
                                 name every tag (unknown tags go through the typed \
                                 unknown-tag arm)",
                                missing.join(", ")
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// A flattened fn reference: `(unit index, fn index)`.
type FnRef = (usize, usize);

/// Method names that collide with ubiquitous `std` iterator / `Option` /
/// `Result` adapters. Without receiver types, `xs.iter().map(..)` is
/// indistinguishable from a workspace method named `map` — and the std
/// adapter is overwhelmingly what such a call is, so method-call
/// resolution skips these names rather than chase false edges. This is
/// the documented precision/soundness trade of the approximate call
/// graph (DESIGN.md §15): a workspace method that *shadows* one of these
/// names is invisible to the transitive pass (the local rule still sees
/// its body).
const STD_ADAPTER_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "by_ref",
    "chain",
    "cloned",
    "collect",
    "copied",
    "count",
    "enumerate",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "fold",
    "for_each",
    "into_iter",
    "iter",
    "iter_mut",
    "last",
    "map",
    "map_err",
    "map_or",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "nth",
    "ok_or",
    "ok_or_else",
    "or_else",
    "peekable",
    "position",
    "product",
    "rev",
    "scan",
    "skip",
    "skip_while",
    "step_by",
    "sum",
    "take",
    "take_while",
    "then",
    "then_with",
    "unwrap_or",
    "unwrap_or_else",
    "zip",
];

/// Cross-file pass (c): transitive hot-path allocation.
///
/// PR 5's local rule catches an allocation *inside* a hot fn; this pass
/// propagates the ban through the call graph so a `*_into`/`*_scratch`/
/// kernel-family fn also fails when it *reaches* an allocating fn at any
/// call depth. Depth 0 (a local allocation) is left to the local rule so
/// each defect is reported exactly once.
pub fn transitive_alloc(units: &[Unit<'_>], out: &mut Vec<Diagnostic>) {
    // Symbol table over all non-test fns.
    let mut fns: Vec<FnRef> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (ui, u) in units.iter().enumerate() {
        for (fi, f) in u.parsed.fns.iter().enumerate() {
            if u.file.in_test(f.name_tok) {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push(fns.len());
            fns.push((ui, fi));
        }
    }
    let item = |id: usize| -> (&Unit<'_>, &FnItem) {
        let (ui, fi) = fns[id];
        (&units[ui], &units[ui].parsed.fns[fi])
    };
    // Per-fn local allocation scan (first banned construct in the body).
    let allocs: Vec<Option<(usize, &'static str)>> = (0..fns.len())
        .map(|id| {
            let (u, f) = item(id);
            let (open, close) = f.body?;
            (open..=close).find_map(|k| {
                alloc_construct(&u.file.toks, k).map(|what| (u.file.toks[k].line, what))
            })
        })
        .collect();

    let resolve = |call: &CallSite, caller: usize| -> Vec<usize> {
        let Some(cands) = by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        let (cu, cf) = item(caller);
        if call.is_method {
            // Method calls: every same-crate impl fn with that name
            // (conservative — no receiver types). Names shared with the
            // std adapters are skipped entirely (see STD_ADAPTER_METHODS).
            if STD_ADAPTER_METHODS.contains(&call.name.as_str()) {
                return Vec::new();
            }
            return cands
                .iter()
                .copied()
                .filter(|&id| {
                    let (u, f) = item(id);
                    f.impl_type.is_some() && u.file.crate_name == cu.file.crate_name
                })
                .collect();
        }
        if let Some(q) = &call.qualifier {
            let q = if q == "Self" {
                cf.impl_type.clone().unwrap_or_else(|| q.clone())
            } else {
                q.clone()
            };
            // `Type::assoc()` filters by impl type; `module::free()` (no
            // impl match anywhere) falls back to free fns.
            let typed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| item(id).1.impl_type.as_deref() == Some(q.as_str()))
                .collect();
            if !typed.is_empty() {
                return typed;
            }
            return cands
                .iter()
                .copied()
                .filter(|&id| item(id).1.impl_type.is_none())
                .collect();
        }
        // Free calls: the innermost visible `fn` wins — same file, then
        // same crate, then anywhere.
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| fns[id].0 == fns[caller].0 && item(id).1.impl_type.is_none())
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| {
                item(id).0.file.crate_name == cu.file.crate_name && item(id).1.impl_type.is_none()
            })
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        cands
            .iter()
            .copied()
            .filter(|&id| item(id).1.impl_type.is_none())
            .collect()
    };

    // BFS from every hot-path fn; report the first (shortest) allocating
    // path per hot fn.
    for start in 0..fns.len() {
        let (u, f) = item(start);
        if !HOT_PATH_CRATES.contains(&u.file.crate_name.as_str())
            || !is_hot_path_fn_name(&f.name)
            || f.body.is_none()
        {
            continue;
        }
        let mut visited = vec![false; fns.len()];
        visited[start] = true;
        let mut queue: VecDeque<(usize, Vec<usize>)> = VecDeque::new();
        for call in &f.calls {
            for id in resolve(call, start) {
                if !visited[id] {
                    visited[id] = true;
                    queue.push_back((id, vec![id]));
                }
            }
        }
        'bfs: while let Some((id, path)) = queue.pop_front() {
            if let Some((line, what)) = allocs[id] {
                let (gu, gf) = item(id);
                let chain: Vec<String> = path
                    .iter()
                    .map(|&p| format!("`{}`", item(p).1.name))
                    .collect();
                out.push(diag(
                    u,
                    TRANSITIVE_ALLOC,
                    f.line,
                    format!(
                        "hot-path fn `{}` reaches an allocation through {}: `{}` does \
                         {what} at {}:{line} — the `*_into`/`*_scratch`/kernel families \
                         must stay allocation-free at every call depth",
                        f.name,
                        chain.join(" → "),
                        gf.name,
                        gu.file.rel_path
                    ),
                ));
                break 'bfs;
            }
            if path.len() >= 32 {
                continue; // depth cap: pathological graphs stay bounded
            }
            let (_, g) = item(id);
            for call in &g.calls {
                for next in resolve(call, id) {
                    if !visited[next] {
                        visited[next] = true;
                        let mut p = path.clone();
                        p.push(next);
                        queue.push_back((next, p));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Builds `SourceFile` + `ParsedFile` pairs the tests can hold.
    fn build(files: &[(&str, &str, &str)]) -> Vec<(SourceFile, ParsedFile)> {
        files
            .iter()
            .map(|(crate_name, rel, src)| {
                let file = SourceFile::new(*crate_name, *rel, false, lex(src).0);
                let parsed = crate::parse::parse(&file.toks);
                (file, parsed)
            })
            .collect()
    }

    fn run_pass(
        files: &[(&str, &str, &str)],
        pass: fn(&[Unit<'_>], &mut Vec<Diagnostic>),
    ) -> Vec<Diagnostic> {
        let built = build(files);
        let units: Vec<Unit<'_>> = built
            .iter()
            .map(|(file, parsed)| Unit { file, parsed })
            .collect();
        let mut out = Vec::new();
        pass(&units, &mut out);
        out
    }

    #[test]
    fn duplicate_tags_across_files_collide() {
        let out = run_pass(
            &[
                (
                    "core",
                    "crates/core/src/a.rs",
                    "const A_STREAM_TAG: u64 = 0x10;",
                ),
                (
                    "runtime",
                    "crates/runtime/src/b.rs",
                    "const B_STREAM_TAG: u64 = 0x10;",
                ),
            ],
            rng_stream_separation,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/runtime/src/b.rs");
        assert!(
            out[0].message.contains("A_STREAM_TAG"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn xor_reuse_of_one_tag_is_flagged() {
        let src = "const T_STREAM_TAG: u64 = 0x10;\n\
                   fn a(seed: u64) { let r = StdRng::seed_from_u64(seed ^ T_STREAM_TAG); }\n\
                   fn b(seed: u64) { let r = StdRng::seed_from_u64(seed ^ T_STREAM_TAG); }";
        let out = run_pass(
            &[("core", "crates/core/src/a.rs", src)],
            rng_stream_separation,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("already XORed"),
            "{}",
            out[0].message
        );
    }

    // Call-graph resolution pins (the satellite's "documented executable
    // facts"): shadowed names, methods vs free fns, cross-crate calls.

    #[test]
    fn shadowed_free_fn_resolves_same_file_first() {
        // Both crates define `helper`; the hot fn's own file wins, and
        // that one is clean — the allocating foreign `helper` is NOT
        // followed.
        let out = run_pass(
            &[
                (
                    "nn",
                    "crates/nn/src/a.rs",
                    "fn helper(out: &mut [f64]) { out.fill(0.0); }\n\
                     fn fill_into(out: &mut [f64]) { helper(out); }",
                ),
                (
                    "core",
                    "crates/core/src/b.rs",
                    "fn helper() -> Vec<f64> { Vec::new() }",
                ),
            ],
            transitive_alloc,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn same_crate_free_fn_beats_cross_crate() {
        // With no same-file candidate, same-crate resolution wins over a
        // clean cross-crate fn of the same name.
        let out = run_pass(
            &[
                (
                    "nn",
                    "crates/nn/src/a.rs",
                    "fn fill_into(out: &mut [f64]) { helper(out); }",
                ),
                (
                    "nn",
                    "crates/nn/src/b.rs",
                    "fn helper(out: &mut [f64]) -> Vec<f64> { Vec::new() }",
                ),
                (
                    "core",
                    "crates/core/src/c.rs",
                    "fn helper(out: &mut [f64]) {}",
                ),
            ],
            transitive_alloc,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("fill_into"));
    }

    #[test]
    fn method_calls_follow_same_crate_impls_only() {
        // `.fetch()` resolves to every same-crate impl fn named `fetch`
        // (conservative: no receiver types) — but never to another
        // crate's impl.
        let dirty = (
            "nn",
            "crates/nn/src/a.rs",
            "struct S;\nimpl S { fn fetch(&self) -> Vec<u8> { Vec::new() } }\n\
             fn drain_into(s: &S) { s.fetch(); }",
        );
        let out = run_pass(&[dirty], transitive_alloc);
        assert_eq!(out.len(), 1, "same-crate impl is followed: {out:?}");

        let cross = [
            (
                "nn",
                "crates/nn/src/a.rs",
                "fn drain_into(s: &S) { s.fetch(); }",
            ),
            (
                "core",
                "crates/core/src/b.rs",
                "struct S;\nimpl S { fn fetch(&self) -> Vec<u8> { Vec::new() } }",
            ),
        ];
        let out = run_pass(&cross, transitive_alloc);
        assert!(out.is_empty(), "cross-crate impl is NOT followed: {out:?}");
    }

    #[test]
    fn qualified_calls_filter_by_impl_type() {
        // `Other::make()` must not resolve to `Scratch::make` — and
        // `Vec::new()` inside a *callee* is still reached transitively.
        let out = run_pass(
            &[(
                "nn",
                "crates/nn/src/a.rs",
                "struct Scratch;\n\
                 impl Scratch { fn make() -> Vec<f64> { Vec::new() } }\n\
                 struct Other;\n\
                 impl Other { fn make() -> usize { 0 } }\n\
                 fn build_scratch() { let s = Other::make(); }",
            )],
            transitive_alloc,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cross_crate_free_call_is_followed() {
        // rl hot fn → nn free fn that allocates, two crates apart.
        let out = run_pass(
            &[
                (
                    "rl",
                    "crates/rl/src/a.rs",
                    "fn sample_into(out: &mut [f64]) { stage(out); }",
                ),
                (
                    "nn",
                    "crates/nn/src/b.rs",
                    "fn stage(out: &mut [f64]) { scratch(out); }\n\
                     fn scratch(out: &mut [f64]) { let v = vec![0.0]; }",
                ),
            ],
            transitive_alloc,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("`stage` → `scratch`"),
            "the two-hop path is reported: {}",
            out[0].message
        );
    }

    #[test]
    fn recursion_terminates() {
        let out = run_pass(
            &[(
                "nn",
                "crates/nn/src/a.rs",
                "fn walk_into(n: usize) { walk_into(n - 1); }",
            )],
            transitive_alloc,
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
