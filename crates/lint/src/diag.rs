//! Diagnostics, severities, suppressions, and output rendering (text and
//! machine-readable JSON — hand-rolled, so the analyzer stays
//! dependency-free).

use std::fmt;

use crate::lexer::Comment;

/// How much a rule's finding matters. Only [`Severity::Error`] findings
/// affect the process exit code; warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: printed, never fails the run.
    Warn,
    /// Invariant violation: fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: rule, severity, location, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (e.g. `determinism`).
    pub rule: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable explanation with the offending construct.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }
}

/// An inline `// lint:allow(rule): justification` (line scope: its own
/// line and the next) or `// lint:allow-file(rule): justification`
/// (whole-file scope), parsed out of the comment stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// 1-indexed line the comment starts on.
    pub line: usize,
    /// Whole-file scope (`lint:allow-file`) vs. line scope (`lint:allow`).
    pub file_scoped: bool,
    /// The justification text after the marker; suppressions without one
    /// are themselves a lint error ([`crate::rules::SUPPRESSION_HYGIENE`]).
    pub justification: String,
}

/// Extracts every suppression from a file's comment stream. A single
/// comment may carry several markers. Doc comments are skipped — they are
/// rendered documentation, which may mention the syntax without waiving
/// anything.
pub fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments.iter().filter(|c| !c.doc) {
        let mut rest: &str = &c.text;
        while let Some(idx) = rest.find("lint:allow") {
            let after = &rest[idx + "lint:allow".len()..];
            let (file_scoped, after) = match after.strip_prefix("-file") {
                Some(a) => (true, a),
                None => (false, after),
            };
            let Some(open) = after.strip_prefix('(') else {
                rest = &rest[idx + "lint:allow".len()..];
                continue;
            };
            let Some(close) = open.find(')') else {
                rest = &rest[idx + "lint:allow".len()..];
                continue;
            };
            let rule = open[..close].trim().to_string();
            let tail = &open[close + 1..];
            // Justification: everything after an optional ':' separator,
            // up to the next marker if the comment carries several.
            let tail_end = tail.find("lint:allow").unwrap_or(tail.len());
            let justification = tail[..tail_end]
                .trim_start_matches(&[':', ' ', '-'][..])
                .trim()
                .to_string();
            out.push(Suppression {
                rule,
                line: c.line,
                file_scoped,
                justification,
            });
            rest = &open[close + 1..];
        }
    }
    out
}

/// Whether one suppression covers `diag`: the rule matches and the
/// suppression is either file-scoped or sits on the diagnostic's line or
/// the line above it.
pub fn suppression_covers(s: &Suppression, diag: &Diagnostic) -> bool {
    s.rule == diag.rule && (s.file_scoped || s.line == diag.line || s.line + 1 == diag.line)
}

/// Whether `diag` is covered by one of `sups`.
pub fn is_suppressed(diag: &Diagnostic, sups: &[Suppression]) -> bool {
    sups.iter().any(|s| suppression_covers(s, diag))
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, line: usize) -> Comment {
        Comment {
            text: text.into(),
            line,
            doc: false,
        }
    }

    #[test]
    fn doc_comments_never_carry_suppressions() {
        let sups = parse_suppressions(&[Comment {
            text: "/ documented example: lint:allow(float-eq): why".into(),
            line: 1,
            doc: true,
        }]);
        assert!(sups.is_empty());
    }

    #[test]
    fn parses_line_and_file_scoped_allows() {
        let sups = parse_suppressions(&[
            comment(" lint:allow(float-eq): exact-zero sentinel", 7),
            comment(" lint:allow-file(panic-policy): fixed-arity triples", 1),
        ]);
        assert_eq!(sups.len(), 2);
        assert_eq!(sups[0].rule, "float-eq");
        assert!(!sups[0].file_scoped);
        assert_eq!(sups[0].justification, "exact-zero sentinel");
        assert!(sups[1].file_scoped);
    }

    #[test]
    fn empty_justification_detected() {
        let sups = parse_suppressions(&[comment(" lint:allow(determinism)", 3)]);
        assert_eq!(sups.len(), 1);
        assert!(sups[0].justification.is_empty());
    }

    #[test]
    fn suppression_scope_is_line_or_next() {
        let d = Diagnostic {
            rule: "float-eq",
            severity: Severity::Error,
            file: "x.rs".into(),
            line: 8,
            message: String::new(),
        };
        let same = parse_suppressions(&[comment(" lint:allow(float-eq): why", 8)]);
        let above = parse_suppressions(&[comment(" lint:allow(float-eq): why", 7)]);
        let far = parse_suppressions(&[comment(" lint:allow(float-eq): why", 5)]);
        assert!(is_suppressed(&d, &same));
        assert!(is_suppressed(&d, &above));
        assert!(!is_suppressed(&d, &far));
    }
}
