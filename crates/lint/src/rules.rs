//! The rule registry and the five project-invariant rules.
//!
//! Each rule is a pure function over a [`SourceFile`] (pre-lexed tokens +
//! test-region map). Rules are scoped by crate name, so the registry — not
//! the call sites — decides where an invariant applies. To add a rule:
//! write a `fn my_rule(file: &SourceFile, out: &mut Vec<Diagnostic>)`,
//! append a [`Rule`] entry to [`registry`], and add a bad/clean fixture
//! pair under `tests/fixtures/` (see DESIGN.md §11).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};
use crate::parse::matching;

/// Rule name for the determinism invariant (see [`determinism`]).
pub const DETERMINISM: &str = "determinism";
/// Rule name for the panic policy (see [`panic_policy`]).
pub const PANIC_POLICY: &str = "panic-policy";
/// Rule name for hot-path allocation discipline (see [`hot_path_alloc`]).
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule name for crate-root header hygiene (see [`crate_header`]).
pub const CRATE_HEADER: &str = "crate-header";
/// Rule name for float equality comparisons (see [`float_eq`]).
pub const FLOAT_EQ: &str = "float-eq";
/// Rule name for suppression hygiene (emitted by the driver, not a
/// registry rule: suppressions are parsed once per file, before rules
/// run). Covers unjustified allows, allows naming unknown rules, and —
/// since the workspace-graph passes — *stale* allows that no longer
/// suppress any finding.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";
/// Cross-file rule name: RNG stream-tag separation (see
/// [`crate::graph::rng_stream_separation`]).
pub const RNG_STREAM_SEPARATION: &str = "rng-stream-separation";
/// Cross-file rule name: frame-protocol exhaustiveness (see
/// [`crate::graph::frame_protocol`]).
pub const FRAME_PROTOCOL: &str = "frame-protocol";
/// Cross-file rule name: transitive hot-path allocation (see
/// [`crate::graph::transitive_alloc`]).
pub const TRANSITIVE_ALLOC: &str = "transitive-alloc";

/// Crates whose non-test code must be a pure function of its seeds:
/// the per-RA worker loop, the coordinator, and the network simulation.
pub(crate) const DETERMINISM_CRATES: &[&str] = &["runtime", "core", "netsim"];
/// The only modules allowed to touch the wall clock: the runtime's
/// deadline machinery (`clock.rs`, where every read goes through the
/// mockable [`Clock`] seam) and the transport layer (`transport.rs`,
/// whose socket timeouts and retry backoff are I/O pacing — they bound
/// *when* bytes move, never *what* the coordination computes, so
/// byte-identity across transports is preserved). Registration and the
/// networked coordinator are deliberately NOT here: their lease
/// accounting is round-counted, and any wall-clock backstop they need is
/// injected through `Clock`.
const WALL_CLOCK_QUARANTINE: &[&str] = &[
    "crates/runtime/src/clock.rs",
    "crates/runtime/src/transport.rs",
];
/// Crates whose non-test code must not panic: a coordinator panic takes
/// the whole system down — the Supervisor only catches *worker* panics.
const PANIC_CRATES: &[&str] = &["runtime", "core"];
/// Crates carrying the zero-allocation training hot path.
pub(crate) const HOT_PATH_CRATES: &[&str] = &["nn", "rl"];

/// A pre-lexed source file plus the context rules need to scope
/// themselves: owning crate, path, whether it is a crate root, and which
/// token ranges are test code.
pub struct SourceFile {
    /// The owning workspace crate's short name (`runtime`, `core`, `nn`,
    /// ...; the root package is `repro`).
    pub crate_name: String,
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Whether this file is the package's primary crate root (`lib.rs`).
    pub is_crate_root: bool,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Sorted, disjoint half-open token-index ranges that are test code
    /// (`#[cfg(test)]` / `#[test]` items).
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Builds a `SourceFile`, computing the test-region map.
    pub fn new(
        crate_name: impl Into<String>,
        rel_path: impl Into<String>,
        is_crate_root: bool,
        toks: Vec<Tok>,
    ) -> Self {
        let test_spans = test_spans(&toks);
        Self {
            crate_name: crate_name.into(),
            rel_path: rel_path.into(),
            is_crate_root,
            toks,
            test_spans,
        }
    }

    /// Whether token index `i` lies inside test code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(lo, hi)| (lo..hi).contains(&i))
    }

    pub(crate) fn diag(
        &self,
        rule: &'static str,
        severity: Severity,
        line: usize,
        msg: String,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            file: self.rel_path.clone(),
            line,
            message: msg,
        }
    }
}

/// One registered rule: identity, severity, a one-line contract, and the
/// check itself.
pub struct Rule {
    /// Stable rule name — the key used by `lint:allow(<name>)`.
    pub name: &'static str,
    /// Findings' severity.
    pub severity: Severity,
    /// One-line description shown by `--list-rules`.
    pub description: &'static str,
    /// The check: append findings for `file` to the sink.
    pub check: fn(&SourceFile, &mut Vec<Diagnostic>),
}

/// One registered *cross-file* rule: these run over the whole analyzed
/// set at once (they need the workspace symbol table and call graph in
/// [`crate::graph`]), so they carry no per-file `check` fn.
pub struct CrossRule {
    /// Stable rule name — the key used by `lint:allow(<name>)`.
    pub name: &'static str,
    /// Findings' severity.
    pub severity: Severity,
    /// One-line description shown by `--list-rules`.
    pub description: &'static str,
}

/// The cross-file passes, in reporting order. The driver runs them after
/// the per-file scan phase; see [`crate::graph`] for the pass bodies.
pub fn cross_registry() -> Vec<CrossRule> {
    vec![
        CrossRule {
            name: RNG_STREAM_SEPARATION,
            severity: Severity::Error,
            description: "all *_STREAM_TAG/DOMAIN_* constants unique workspace-wide; every \
                          seed derivation site XORs a named tag (no literals, no reuse)",
        },
        CrossRule {
            name: FRAME_PROTOCOL,
            severity: Severity::Error,
            description: "every frame tag handled in every match over decoded frames — no \
                          wildcard arm silently swallowing a tag; TAG_*/WireMsg kept 1:1",
        },
        CrossRule {
            name: TRANSITIVE_ALLOC,
            severity: Severity::Error,
            description: "hot-path fns must not *reach* an allocating fn at any call depth \
                          (the call-graph closure of hot-path-alloc)",
        },
    ]
}

/// All registered rules, in reporting order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            name: DETERMINISM,
            severity: Severity::Error,
            description: "no wall clock, OS randomness, or hash-order iteration in \
                          runtime/core/netsim non-test code (clock module excepted)",
            check: determinism,
        },
        Rule {
            name: PANIC_POLICY,
            severity: Severity::Error,
            description: "no unwrap/panic!/literal indexing in runtime/core non-test code; \
                          expect() must state an `invariant: ...` message",
            check: panic_policy,
        },
        Rule {
            name: HOT_PATH_ALLOC,
            severity: Severity::Error,
            description: "no Vec::new/vec!/to_vec/clone()/collect() inside the `*_into` / \
                          `*_scratch` / `matmul_*` / `pack_*` / `accumulate_*` function \
                          families in nn/rl",
            check: hot_path_alloc,
        },
        Rule {
            name: CRATE_HEADER,
            severity: Severity::Error,
            description: "every crate root must carry #![forbid(unsafe_code)] and \
                          #![deny(missing_docs)]",
            check: crate_header,
        },
        Rule {
            name: FLOAT_EQ,
            severity: Severity::Error,
            description: "no ==/!= against float literals outside tests (bit-exact \
                          comparisons need a written justification)",
            check: float_eq,
        },
    ]
}

/// Computes the token ranges covered by `#[cfg(test)]` / `#[test]` items:
/// from the attribute to the end of the item it gates (matched braces, or
/// the closing `;` for brace-less items). `cfg` attributes mentioning
/// `not` (e.g. `#[cfg(not(test))]`) are conservatively treated as
/// non-test.
fn test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            let start = i;
            let Some(close) = matching(toks, i + 1, "[", "]") else {
                break;
            };
            let attr = &toks[i + 2..close];
            let is_test = attr
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "test")
                && !attr
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "not");
            if is_test {
                let end = item_end(toks, close + 1);
                spans.push((start, end));
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// The end (exclusive token index) of the item starting at `i`: skips any
/// further attributes, then runs to the matched `}` of the first brace
/// block, or past the first top-level `;`.
fn item_end(toks: &[Tok], mut i: usize) -> usize {
    // Skip stacked attributes (`#[test] #[ignore] fn ...`).
    while i + 1 < toks.len() && toks[i].text == "#" && toks[i + 1].text == "[" {
        match matching(toks, i + 1, "[", "]") {
            Some(close) => i = close + 1,
            None => return toks.len(),
        }
    }
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => return matching(toks, j, "{", "}").map_or(toks.len(), |c| c + 1),
            ";" => return j + 1,
            _ => j += 1,
        }
    }
    toks.len()
}

/// Rule 1 — determinism. Reproducible coordination requires every worker
/// to be a pure function of `(master_seed, ra, round)`; wall-clock reads,
/// OS entropy, and hash-order iteration all break byte-identical
/// Threaded==Sequential runs. Banned in [`DETERMINISM_CRATES`] non-test
/// code: `Instant::now`, `SystemTime`, `thread_rng`, and any
/// `HashMap`/`HashSet` use (their iteration order is unstable across
/// processes — use `BTreeMap`/`BTreeSet` or a sorted `Vec`). The
/// quarantined clock and transport modules ([`WALL_CLOCK_QUARANTINE`])
/// are exempt.
fn determinism(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    if WALL_CLOCK_QUARANTINE.contains(&file.rel_path.as_str()) {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        let mk = |msg: String| file.diag(DETERMINISM, Severity::Error, t.line, msg);
        match t.text.as_str() {
            "Instant" if path_call(toks, i, "now") => out.push(mk(
                "`Instant::now()` outside the clock module: wall-clock reads make rounds \
                 depend on scheduling, breaking Threaded==Sequential bit-identity \
                 (use edgeslice-runtime's `clock` module)"
                    .into(),
            )),
            "SystemTime" => out.push(mk(
                "`SystemTime` in deterministic code: wall-clock state is not a function \
                 of the seed"
                    .into(),
            )),
            "thread_rng" => out.push(mk(
                "`thread_rng()` draws OS entropy: derive a seeded `StdRng` stream from \
                 `(master_seed, ra, round)` instead"
                    .into(),
            )),
            "HashMap" | "HashSet" => out.push(mk(format!(
                "`{}` iteration order is nondeterministic across processes: use \
                 `BTreeMap`/`BTreeSet` or a sorted `Vec`",
                t.text
            ))),
            _ => {}
        }
    }
}

/// Whether `toks[i]` is followed by `:: name` (e.g. `Instant :: now`).
fn path_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.text == "::")
        && toks.get(i + 2).is_some_and(|t| t.text == name)
}

/// Rule 2 — panic policy. The Supervisor exists to catch *worker* panics;
/// a panic on the coordinator path takes the whole system down with no
/// typed error for callers. Banned in [`PANIC_CRATES`] non-test code:
/// `.unwrap()`, `panic!` / `todo!` / `unimplemented!`, indexing by an
/// integer literal (`xs[0]` — use `.first()` / `.get(..)` and handle the
/// miss), and `.expect(..)` unless its message is a string literal
/// starting with `invariant:` (an expect that documents *why* it cannot
/// fire is an assertion, not error handling).
fn panic_policy(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !PANIC_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        let t = &toks[i];
        let mk = |msg: String| file.diag(PANIC_POLICY, Severity::Error, t.line, msg);
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "unwrap") if prev_is(toks, i, ".") && next_is(toks, i, "(") => {
                out.push(mk(
                    "`.unwrap()` on the coordinator path: return a typed error or use \
                     `.expect(\"invariant: ...\")` stating why this cannot fail"
                        .into(),
                ));
            }
            (TokKind::Ident, "expect") if prev_is(toks, i, ".") && next_is(toks, i, "(") => {
                let msg_ok = toks
                    .get(i + 2)
                    .is_some_and(|m| m.kind == TokKind::Str && m.text.starts_with("invariant:"));
                if !msg_ok {
                    out.push(mk(
                        "`.expect()` without an `invariant: ...` message: state the \
                         invariant that makes this infallible, or return a typed error"
                            .into(),
                    ));
                }
            }
            (TokKind::Ident, "panic" | "todo" | "unimplemented")
                if next_is(toks, i, "!") && !prev_is(toks, i, ".") =>
            {
                out.push(mk(format!(
                    "`{}!` on the coordinator path: coordinator panics are fatal — \
                     return a typed `EdgeSliceError` instead",
                    t.text
                )));
            }
            (TokKind::Punct, "[")
                if i > 0
                    && expression_position(&toks[i - 1])
                    && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Int)
                    && toks.get(i + 2).is_some_and(|n| n.text == "]") =>
            {
                out.push(mk(format!(
                    "indexing by literal `[{}]` can panic: use `.first()`/`.get({})` \
                     and handle the miss",
                    toks[i + 1].text,
                    toks[i + 1].text
                )));
            }
            _ => {}
        }
    }
}

/// Whether a `[` following this token is an index expression (identifier,
/// call/paren result, or another index) rather than an array literal,
/// array type, or attribute.
fn expression_position(prev: &Tok) -> bool {
    matches!(prev.kind, TokKind::Ident) || prev.text == ")" || prev.text == "]"
}

fn prev_is(toks: &[Tok], i: usize, text: &str) -> bool {
    i > 0 && toks[i - 1].text == text
}

fn next_is(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.text == text)
}

/// True for function names in the hot-path families: the
/// caller-provides-storage suffixes (`*_into`, `*_scratch`) plus the PR 9
/// GEMM kernel-layer prefixes (`matmul_*`, `pack_*`, `accumulate_*`) —
/// the blocked/parallel kernels and their panel-packing helpers, whose
/// packed B panels live on the stack precisely so they never allocate.
pub(crate) fn is_hot_path_fn_name(name: &str) -> bool {
    name.ends_with("_into")
        || name.ends_with("_scratch")
        || name.starts_with("matmul_")
        || name.starts_with("pack_")
        || name.starts_with("accumulate_")
}

/// The banned-allocation matcher shared by the local rule and the
/// transitive pass: when the token at `k` is one of the five banned
/// constructs, returns its display name.
pub(crate) fn alloc_construct(toks: &[Tok], k: usize) -> Option<&'static str> {
    let t = toks.get(k)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    match t.text.as_str() {
        "Vec" if path_call(toks, k, "new") => Some("`Vec::new()`"),
        "vec" if next_is(toks, k, "!") => Some("`vec![..]`"),
        "to_vec" if prev_is(toks, k, ".") && next_is(toks, k, "(") => Some("`.to_vec()`"),
        "clone" if prev_is(toks, k, ".") && next_is(toks, k, "(") => Some("`.clone()`"),
        "collect" if prev_is(toks, k, ".") => Some("`.collect()`"),
        _ => None,
    }
}

/// Rule 3 — hot-path allocation discipline. PR 4's zero-allocation
/// training loop is proven by a counting allocator at test time; this is
/// the static complement, so a stray allocation is caught at lint time
/// even on paths the test didn't drive. Inside every function in the
/// [`is_hot_path_fn_name`] families (the caller-provides-storage
/// `*_into`/`*_scratch` suffixes and the `matmul_*`/`pack_*`/`accumulate_*`
/// kernel layer) in [`HOT_PATH_CRATES`], these are banned: `Vec::new`,
/// `vec![..]`, `.to_vec()`, `.clone()`, `.collect(..)`.
fn hot_path_alloc(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !HOT_PATH_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let toks = &file.toks;
    let mut i = 0;
    while i < toks.len() {
        let is_hot_fn = toks[i].kind == TokKind::Ident
            && toks[i].text == "fn"
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && is_hot_path_fn_name(&n.text))
            && !file.in_test(i);
        if !is_hot_fn {
            i += 1;
            continue;
        }
        let fn_name = toks[i + 1].text.clone();
        // The body is the first brace block after the signature (a `;`
        // first means a trait declaration without a body).
        let mut j = i + 2;
        let mut body_end = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    body_end = matching(toks, j, "{", "}");
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        let Some(end) = body_end else {
            i = j + 1;
            continue;
        };
        for k in j..=end {
            if let Some(what) = alloc_construct(toks, k) {
                out.push(file.diag(
                    HOT_PATH_ALLOC,
                    Severity::Error,
                    toks[k].line,
                    format!(
                        "{what} inside hot-path fn `{fn_name}`: the `*_into`/`*_scratch` \
                         and kernel (`matmul_*`/`pack_*`/`accumulate_*`) families must \
                         reuse caller-provided storage \
                         (see the counting-allocator test in crates/rl/tests/zero_alloc.rs)"
                    ),
                ));
            }
        }
        i = end + 1;
    }
}

/// Rule 4 — crate-header hygiene. Every workspace crate root must carry
/// `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]` so the
/// guarantees hold for every crate, not just the ones that remembered
/// (`warn(missing_docs)` does not count: warnings scroll by).
fn crate_header(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_crate_root {
        return;
    }
    for (attr, arg) in [("forbid", "unsafe_code"), ("deny", "missing_docs")] {
        if !has_inner_attr(&file.toks, attr, arg) {
            out.push(file.diag(
                CRATE_HEADER,
                Severity::Error,
                1,
                format!("crate root is missing `#![{attr}({arg})]`"),
            ));
        }
    }
}

/// Whether the stream contains the inner attribute `#![name(arg)]`.
fn has_inner_attr(toks: &[Tok], name: &str, arg: &str) -> bool {
    toks.windows(7).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == name
            && w[4].text == "("
            && w[5].text == arg
            && w[6].text == ")"
    })
}

/// Rule 5 — float equality. `==`/`!=` against a float literal is almost
/// always a rounding bug; the few legitimate bit-exact comparisons (the
/// GEMM zero-skip rule, disabled-feature sentinels) must say so with a
/// `lint:allow(float-eq): ...` justification. Token-level analysis flags
/// comparisons with a float literal on either side; variable-vs-variable
/// float comparisons need type knowledge and are left to reviewers.
fn float_eq(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let lhs_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        // Allow a unary minus before the literal on the right.
        let rhs = match toks.get(i + 1) {
            Some(n) if n.text == "-" => toks.get(i + 2),
            n => n,
        };
        let rhs_float = rhs.is_some_and(|n| n.kind == TokKind::Float);
        if lhs_float || rhs_float {
            out.push(file.diag(
                FLOAT_EQ,
                Severity::Error,
                t.line,
                format!(
                    "`{}` against a float literal: compare with a tolerance, or justify \
                     the bit-exact comparison with `lint:allow(float-eq): ...`",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check_src(crate_name: &str, path: &str, root: bool, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::new(crate_name, path, root, lex(src).0);
        let mut out = Vec::new();
        for rule in registry() {
            (rule.check)(&file, &mut out);
        }
        out
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f(v: Vec<u8>) { v.unwrap(); let x = v[0]; }\n}";
        let diags = check_src("core", "crates/core/src/x.rs", false, src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(v: Vec<u8>) { v.unwrap(); }";
        let diags = check_src("core", "crates/core/src/x.rs", false, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, PANIC_POLICY);
    }

    #[test]
    fn expect_invariant_messages_pass() {
        let src = "fn f(v: Vec<u8>) { v.first().expect(\"invariant: nonempty\"); }";
        assert!(check_src("core", "crates/core/src/x.rs", false, src).is_empty());
        let src = "fn f(v: Vec<u8>) { v.first().expect(\"oops\"); }";
        assert_eq!(
            check_src("core", "crates/core/src/x.rs", false, src).len(),
            1
        );
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f(v: Option<u8>) { v.unwrap_or(0); v.unwrap_or_default(); }";
        assert!(check_src("runtime", "crates/runtime/src/x.rs", false, src).is_empty());
    }

    #[test]
    fn clock_module_is_exempt() {
        let src = "fn now() { let t = Instant::now(); }";
        assert!(check_src("runtime", "crates/runtime/src/clock.rs", false, src).is_empty());
        assert_eq!(
            check_src("runtime", "crates/runtime/src/engine.rs", false, src).len(),
            1
        );
    }

    #[test]
    fn wall_clock_quarantine_covers_transport_but_not_registration() {
        let src = "fn now() { let t = Instant::now(); }";
        // Socket timeouts and retry backoff live in transport.rs: exempt.
        assert!(check_src("runtime", "crates/runtime/src/transport.rs", false, src).is_empty());
        // Lease accounting must be round-counted (or go through `Clock`):
        // registration.rs and net.rs stay under the determinism rule.
        assert_eq!(
            check_src("runtime", "crates/runtime/src/registration.rs", false, src).len(),
            1
        );
        assert_eq!(
            check_src("runtime", "crates/runtime/src/net.rs", false, src).len(),
            1
        );
    }

    #[test]
    fn literal_index_flags_expressions_not_types() {
        let src = "fn f(v: Vec<u8>) -> [u8; 3] { let x = v[0]; [0, 1, 2] }";
        let diags = check_src("core", "crates/core/src/x.rs", false, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("[0]"));
    }

    #[test]
    fn hot_path_rule_scopes_to_families() {
        let src = "fn free() -> Vec<u8> { Vec::new() }\n\
                   fn fill_into(out: &mut Vec<u8>) { let v = Vec::new(); }";
        let diags = check_src("nn", "crates/nn/src/x.rs", false, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("fill_into"));
    }

    #[test]
    fn crate_header_requires_both_attrs() {
        let src = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! docs";
        assert!(check_src("bench", "crates/bench/src/lib.rs", true, src).is_empty());
        let src = "#![forbid(unsafe_code)]";
        let diags = check_src("bench", "crates/bench/src/lib.rs", true, src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("missing_docs"));
    }

    #[test]
    fn float_eq_flags_literal_comparisons_only() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(
            check_src("optim", "crates/optim/src/x.rs", false, src).len(),
            1
        );
        let src = "fn f(x: f64) -> bool { (x - 1.0).abs() < 1e-12 }";
        assert!(check_src("optim", "crates/optim/src/x.rs", false, src).is_empty());
        let src = "fn f(n: usize) -> bool { n == 0 }";
        assert!(check_src("optim", "crates/optim/src/x.rs", false, src).is_empty());
    }
}
