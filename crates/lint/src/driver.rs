//! Workspace discovery, per-file analysis, suppression filtering, and
//! report assembly — the part of the analyzer the binary and the tests
//! share.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{is_suppressed, json_escape, parse_suppressions, Diagnostic, Severity};
use crate::lexer::lex;
use crate::rules::{registry, SourceFile, SUPPRESSION_HYGIENE};

/// A fatal analyzer error (not a lint finding): bad workspace root,
/// unreadable file.
#[derive(Debug)]
pub enum LintError {
    /// No `Cargo.toml` with a `[workspace]` section was found walking up
    /// from the start directory.
    WorkspaceNotFound(PathBuf),
    /// A source file could not be read.
    Io(PathBuf, io::Error),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::WorkspaceNotFound(p) => {
                write!(f, "no workspace Cargo.toml found above {}", p.display())
            }
            LintError::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// The analysis result over a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, in file order.
    pub diagnostics: Vec<Diagnostic>,
    /// Files analyzed.
    pub files_checked: usize,
    /// Suppressions seen across the tree (justified or not; unjustified
    /// ones also produce a `suppression-hygiene` finding).
    pub suppressions: usize,
}

impl Report {
    /// Whether the run should fail: any unsuppressed error-severity
    /// finding.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "edgeslice-lint: {} file(s) checked, {} suppression(s), {} finding(s)\n",
            self.files_checked,
            self.suppressions,
            self.diagnostics.len()
        ));
        out
    }

    /// Renders the machine-readable report (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}{}\n",
                json_escape(d.rule),
                d.severity,
                json_escape(&d.file),
                d.line,
                json_escape(&d.message),
                if i + 1 == self.diagnostics.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"files_checked\": {},\n  \"suppressions\": {},\n  \"errors\": {}\n}}\n",
            self.files_checked,
            self.suppressions,
            self.diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count()
        ));
        out
    }
}

/// Finds the workspace root (`Cargo.toml` containing `[workspace]`) at or
/// above `start`.
///
/// # Errors
///
/// [`LintError::WorkspaceNotFound`] when no ancestor qualifies.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, LintError> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    Err(LintError::WorkspaceNotFound(start.to_path_buf()))
}

/// One file scheduled for analysis.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// Absolute (or caller-relative) path to read.
    pub path: PathBuf,
    /// Workspace-relative path used in diagnostics (forward slashes).
    pub rel_path: String,
    /// Short crate name the scoping rules key on.
    pub crate_name: String,
    /// Whether this file is the package's primary crate root.
    pub is_crate_root: bool,
}

/// Collects every non-test source file of the workspace: `src/**/*.rs` of
/// the root package and of each `crates/*` member. Integration tests,
/// examples, and vendored stand-ins are intentionally out of scope — the
/// rules guard shipping code, and in-file `#[cfg(test)]` regions are
/// excluded during analysis.
///
/// # Errors
///
/// [`LintError::Io`] when a source directory cannot be enumerated.
pub fn workspace_files(root: &Path) -> Result<Vec<FileSpec>, LintError> {
    let mut out = Vec::new();
    collect_package(root, &root.join("src"), "repro", &mut out)?;
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = read_dir(&crates_dir)?
        .into_iter()
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        let name = member
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        collect_package(root, &member.join("src"), &name, &mut out)?;
    }
    Ok(out)
}

fn read_dir(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        out.push(entry.path());
    }
    Ok(out)
}

fn collect_package(
    root: &Path,
    src: &Path,
    crate_name: &str,
    out: &mut Vec<FileSpec>,
) -> Result<(), LintError> {
    if !src.is_dir() {
        return Ok(());
    }
    let mut stack = vec![src.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for p in read_dir(&dir)? {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    let lib_root = src.join("lib.rs");
    let main_root = src.join("main.rs");
    // The package's primary crate root: lib.rs, else main.rs. Secondary
    // bin roots (src/bin/*) are not held to the crate-header rule.
    let primary = if lib_root.is_file() {
        lib_root
    } else {
        main_root
    };
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(FileSpec {
            is_crate_root: path == primary,
            rel_path: rel,
            crate_name: crate_name.to_string(),
            path,
        });
    }
    Ok(())
}

/// Analyzes one already-read source text under `spec`'s identity.
/// Shared by the driver and the fixture tests.
pub fn analyze_source(spec: &FileSpec, source: &str) -> (Vec<Diagnostic>, usize) {
    let (toks, comments) = lex(source);
    let sups = parse_suppressions(&comments);
    let file = SourceFile::new(
        spec.crate_name.clone(),
        spec.rel_path.clone(),
        spec.is_crate_root,
        toks,
    );
    let mut found = Vec::new();
    for rule in registry() {
        (rule.check)(&file, &mut found);
    }
    let mut diags: Vec<Diagnostic> = found
        .into_iter()
        .filter(|d| !is_suppressed(d, &sups))
        .collect();
    // Suppression hygiene: every allow must carry a written justification.
    for s in &sups {
        if s.justification.is_empty() {
            diags.push(Diagnostic {
                rule: SUPPRESSION_HYGIENE,
                severity: Severity::Error,
                file: spec.rel_path.clone(),
                line: s.line,
                message: format!(
                    "`lint:allow({})` without a justification: write \
                     `// lint:allow({}): <why this is safe>`",
                    s.rule, s.rule
                ),
            });
        }
        if !registry().iter().any(|r| r.name == s.rule) {
            diags.push(Diagnostic {
                rule: SUPPRESSION_HYGIENE,
                severity: Severity::Error,
                file: spec.rel_path.clone(),
                line: s.line,
                message: format!("`lint:allow({})` names an unknown rule", s.rule),
            });
        }
    }
    diags.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    (diags, sups.len())
}

/// Reads and analyzes every file in `specs`, assembling the report.
///
/// # Errors
///
/// [`LintError::Io`] when a scheduled file cannot be read.
pub fn run(specs: &[FileSpec]) -> Result<Report, LintError> {
    let mut report = Report::default();
    for spec in specs {
        let source =
            fs::read_to_string(&spec.path).map_err(|e| LintError::Io(spec.path.clone(), e))?;
        let (diags, sups) = analyze_source(spec, &source);
        report.diagnostics.extend(diags);
        report.suppressions += sups;
        report.files_checked += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(crate_name: &str, rel: &str) -> FileSpec {
        FileSpec {
            path: PathBuf::from(rel),
            rel_path: rel.into(),
            crate_name: crate_name.into(),
            is_crate_root: false,
        }
    }

    #[test]
    fn suppression_with_justification_silences_finding() {
        let src =
            "fn f(x: f64) -> bool {\n    // lint:allow(float-eq): exact sentinel\n    x == 0.0\n}";
        let (diags, sups) = analyze_source(&spec("optim", "crates/optim/src/x.rs"), src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(sups, 1);
    }

    #[test]
    fn unjustified_suppression_is_its_own_error() {
        let src = "fn f(x: f64) -> bool {\n    // lint:allow(float-eq)\n    x == 0.0\n}";
        let (diags, _) = analyze_source(&spec("optim", "crates/optim/src/x.rs"), src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, SUPPRESSION_HYGIENE);
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// lint:allow(no-such-rule): because\nfn f() {}";
        let (diags, _) = analyze_source(&spec("optim", "crates/optim/src/x.rs"), src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "float-eq",
                severity: Severity::Error,
                file: "a \"b\".rs".into(),
                line: 3,
                message: "x == 0.0".into(),
            }],
            files_checked: 1,
            suppressions: 0,
        };
        let json = report.to_json();
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("a \\\"b\\\".rs"));
    }
}
