//! Workspace discovery and the three-phase analysis pipeline the binary
//! and the tests share:
//!
//! 1. **Scan** — per file, embarrassingly parallel: read, lex, parse
//!    suppressions, run the local rules, build the item-level parse.
//! 2. **Graph** — sequential over the scan results: the cross-file
//!    passes (`rng-stream-separation`, `frame-protocol`,
//!    `transitive-alloc`) run on the workspace symbol table / call graph.
//! 3. **Filter** — suppressions are applied to the combined finding set
//!    while tracking which allows actually fired; a justified allow that
//!    suppresses nothing is itself a `suppression-hygiene` error (stale
//!    suppressions are drift, and drift is what this analyzer exists to
//!    catch). Diagnostics leave in stable `(file, line, rule, message)`
//!    order.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{
    json_escape, parse_suppressions, suppression_covers, Diagnostic, Severity, Suppression,
};
use crate::graph::{frame_protocol, rng_stream_separation, transitive_alloc, Unit};
use crate::lexer::lex;
use crate::parse::{parse, ParsedFile};
use crate::rules::{cross_registry, registry, SourceFile, SUPPRESSION_HYGIENE};

/// A fatal analyzer error (not a lint finding): bad workspace root,
/// unreadable file.
#[derive(Debug)]
pub enum LintError {
    /// No `Cargo.toml` with a `[workspace]` section was found walking up
    /// from the start directory.
    WorkspaceNotFound(PathBuf),
    /// A source file could not be read.
    Io(PathBuf, io::Error),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::WorkspaceNotFound(p) => {
                write!(f, "no workspace Cargo.toml found above {}", p.display())
            }
            LintError::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// The analysis result over a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, in `(file, line, rule, message)` order.
    pub diagnostics: Vec<Diagnostic>,
    /// Files analyzed.
    pub files_checked: usize,
    /// Suppressions seen across the tree (justified or not; unjustified
    /// ones also produce a `suppression-hygiene` finding).
    pub suppressions: usize,
}

impl Report {
    /// Whether the run should fail: any unsuppressed error-severity
    /// finding.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "edgeslice-lint: {} file(s) checked, {} suppression(s), {} finding(s)\n",
            self.files_checked,
            self.suppressions,
            self.diagnostics.len()
        ));
        out
    }

    /// Renders the machine-readable report (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}{}\n",
                json_escape(d.rule),
                d.severity,
                json_escape(&d.file),
                d.line,
                json_escape(&d.message),
                if i + 1 == self.diagnostics.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"files_checked\": {},\n  \"suppressions\": {},\n  \"errors\": {}\n}}\n",
            self.files_checked,
            self.suppressions,
            self.diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count()
        ));
        out
    }
}

/// Finds the workspace root (`Cargo.toml` containing `[workspace]`) at or
/// above `start`.
///
/// # Errors
///
/// [`LintError::WorkspaceNotFound`] when no ancestor qualifies.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, LintError> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    Err(LintError::WorkspaceNotFound(start.to_path_buf()))
}

/// One file scheduled for analysis.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// Absolute (or caller-relative) path to read.
    pub path: PathBuf,
    /// Workspace-relative path used in diagnostics (forward slashes).
    pub rel_path: String,
    /// Short crate name the scoping rules key on.
    pub crate_name: String,
    /// Whether this file is the package's primary crate root.
    pub is_crate_root: bool,
}

/// Collects every non-test source file of the workspace: `src/**/*.rs` of
/// the root package and of each `crates/*` member. Integration tests,
/// examples, and vendored stand-ins are intentionally out of scope — the
/// rules guard shipping code, and in-file `#[cfg(test)]` regions are
/// excluded during analysis.
///
/// # Errors
///
/// [`LintError::Io`] when a source directory cannot be enumerated.
pub fn workspace_files(root: &Path) -> Result<Vec<FileSpec>, LintError> {
    let mut out = Vec::new();
    collect_package(root, &root.join("src"), "repro", &mut out)?;
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = read_dir(&crates_dir)?
        .into_iter()
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        let name = member
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        collect_package(root, &member.join("src"), &name, &mut out)?;
    }
    Ok(out)
}

fn read_dir(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        out.push(entry.path());
    }
    Ok(out)
}

fn collect_package(
    root: &Path,
    src: &Path,
    crate_name: &str,
    out: &mut Vec<FileSpec>,
) -> Result<(), LintError> {
    if !src.is_dir() {
        return Ok(());
    }
    let mut stack = vec![src.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for p in read_dir(&dir)? {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    let lib_root = src.join("lib.rs");
    let main_root = src.join("main.rs");
    // The package's primary crate root: lib.rs, else main.rs. Secondary
    // bin roots (src/bin/*) are not held to the crate-header rule.
    let primary = if lib_root.is_file() {
        lib_root
    } else {
        main_root
    };
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(FileSpec {
            is_crate_root: path == primary,
            rel_path: rel,
            crate_name: crate_name.to_string(),
            path,
        });
    }
    Ok(())
}

/// Phase-1 output for one file: everything the graph and filter phases
/// need.
struct FileAnalysis {
    file: SourceFile,
    parsed: ParsedFile,
    sups: Vec<Suppression>,
    /// Local-rule findings, unfiltered (suppressions apply in phase 3).
    raw: Vec<Diagnostic>,
}

/// Phase 1 for one file: lex, parse suppressions, run the local rules,
/// build the item-level parse.
fn scan_file(spec: &FileSpec, source: &str) -> FileAnalysis {
    let (toks, comments) = lex(source);
    let sups = parse_suppressions(&comments);
    let file = SourceFile::new(
        spec.crate_name.clone(),
        spec.rel_path.clone(),
        spec.is_crate_root,
        toks,
    );
    let mut raw = Vec::new();
    for rule in registry() {
        (rule.check)(&file, &mut raw);
    }
    let parsed = parse(&file.toks);
    FileAnalysis {
        file,
        parsed,
        sups,
        raw,
    }
}

/// Phases 2 + 3 over the scan results. `full_set` says the analyses are
/// a complete analysis universe (the workspace walk): only then is a
/// cross-rule allow held to the stale-suppression check — in single-file
/// mode a cross-file finding may legitimately be invisible (e.g. the
/// `WireMsg` declaration lives elsewhere), so staleness is only assessed
/// for the always-full-context local rules.
fn finish(mut analyses: Vec<FileAnalysis>, full_set: bool) -> Report {
    // Phase 2: the cross-file passes over the workspace graph.
    let units: Vec<Unit<'_>> = analyses
        .iter()
        .map(|a| Unit {
            file: &a.file,
            parsed: &a.parsed,
        })
        .collect();
    let mut cross = Vec::new();
    rng_stream_separation(&units, &mut cross);
    frame_protocol(&units, &mut cross);
    transitive_alloc(&units, &mut cross);
    drop(units);

    // Phase 3: suppression filtering with usage tracking.
    let mut raw: Vec<Diagnostic> = Vec::new();
    for a in &mut analyses {
        raw.append(&mut a.raw);
    }
    raw.extend(cross);
    let mut used: Vec<Vec<bool>> = analyses.iter().map(|a| vec![false; a.sups.len()]).collect();
    let by_file: std::collections::BTreeMap<&str, usize> = analyses
        .iter()
        .enumerate()
        .map(|(i, a)| (a.file.rel_path.as_str(), i))
        .collect();
    let mut diags = Vec::new();
    for d in raw {
        let mut suppressed = false;
        if let Some(&ai) = by_file.get(d.file.as_str()) {
            for (j, s) in analyses[ai].sups.iter().enumerate() {
                if suppression_covers(s, &d) {
                    used[ai][j] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            diags.push(d);
        }
    }
    // Suppression hygiene: every allow must be justified, must name a
    // real rule, and must still suppress something.
    let local_rules: BTreeSet<&str> = registry().iter().map(|r| r.name).collect();
    let cross_rules: BTreeSet<&str> = cross_registry().iter().map(|r| r.name).collect();
    for (ai, a) in analyses.iter().enumerate() {
        for (j, s) in a.sups.iter().enumerate() {
            if s.justification.is_empty() {
                diags.push(Diagnostic {
                    rule: SUPPRESSION_HYGIENE,
                    severity: Severity::Error,
                    file: a.file.rel_path.clone(),
                    line: s.line,
                    message: format!(
                        "`lint:allow({})` without a justification: write \
                         `// lint:allow({}): <why this is safe>`",
                        s.rule, s.rule
                    ),
                });
                continue;
            }
            let rule = s.rule.as_str();
            if !local_rules.contains(rule) && !cross_rules.contains(rule) {
                diags.push(Diagnostic {
                    rule: SUPPRESSION_HYGIENE,
                    severity: Severity::Error,
                    file: a.file.rel_path.clone(),
                    line: s.line,
                    message: format!("`lint:allow({})` names an unknown rule", s.rule),
                });
            } else if !used[ai][j] && (full_set || !cross_rules.contains(rule)) {
                diags.push(Diagnostic {
                    rule: SUPPRESSION_HYGIENE,
                    severity: Severity::Error,
                    file: a.file.rel_path.clone(),
                    line: s.line,
                    message: format!(
                        "`lint:allow({})` suppresses nothing — the code it excused has \
                         drifted away; remove the stale allow (or fix what it was \
                         covering)",
                        s.rule
                    ),
                });
            }
        }
    }
    diags.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    Report {
        diagnostics: diags,
        files_checked: analyses.len(),
        suppressions: analyses.iter().map(|a| a.sups.len()).sum(),
    }
}

/// Analyzes one already-read source text under `spec`'s identity.
/// Shared by the driver and the fixture tests. The cross-file passes run
/// over the single file; stale-suppression detection is limited to the
/// local rules (see [`finish`]).
pub fn analyze_source(spec: &FileSpec, source: &str) -> (Vec<Diagnostic>, usize) {
    let analysis = scan_file(spec, source);
    let sups = analysis.sups.len();
    let report = finish(vec![analysis], false);
    (report.diagnostics, sups)
}

/// Reads and analyzes every file in `specs`, assembling the report. The
/// per-file scan phase fans out across all available cores; see
/// [`run_with_jobs`] to bound the worker count.
///
/// # Errors
///
/// [`LintError::Io`] when a scheduled file cannot be read.
pub fn run(specs: &[FileSpec]) -> Result<Report, LintError> {
    run_with_jobs(specs, 0)
}

/// [`run`] with an explicit scan-phase worker count (`0` = all available
/// cores). Results are byte-identical for every `jobs` value: workers
/// claim files by index stride and the report is assembled in input
/// order, so parallelism is purely a wall-clock knob.
///
/// # Errors
///
/// [`LintError::Io`] when a scheduled file cannot be read.
pub fn run_with_jobs(specs: &[FileSpec], jobs: usize) -> Result<Report, LintError> {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        jobs
    }
    .clamp(1, specs.len().max(1));

    let read_and_scan = |spec: &FileSpec| -> Result<FileAnalysis, LintError> {
        let source =
            fs::read_to_string(&spec.path).map_err(|e| LintError::Io(spec.path.clone(), e))?;
        Ok(scan_file(spec, &source))
    };

    let mut slots: Vec<Option<Result<FileAnalysis, LintError>>> =
        specs.iter().map(|_| None).collect();
    if jobs <= 1 {
        for (i, spec) in specs.iter().enumerate() {
            slots[i] = Some(read_and_scan(spec));
        }
    } else {
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    let read_and_scan = &read_and_scan;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut i = w;
                        while i < specs.len() {
                            out.push((i, read_and_scan(&specs[i])));
                            i += jobs;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| {
                    h.join()
                        .expect("invariant: scan workers never panic (the lexer is total)")
                })
                .collect::<Vec<_>>()
        });
        for (i, r) in results {
            slots[i] = Some(r);
        }
    }
    let mut analyses = Vec::with_capacity(specs.len());
    for slot in slots {
        match slot {
            Some(Ok(a)) => analyses.push(a),
            Some(Err(e)) => return Err(e),
            None => {}
        }
    }
    Ok(finish(analyses, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(crate_name: &str, rel: &str) -> FileSpec {
        FileSpec {
            path: PathBuf::from(rel),
            rel_path: rel.into(),
            crate_name: crate_name.into(),
            is_crate_root: false,
        }
    }

    #[test]
    fn suppression_with_justification_silences_finding() {
        let src =
            "fn f(x: f64) -> bool {\n    // lint:allow(float-eq): exact sentinel\n    x == 0.0\n}";
        let (diags, sups) = analyze_source(&spec("optim", "crates/optim/src/x.rs"), src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(sups, 1);
    }

    #[test]
    fn unjustified_suppression_is_its_own_error() {
        let src = "fn f(x: f64) -> bool {\n    // lint:allow(float-eq)\n    x == 0.0\n}";
        let (diags, _) = analyze_source(&spec("optim", "crates/optim/src/x.rs"), src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, SUPPRESSION_HYGIENE);
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// lint:allow(no-such-rule): because\nfn f() {}";
        let (diags, _) = analyze_source(&spec("optim", "crates/optim/src/x.rs"), src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn stale_suppression_is_flagged() {
        // A justified allow for a local rule with nothing to suppress:
        // the code it excused has drifted away.
        let src = "// lint:allow(float-eq): was a sentinel once\nfn f(x: f64) -> f64 { x + 1.0 }";
        let (diags, _) = analyze_source(&spec("optim", "crates/optim/src/x.rs"), src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, SUPPRESSION_HYGIENE);
        assert!(
            diags[0].message.contains("suppresses nothing"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn cross_rule_allows_are_not_stale_checked_in_single_file_mode() {
        // The frame enum lives elsewhere: a frame-protocol allow here
        // cannot be proven stale from one file, so it is left alone.
        let src = "// lint:allow(frame-protocol): declaration lives in frame.rs\nfn f() {}";
        let (diags, _) = analyze_source(&spec("runtime", "crates/runtime/src/x.rs"), src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn parallel_scan_is_order_identical() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("inside the workspace");
        let specs = workspace_files(&root).expect("workspace enumerable");
        let seq = run_with_jobs(&specs, 1).expect("sequential run");
        let par = run_with_jobs(&specs, 8).expect("parallel run");
        assert_eq!(seq.files_checked, par.files_checked);
        assert_eq!(seq.suppressions, par.suppressions);
        assert_eq!(seq.diagnostics, par.diagnostics);
        assert_eq!(seq.to_json(), par.to_json());
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "float-eq",
                severity: Severity::Error,
                file: "a \"b\".rs".into(),
                line: 3,
                message: "x == 0.0".into(),
            }],
            files_checked: 1,
            suppressions: 0,
        };
        let json = report.to_json();
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("a \\\"b\\\".rs"));
    }
}
