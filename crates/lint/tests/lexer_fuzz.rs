//! Lexer robustness: the analyzer must never be broken by the code it
//! checks. Every workspace source file — plus seeded truncated and
//! byte-mutated corpora derived from them — goes through the lint lexer;
//! the lexer must never panic and must report monotonically nondecreasing
//! line numbers (fixture files included, which hold deliberately bad
//! code). Fuzz-style but fully deterministic: a hand-rolled xorshift
//! stream, no external fuzzing deps.

use std::path::Path;

use edgeslice_lint::lexer::lex;
use edgeslice_lint::{find_workspace_root, workspace_files};

/// xorshift64* — deterministic, dependency-free mutation stream.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Lexes `source` and asserts the output is well-formed: token and
/// comment lines are 1-based and nondecreasing in emission order.
fn assert_lex_well_formed(label: &str, source: &str) {
    let (toks, comments) = lex(source);
    let mut last = 1;
    for t in &toks {
        assert!(t.line >= 1, "{label}: token line {} below 1", t.line);
        assert!(
            t.line >= last,
            "{label}: token lines regressed {last} -> {}",
            t.line
        );
        last = t.line;
    }
    let mut last = 1;
    for c in &comments {
        assert!(c.line >= 1, "{label}: comment line {} below 1", c.line);
        assert!(
            c.line >= last,
            "{label}: comment lines regressed {last} -> {}",
            c.line
        );
        last = c.line;
    }
}

/// Every corpus source: the workspace walk plus the lint fixtures.
fn corpus() -> Vec<(String, String)> {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("this test runs from inside the workspace");
    let mut out = Vec::new();
    for spec in workspace_files(&root).expect("workspace sources enumerable") {
        let source = std::fs::read_to_string(&spec.path).expect("workspace source readable");
        out.push((spec.rel_path, source));
    }
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<_> = std::fs::read_dir(&fixtures)
        .expect("fixtures dir readable")
        .map(|e| e.expect("fixture entry").path())
        .collect();
    names.sort();
    for path in names {
        let source = std::fs::read_to_string(&path).expect("fixture readable");
        out.push((path.display().to_string(), source));
    }
    out
}

#[test]
fn every_workspace_file_lexes_cleanly() {
    let corpus = corpus();
    assert!(corpus.len() > 40, "corpus too small: {}", corpus.len());
    for (label, source) in &corpus {
        assert_lex_well_formed(label, source);
    }
}

#[test]
fn truncated_sources_never_panic() {
    // Cuts at arbitrary char boundaries leave dangling strings, comments,
    // and half tokens — the lexer must absorb all of them.
    let mut rng = XorShift(0x0E5E_11F0_0000_0001);
    for (label, source) in &corpus() {
        for _ in 0..8 {
            let mut cut = rng.below(source.len() + 1);
            while !source.is_char_boundary(cut) {
                cut -= 1;
            }
            assert_lex_well_formed(&format!("{label}[..{cut}]"), &source[..cut]);
        }
    }
}

#[test]
fn byte_mutated_sources_never_panic() {
    // Random byte splices (including invalid UTF-8, repaired lossily the
    // way any robust reader would) must lex without panicking.
    let mut rng = XorShift(0x0E5E_11F0_0000_0002);
    for (label, source) in &corpus() {
        for round in 0..4 {
            let mut bytes = source.as_bytes().to_vec();
            for _ in 0..8 {
                let at = rng.below(bytes.len().max(1));
                let b = (rng.next() & 0xFF) as u8;
                if bytes.is_empty() {
                    bytes.push(b);
                } else {
                    bytes[at] = b;
                }
            }
            let mutated = String::from_utf8_lossy(&bytes);
            assert_lex_well_formed(&format!("{label}#mut{round}"), &mutated);
        }
    }
}
