//! Self-check: the analyzer runs over the *real* workspace and must come
//! back clean — zero unsuppressed findings, every `lint:allow` justified.
//! This is the same gate CI runs; keeping it as a test means `cargo test`
//! alone proves the tree satisfies its own invariants. The binary is also
//! spawned to pin the exit-code contract (0 clean / 1 findings / 2 usage).

use std::path::{Path, PathBuf};
use std::process::Command;

use edgeslice_lint::{find_workspace_root, run, workspace_files, FileSpec};

fn workspace_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("this test runs from inside the workspace")
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = workspace_root();
    let specs = workspace_files(&root).expect("workspace sources enumerable");
    let report = run(&specs).expect("workspace sources readable");
    assert!(
        report.diagnostics.is_empty(),
        "the tree violates its own invariants:\n{}",
        report.to_text()
    );
    assert!(!report.has_errors());
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_checked > 40,
        "only {} files found — workspace discovery is broken",
        report.files_checked
    );
    // The justified bit-exact comparisons (GEMM zero-skip etc.) must be
    // visible to the audit trail.
    assert!(
        report.suppressions > 0,
        "expected the documented lint:allow sites to be counted"
    );
}

#[test]
fn workspace_walk_covers_the_workload_module() {
    // The dynamic-workload generator rides the determinism rule (it must
    // be a pure function of its seed): prove the walk actually schedules
    // it under the `core` crate identity the scoping keys on.
    let root = workspace_root();
    let specs = workspace_files(&root).expect("workspace sources enumerable");
    assert!(
        specs
            .iter()
            .any(|s| s.rel_path == "crates/core/src/workload.rs" && s.crate_name == "core"),
        "crates/core/src/workload.rs missing from the workspace walk"
    );
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .args(["--workspace", "--format", "json"])
        .current_dir(workspace_root())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "lint failed on the workspace:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"errors\": 0"), "{json}");
}

#[test]
fn binary_exits_one_on_a_bad_fixture() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/panic_policy_bad.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .args(["--as-crate", "core"])
        .arg(&fixture)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "findings must exit 1:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_exits_two_on_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "no inputs is a usage error");
}

#[test]
fn list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .arg("--list-rules")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism",
        "panic-policy",
        "hot-path-alloc",
        "crate-header",
        "float-eq",
        "rng-stream-separation",
        "frame-protocol",
        "transitive-alloc",
    ] {
        assert!(text.contains(rule), "--list-rules omits {rule}:\n{text}");
    }
}

/// Writes `source` to a temp file masquerading as `rel` inside `crate_name`
/// so the cross-file passes see it next to the real workspace.
fn synth_spec(name: &str, rel: &str, crate_name: &str, source: &str) -> FileSpec {
    let path =
        std::env::temp_dir().join(format!("edgeslice_lint_{}_{name}.rs", std::process::id()));
    std::fs::write(&path, source).expect("temp file writable");
    FileSpec {
        path,
        rel_path: rel.into(),
        crate_name: crate_name.into(),
        is_crate_root: false,
    }
}

/// Runs the analyzer over the real workspace plus one synthetic file and
/// returns the findings attributed to the synthetic file.
fn run_with_synth(spec: FileSpec) -> Vec<edgeslice_lint::Diagnostic> {
    let root = workspace_root();
    let mut specs = workspace_files(&root).expect("workspace sources enumerable");
    let rel = spec.rel_path.clone();
    let path = spec.path.clone();
    specs.push(spec);
    let report = run(&specs).expect("workspace + synthetic readable");
    let _ = std::fs::remove_file(path);
    report
        .diagnostics
        .into_iter()
        .filter(|d| d.file == rel)
        .collect()
}

#[test]
fn duplicating_a_real_stream_tag_is_caught_workspace_wide() {
    // Acceptance scenario (i): a second constant carrying the value of a
    // real stream tag must collide with it. The value is read out of the
    // real workload module so the pin survives renumbering.
    let workload = std::fs::read_to_string(workspace_root().join("crates/core/src/workload.rs"))
        .expect("workload module readable");
    let value = workload
        .lines()
        .find(|l| l.contains("WORKLOAD_STREAM_TAG") && l.contains('='))
        .and_then(|l| l.split('=').nth(1))
        .map(|v| v.trim().trim_end_matches(';').trim().to_string())
        .expect("WORKLOAD_STREAM_TAG declared in workload.rs");
    let source = format!("const SYNTH_STREAM_TAG: u64 = {value};\n");
    let diags = run_with_synth(synth_spec(
        "dup_tag",
        "crates/core/src/__synth_tag.rs",
        "core",
        &source,
    ));
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, "rng-stream-separation");
    assert!(
        diags[0].message.contains("WORKLOAD_STREAM_TAG"),
        "{}",
        diags[0].message
    );
}

#[test]
fn a_partial_frame_match_is_caught_against_the_real_enum() {
    // Acceptance scenario (ii): a match handling only two variants must
    // be reported missing the other eight of the *real* `WireMsg`.
    let source = "fn peek(msg: WireMsg) -> bool {\n    match msg {\n        \
                  WireMsg::Round(_) => true,\n        WireMsg::Hello { .. } => false,\n    }\n}\n";
    let diags = run_with_synth(synth_spec(
        "partial_match",
        "crates/runtime/src/__synth_frame.rs",
        "runtime",
        source,
    ));
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, "frame-protocol");
    for variant in ["Report", "Down", "RegisterAck"] {
        assert!(
            diags[0].message.contains(variant),
            "missing-variant list omits {variant}: {}",
            diags[0].message
        );
    }
}

#[test]
fn a_deep_allocation_under_a_hot_fn_is_caught() {
    // Acceptance scenario (iii): an allocation two calls below an
    // `_into` fn, with the real workspace in scope.
    let source = "pub fn synth_pack_into(out: &mut [f64]) {\n    helper_a(out);\n}\n\
                  fn helper_a(out: &mut [f64]) {\n    helper_b(out);\n}\n\
                  fn helper_b(out: &mut [f64]) {\n    let v = vec![0.0; 4];\n    \
                  out[0] = v[0];\n}\n";
    let diags = run_with_synth(synth_spec(
        "deep_alloc",
        "crates/nn/src/__synth_alloc.rs",
        "nn",
        source,
    ));
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, "transitive-alloc");
    assert!(
        diags[0].message.contains("`helper_a` → `helper_b`"),
        "{}",
        diags[0].message
    );
}
