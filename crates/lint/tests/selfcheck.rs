//! Self-check: the analyzer runs over the *real* workspace and must come
//! back clean — zero unsuppressed findings, every `lint:allow` justified.
//! This is the same gate CI runs; keeping it as a test means `cargo test`
//! alone proves the tree satisfies its own invariants. The binary is also
//! spawned to pin the exit-code contract (0 clean / 1 findings / 2 usage).

use std::path::{Path, PathBuf};
use std::process::Command;

use edgeslice_lint::{find_workspace_root, run, workspace_files};

fn workspace_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("this test runs from inside the workspace")
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = workspace_root();
    let specs = workspace_files(&root).expect("workspace sources enumerable");
    let report = run(&specs).expect("workspace sources readable");
    assert!(
        report.diagnostics.is_empty(),
        "the tree violates its own invariants:\n{}",
        report.to_text()
    );
    assert!(!report.has_errors());
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_checked > 40,
        "only {} files found — workspace discovery is broken",
        report.files_checked
    );
    // The justified bit-exact comparisons (GEMM zero-skip etc.) must be
    // visible to the audit trail.
    assert!(
        report.suppressions > 0,
        "expected the documented lint:allow sites to be counted"
    );
}

#[test]
fn workspace_walk_covers_the_workload_module() {
    // The dynamic-workload generator rides the determinism rule (it must
    // be a pure function of its seed): prove the walk actually schedules
    // it under the `core` crate identity the scoping keys on.
    let root = workspace_root();
    let specs = workspace_files(&root).expect("workspace sources enumerable");
    assert!(
        specs
            .iter()
            .any(|s| s.rel_path == "crates/core/src/workload.rs" && s.crate_name == "core"),
        "crates/core/src/workload.rs missing from the workspace walk"
    );
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .args(["--workspace", "--format", "json"])
        .current_dir(workspace_root())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "lint failed on the workspace:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"errors\": 0"), "{json}");
}

#[test]
fn binary_exits_one_on_a_bad_fixture() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/panic_policy_bad.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .args(["--as-crate", "core"])
        .arg(&fixture)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "findings must exit 1:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_exits_two_on_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "no inputs is a usage error");
}

#[test]
fn list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_edgeslice-lint"))
        .arg("--list-rules")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism",
        "panic-policy",
        "hot-path-alloc",
        "crate-header",
        "float-eq",
    ] {
        assert!(text.contains(rule), "--list-rules omits {rule}:\n{text}");
    }
}
