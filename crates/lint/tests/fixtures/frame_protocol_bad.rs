//! Fixture: frame-protocol drift — a codec/enum desync, a silent
//! wildcard arm, a deleted match arm, and a decoder missing tags
//! (analyzed as crate `runtime`). Lexed, never compiled.

/// Wire frames.
pub enum WireMsg {
    Hello { version: u16 },
    Round(u64),
    Report { body: u64 },
}

const TAG_HELLO: u8 = 1;
const TAG_ROUND: u8 = 2;
const TAG_REPORT: u8 = 3;
// Drifted: no `WireMsg::Down` variant exists for this tag.
const TAG_DOWN: u8 = 4;

fn swallow(msg: WireMsg) {
    match msg {
        WireMsg::Hello { version } => handle(version),
        _ => {}
    }
}

fn dropped_arm(msg: WireMsg) {
    // The `WireMsg::Report` arm was deleted: the match no longer covers it.
    match msg {
        WireMsg::Hello { version } => handle(version),
        WireMsg::Round(r) => run(r),
    }
}

fn decode_missing_tag(tag: u8) -> bool {
    match tag {
        TAG_HELLO => true,
        TAG_ROUND => true,
        other => unknown(other),
    }
}
