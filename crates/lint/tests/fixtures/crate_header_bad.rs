//! Fixture: a crate root missing `#![deny(missing_docs)]` (analyzed as a
//! crate root; `#![warn(missing_docs)]` does not count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn f() {}
