//! Fixture: violates `panic-policy` five ways (analyzed as crate `core`).

fn first_share(shares: &[f64]) -> f64 {
    shares[0]
}

fn head(v: Vec<u8>) -> u8 {
    *v.first().unwrap()
}

fn head_expect(v: Vec<u8>) -> u8 {
    *v.first().expect("should not happen")
}

fn unreachable_branch(kind: u8) -> &'static str {
    match kind {
        0 => "radio",
        1 => "transport",
        2 => "computing",
        _ => panic!("bad resource kind"),
    }
}

fn later() {
    todo!()
}
