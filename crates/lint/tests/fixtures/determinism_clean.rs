//! Fixture: deterministic counterpart of `determinism_bad.rs` — seeded
//! streams and ordered containers only (analyzed as crate `runtime`).

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const JITTER_STREAM_TAG: u64 = 0x51C3_0000_0000_00FE;

fn jitter(master_seed: u64, ra: u64, round: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(master_seed ^ JITTER_STREAM_TAG ^ (ra << 32) ^ round);
    rng.gen_range(0.0..1.0)
}

fn tally(ids: &[usize]) -> BTreeMap<usize, usize> {
    let mut seen = BTreeSet::new();
    let mut out = BTreeMap::new();
    for &id in ids {
        if seen.insert(id) {
            out.insert(id, 1);
        }
    }
    out
}
