//! Fixture: counterpart of `transitive_alloc_bad.rs` — the same call
//! chain with every stage writing into caller storage (analyzed as crate
//! `nn`). Lexed, never compiled.

pub fn scale_rows_into(x: &[f64], out: &mut [f64]) {
    stage_one(x, out);
}

fn stage_one(x: &[f64], out: &mut [f64]) {
    stage_two(x, out);
}

fn stage_two(x: &[f64], out: &mut [f64]) {
    for (o, v) in out.iter_mut().zip(x) {
        *o = *v * 2.0;
    }
}
