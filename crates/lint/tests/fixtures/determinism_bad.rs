//! Fixture: violates `determinism` four ways (analyzed as crate `runtime`).

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

fn round_start() -> Instant {
    Instant::now()
}

fn stamp() -> SystemTime {
    SystemTime::now()
}

fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}

fn tally(ids: &[usize]) -> HashMap<usize, usize> {
    let mut seen = HashSet::new();
    let mut out = HashMap::new();
    for &id in ids {
        if seen.insert(id) {
            out.insert(id, 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    // Test code is exempt: a wall-clock read here must NOT fire.
    fn in_test_is_fine() {
        let _ = std::time::Instant::now();
    }
}
