//! Fixture: counterpart of `float_eq_bad.rs` — tolerance comparisons,
//! integer equality, and one justified bit-exact suppression.

fn is_disabled(jitter: f64) -> bool {
    jitter.abs() < 1e-12
}

fn is_unit(scale: f64) -> bool {
    (scale - 1.0).abs() >= 1e-12
}

fn count_is_zero(n: usize) -> bool {
    n == 0
}

fn zero_skip(a: f64) -> bool {
    // lint:allow(float-eq): fixture for the justified bit-exact pattern
    a == 0.0
}
