//! Fixture: violates `float-eq` with literal comparisons on both sides
//! (any crate — the rule is workspace-wide).

fn is_disabled(jitter: f64) -> bool {
    jitter == 0.0
}

fn is_unit(scale: f64) -> bool {
    1.0 != scale
}

fn is_sentinel(x: f64) -> bool {
    x == -1.0
}
