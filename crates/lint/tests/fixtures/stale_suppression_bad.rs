//! Fixture: a justified allow whose excused code has drifted away
//! (analyzed as crate `optim`). Lexed, never compiled.

fn damped(x: f64) -> f64 {
    // lint:allow(float-eq): exact-zero was the disabled-jitter sentinel
    x * 0.5
}
