//! Fixture: allocation-free counterpart of `hot_path_alloc_bad.rs` — the
//! `*_into`/`*_scratch` families reuse caller storage; functions outside
//! the families may allocate freely (analyzed as crate `nn`).

fn scaled_copy_into(src: &[f64], dst: &mut [f64], k: f64) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = k * s;
    }
}

fn gather_scratch(src: &[f64], scratch: &mut [f64]) {
    for (d, &s) in scratch.iter_mut().zip(src) {
        *d = s * 2.0;
    }
}

fn matmul_rows_blocked(a: &[f64], out: &mut [f64]) {
    // Kernel family: the packed panel lives on the stack.
    let mut panel = [0.0f64; 64];
    for (p, &x) in panel.iter_mut().zip(a) {
        *p = x;
    }
    for (o, &p) in out.iter_mut().zip(&panel) {
        *o = p;
    }
}

fn accumulate_row_panel(acc: &mut [f64], terms: &[f64]) {
    for (a, &t) in acc.iter_mut().zip(terms) {
        *a += t * 0.5;
    }
}

fn cold_path_may_allocate(n: usize) -> Vec<f64> {
    // Not in a banned family: allocation is fine here.
    let mut v = Vec::new();
    v.resize(n, 0.0);
    v
}
