//! Fixture: allocation-free counterpart of `hot_path_alloc_bad.rs` — the
//! `*_into`/`*_scratch` families reuse caller storage; functions outside
//! the families may allocate freely (analyzed as crate `nn`).

fn scaled_copy_into(src: &[f64], dst: &mut [f64], k: f64) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = k * s;
    }
}

fn gather_scratch(src: &[f64], scratch: &mut [f64]) {
    for (d, &s) in scratch.iter_mut().zip(src) {
        *d = s * 2.0;
    }
}

fn cold_path_may_allocate(n: usize) -> Vec<f64> {
    // Not in a banned family: allocation is fine here.
    let mut v = Vec::new();
    v.resize(n, 0.0);
    v
}
