//! Fixture: a hot-path `*_into` kernel reaching an allocation two calls
//! down the call graph (analyzed as crate `nn`). The kernel's own body
//! is clean — only the transitive pass can see the defect. Lexed, never
//! compiled.

pub fn scale_rows_into(x: &[f64], out: &mut [f64]) {
    stage_one(x, out);
}

fn stage_one(x: &[f64], out: &mut [f64]) {
    stage_two(x, out);
}

fn stage_two(x: &[f64], out: &mut [f64]) {
    let tmp = x.to_vec();
    for (o, t) in out.iter_mut().zip(&tmp) {
        *o = *t;
    }
}
