//! Fixture: RNG stream-separation violations (analyzed as crate
//! `runtime`). Lexed, never compiled.

use rand::rngs::StdRng;
use rand::SeedableRng;

const ALPHA_STREAM_TAG: u64 = 0x51C3_0000_0000_0051;
// Duplicate value: collides with ALPHA_STREAM_TAG.
const BETA_STREAM_TAG: u64 = 0x51C3_0000_0000_0051;

fn adhoc(master: u64, ra: u64) -> StdRng {
    StdRng::seed_from_u64(master ^ (ra << 32) ^ 0x00C0_FFEE)
}

fn literal_only() -> StdRng {
    StdRng::seed_from_u64(42)
}

fn first_use(master: u64) -> StdRng {
    StdRng::seed_from_u64(master ^ ALPHA_STREAM_TAG)
}

fn second_use(master: u64) -> StdRng {
    StdRng::seed_from_u64(master ^ ALPHA_STREAM_TAG)
}
