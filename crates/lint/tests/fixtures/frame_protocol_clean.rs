//! Fixture: frame-protocol counterpart of `frame_protocol_bad.rs` —
//! codec and enum in sync, every match exhaustive by name (analyzed as
//! crate `runtime`). Lexed, never compiled.

/// Wire frames.
pub enum WireMsg {
    Hello { version: u16 },
    Round(u64),
    Report { body: u64 },
}

const TAG_HELLO: u8 = 1;
const TAG_ROUND: u8 = 2;
const TAG_REPORT: u8 = 3;

fn dispatch(msg: WireMsg) {
    match msg {
        WireMsg::Hello { version } => handle(version),
        WireMsg::Round(r) => run(r),
        WireMsg::Report { body } => record(body),
    }
}

fn decode(tag: u8) -> bool {
    match tag {
        TAG_HELLO | TAG_ROUND | TAG_REPORT => true,
        other => unknown(other),
    }
}
