//! Fixture: violates `hot-path-alloc` inside both banned function
//! families (analyzed as crate `nn`).

fn scaled_copy_into(src: &[f64], dst: &mut Vec<f64>, k: f64) {
    let mut tmp = Vec::new();
    for &x in src {
        tmp.push(k * x);
    }
    *dst = tmp.to_vec();
}

fn gather_scratch(src: &[f64], scratch: &mut Vec<f64>) {
    *scratch = src.iter().map(|x| x * 2.0).collect();
    let _backup = scratch.clone();
}
