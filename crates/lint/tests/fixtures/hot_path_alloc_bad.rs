//! Fixture: violates `hot-path-alloc` inside the banned function families
//! — the `*_into`/`*_scratch` suffixes and the
//! `matmul_*`/`pack_*`/`accumulate_*` kernel layer (analyzed as crate
//! `nn`).

fn scaled_copy_into(src: &[f64], dst: &mut Vec<f64>, k: f64) {
    let mut tmp = Vec::new();
    for &x in src {
        tmp.push(k * x);
    }
    *dst = tmp.to_vec();
}

fn gather_scratch(src: &[f64], scratch: &mut Vec<f64>) {
    *scratch = src.iter().map(|x| x * 2.0).collect();
    let _backup = scratch.clone();
}

fn matmul_rows_blocked(a: &[f64], out: &mut [f64]) {
    // Kernel family: a heap panel instead of the stack array is a violation.
    let panel = vec![0.0; 64];
    for (o, (&x, &p)) in out.iter_mut().zip(a.iter().zip(&panel)) {
        *o = x * p;
    }
}

fn pack_b_panel(b: &[f64]) -> Vec<f64> {
    b.to_vec()
}

fn accumulate_row_panel(acc: &mut [f64], terms: &[f64]) {
    let staged: Vec<f64> = terms.iter().map(|t| t * 0.5).collect();
    for (a, s) in acc.iter_mut().zip(staged) {
        *a += s;
    }
}
