//! Fixture: deterministic counterpart of `rng_stream_bad.rs` — distinct
//! named tags, each XORed into exactly one stream (analyzed as crate
//! `runtime`). Lexed, never compiled.

use rand::rngs::StdRng;
use rand::SeedableRng;

const GAMMA_STREAM_TAG: u64 = 0x51C3_0000_0000_0061;
const DELTA_STREAM_TAG: u64 = 0x51C3_0000_0000_0062;

fn gamma(master: u64) -> StdRng {
    StdRng::seed_from_u64(master ^ GAMMA_STREAM_TAG)
}

fn delta(master: u64, ra: u64) -> StdRng {
    StdRng::seed_from_u64(master ^ DELTA_STREAM_TAG ^ (ra << 32))
}

fn derived(master: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(derive_stream_seed(master, DOMAIN_ROUND, round as u64))
}

fn prederived(stream_seed: u64) -> StdRng {
    StdRng::seed_from_u64(stream_seed)
}
