//! Fixture: a crate root carrying both required inner attributes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Documented, as the header demands.
pub fn f() {}
