//! Fixture: counterpart of `stale_suppression_bad.rs` — the allow still
//! covers a live finding (analyzed as crate `optim`). Lexed, never
//! compiled.

fn is_disabled(x: f64) -> bool {
    // lint:allow(float-eq): exact-zero is the disabled-jitter sentinel
    x == 0.0
}
