//! Fixture: panic-free counterpart of `panic_policy_bad.rs` — typed
//! errors, handled misses, and `invariant:`-documented expects (analyzed
//! as crate `core`).

#[derive(Debug)]
enum FixtureError {
    Empty,
    BadKind(u8),
}

fn first_share(shares: &[f64]) -> Result<f64, FixtureError> {
    shares.first().copied().ok_or(FixtureError::Empty)
}

fn head(v: Vec<u8>) -> u8 {
    // An expect stating the invariant that makes it infallible is an
    // assertion, not error handling, and passes the rule.
    *v.first()
        .expect("invariant: callers construct v with at least one element")
}

fn kind_name(kind: u8) -> Result<&'static str, FixtureError> {
    match kind {
        0 => Ok("radio"),
        1 => Ok("transport"),
        2 => Ok("computing"),
        other => Err(FixtureError::BadKind(other)),
    }
}

fn fallbacks(v: Option<u8>) -> u8 {
    // unwrap_or / unwrap_or_default are fine: they cannot panic.
    v.unwrap_or_default().max(v.unwrap_or(1))
}
