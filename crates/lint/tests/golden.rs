//! Golden-fixture tests: each rule has a *bad* fixture that must fire and
//! a *clean* counterpart that must stay silent. Fixtures live under
//! `tests/fixtures/` and are lexed, never compiled, so they can hold the
//! exact anti-patterns the rules ban.

use std::path::PathBuf;

use edgeslice_lint::{analyze_source, Diagnostic, FileSpec};

/// Reads `tests/fixtures/<name>` and analyzes it under the given crate
/// identity, returning `(unsuppressed diagnostics, suppression count)`.
fn analyze_fixture(name: &str, crate_name: &str, is_crate_root: bool) -> (Vec<Diagnostic>, usize) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let spec = FileSpec {
        path,
        rel_path: format!("crates/{crate_name}/src/{name}"),
        crate_name: crate_name.into(),
        is_crate_root,
    };
    analyze_source(&spec, &source)
}

/// Asserts every diagnostic carries `rule` and that there are `at_least`
/// of them.
fn assert_all_rule(diags: &[Diagnostic], rule: &str, at_least: usize) {
    assert!(
        diags.len() >= at_least,
        "expected >= {at_least} `{rule}` findings, got {}: {diags:#?}",
        diags.len()
    );
    for d in diags {
        assert_eq!(d.rule, rule, "unexpected rule in {d}");
    }
}

#[test]
fn determinism_bad_fires_and_spares_tests() {
    let (diags, _) = analyze_fixture("determinism_bad.rs", "runtime", false);
    assert_all_rule(&diags, "determinism", 4);
    // One finding per construct family.
    for needle in ["Instant::now", "SystemTime", "thread_rng", "HashMap"] {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "no finding mentions {needle}: {diags:#?}"
        );
    }
    // The `Instant::now()` inside `#[cfg(test)]` must NOT be among them.
    let last_fn_line = diags.iter().map(|d| d.line).max().unwrap_or(0);
    assert!(
        last_fn_line < 30,
        "a finding leaked out of the test region: {diags:#?}"
    );
}

#[test]
fn determinism_clean_is_silent() {
    let (diags, _) = analyze_fixture("determinism_clean.rs", "runtime", false);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn determinism_is_scoped_to_its_crates() {
    // The same bad source analyzed as an unscoped crate only trips the
    // workspace-wide rules (none here), not determinism.
    let (diags, _) = analyze_fixture("determinism_bad.rs", "bench", false);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn determinism_covers_the_core_workload_module() {
    // The dynamic-workload generator (DESIGN.md §13) must be a pure
    // function of its seed: `core` is inside the determinism scope, so
    // the banned constructs fire when they appear under the workload
    // module's path exactly as they do in `runtime`.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/determinism_bad.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    let spec = FileSpec {
        path,
        rel_path: "crates/core/src/workload.rs".into(),
        crate_name: "core".into(),
        is_crate_root: false,
    };
    let (diags, _) = analyze_source(&spec, &source);
    assert_all_rule(&diags, "determinism", 4);
    for d in &diags {
        assert_eq!(d.file, "crates/core/src/workload.rs");
    }
}

#[test]
fn panic_policy_bad_fires_per_construct() {
    let (diags, _) = analyze_fixture("panic_policy_bad.rs", "core", false);
    assert_all_rule(&diags, "panic-policy", 5);
    for needle in ["[0]", ".unwrap()", ".expect()", "`panic!`", "`todo!`"] {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "no finding mentions {needle}: {diags:#?}"
        );
    }
}

#[test]
fn panic_policy_clean_is_silent() {
    let (diags, _) = analyze_fixture("panic_policy_clean.rs", "core", false);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn hot_path_alloc_bad_fires_in_all_families() {
    let (diags, _) = analyze_fixture("hot_path_alloc_bad.rs", "nn", false);
    assert_all_rule(&diags, "hot-path-alloc", 7);
    assert!(diags.iter().any(|d| d.message.contains("scaled_copy_into")));
    assert!(diags.iter().any(|d| d.message.contains("gather_scratch")));
    // The PR 9 kernel families are covered too.
    assert!(diags
        .iter()
        .any(|d| d.message.contains("matmul_rows_blocked")));
    assert!(diags.iter().any(|d| d.message.contains("pack_b_panel")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("accumulate_row_panel")));
}

#[test]
fn hot_path_alloc_clean_is_silent() {
    let (diags, _) = analyze_fixture("hot_path_alloc_clean.rs", "nn", false);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn crate_header_bad_fires_on_missing_deny() {
    let (diags, _) = analyze_fixture("crate_header_bad.rs", "bench", true);
    assert_all_rule(&diags, "crate-header", 1);
    assert!(diags[0].message.contains("missing_docs"));
}

#[test]
fn crate_header_clean_is_silent() {
    let (diags, _) = analyze_fixture("crate_header_clean.rs", "bench", true);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn crate_header_only_applies_to_crate_roots() {
    let (diags, _) = analyze_fixture("crate_header_bad.rs", "bench", false);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn float_eq_bad_fires_on_either_side_and_negation() {
    let (diags, _) = analyze_fixture("float_eq_bad.rs", "optim", false);
    assert_all_rule(&diags, "float-eq", 3);
}

#[test]
fn float_eq_clean_passes_with_one_justified_suppression() {
    let (diags, sups) = analyze_fixture("float_eq_clean.rs", "optim", false);
    assert!(diags.is_empty(), "{diags:#?}");
    assert_eq!(sups, 1, "the justified zero-skip allow must be counted");
}

#[test]
fn rng_stream_bad_fires_on_dup_literal_and_reuse() {
    let (diags, _) = analyze_fixture("rng_stream_bad.rs", "runtime", false);
    assert_all_rule(&diags, "rng-stream-separation", 4);
    for needle in [
        "duplicates the value",
        "folds stream material",
        "literal seed material",
        "already XORed",
    ] {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "no finding mentions {needle:?}: {diags:#?}"
        );
    }
}

#[test]
fn rng_stream_clean_is_silent() {
    let (diags, _) = analyze_fixture("rng_stream_clean.rs", "runtime", false);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn rng_stream_tag_uniqueness_is_workspace_wide() {
    // Derivation-site discipline is scoped to the determinism crates,
    // but duplicate tag *values* collide wherever they live.
    let (diags, _) = analyze_fixture("rng_stream_bad.rs", "bench", false);
    assert_all_rule(&diags, "rng-stream-separation", 1);
    for d in &diags {
        assert!(
            d.message.contains("duplicates the value"),
            "a derivation-site finding leaked outside the determinism scope: {d}"
        );
    }
}

#[test]
fn frame_protocol_bad_fires_on_desync_wildcard_and_dropped_arm() {
    let (diags, _) = analyze_fixture("frame_protocol_bad.rs", "runtime", false);
    assert_all_rule(&diags, "frame-protocol", 4);
    // (1) the codec/enum desync names the drifted tag;
    assert!(diags.iter().any(|d| d.message.contains("TAG_DOWN")));
    // (2) the silent wildcard arm;
    assert!(diags.iter().any(|d| d.message.contains("wildcard arm")));
    // (3) the deleted `Report` arm (acceptance scenario: deleting a
    // frame-match arm must produce a diagnostic);
    assert!(diags.iter().any(|d| d
        .message
        .contains("does not handle `WireMsg` variant(s) Report")));
    // (4) the decoder missing tag bytes.
    assert!(diags.iter().any(|d| d.message.contains("TAG_REPORT")));
}

#[test]
fn frame_protocol_clean_is_silent() {
    let (diags, _) = analyze_fixture("frame_protocol_clean.rs", "runtime", false);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn transitive_alloc_bad_fires_two_calls_down() {
    // Acceptance scenario: an allocation two calls below an `_into` fn.
    let (diags, _) = analyze_fixture("transitive_alloc_bad.rs", "nn", false);
    assert_all_rule(&diags, "transitive-alloc", 1);
    assert!(diags[0].message.contains("scale_rows_into"));
    assert!(diags[0].message.contains("`stage_one` → `stage_two`"));
    assert!(diags[0].message.contains(".to_vec()"));
}

#[test]
fn transitive_alloc_clean_is_silent() {
    let (diags, _) = analyze_fixture("transitive_alloc_clean.rs", "nn", false);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn transitive_alloc_is_scoped_to_the_hot_crates() {
    let (diags, _) = analyze_fixture("transitive_alloc_bad.rs", "bench", false);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn stale_suppression_bad_fires() {
    let (diags, sups) = analyze_fixture("stale_suppression_bad.rs", "optim", false);
    assert_all_rule(&diags, "suppression-hygiene", 1);
    assert!(
        diags[0].message.contains("suppresses nothing"),
        "{}",
        diags[0].message
    );
    assert_eq!(sups, 1);
}

#[test]
fn stale_suppression_clean_is_silent() {
    let (diags, sups) = analyze_fixture("stale_suppression_clean.rs", "optim", false);
    assert!(diags.is_empty(), "{diags:#?}");
    assert_eq!(sups, 1);
}
