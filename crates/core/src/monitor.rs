//! The system monitor (paper Sec. V-D): collects network state and slice
//! performance across the system, keeps the user↔slice association
//! database, and serves aggregates to the performance coordinator over the
//! RC-M interface.

use std::collections::BTreeMap;

use edgeslice_netsim::radio::Imsi;
use edgeslice_netsim::transport::IpAddr;
use serde::{Deserialize, Serialize};

use crate::{RaId, SliceId};

/// Whether a monitored (RA, interval) actually served traffic.
///
/// Outages are recorded as explicit rows rather than absent ones so that
/// downstream accounting can distinguish "the RA was dark" from "the RA
/// served and achieved zero" — absent rows silently bias SLA statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalStatus {
    /// The RA served traffic and reported over the VR interface.
    Served,
    /// The RA was dark: no traffic served, nothing reported. The row's
    /// `performance`/`queue`/`shares` are zero placeholders and are
    /// excluded from performance and SLA aggregation.
    Outage,
}

/// One monitored interval for one (slice, RA).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorRecord {
    /// Coordination round.
    pub round: usize,
    /// Interval index within the round (`t ∈ T`).
    pub interval: usize,
    /// The RA.
    pub ra: RaId,
    /// The slice.
    pub slice: SliceId,
    /// Queue length at interval end.
    pub queue: f64,
    /// Reported performance `U`.
    pub performance: f64,
    /// Applied shares `[radio, transport, compute]`.
    pub shares: [f64; 3],
    /// Whether the interval was served or lost to an outage.
    pub status: IntervalStatus,
}

impl MonitorRecord {
    /// An explicit outage placeholder for one (slice, RA, interval).
    pub fn outage(round: usize, interval: usize, ra: RaId, slice: SliceId) -> Self {
        Self {
            round,
            interval,
            ra,
            slice,
            queue: 0.0,
            performance: 0.0,
            shares: [0.0; 3],
            status: IntervalStatus::Outage,
        }
    }
}

/// What happened to a slice at a lifecycle transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LifecycleChange {
    /// The slice was admitted and its ADMM row activated.
    Admitted,
    /// Admission control rejected the arrival; the slot is retired.
    Rejected {
        /// The binding resource domain.
        reason: crate::RejectReason,
    },
    /// A make-before-break resize committed a new SLA.
    Resized,
    /// A resize was rejected; the slice keeps its previous contract.
    ResizeRejected {
        /// The binding resource domain.
        reason: crate::RejectReason,
    },
    /// The slice departed and its resources were released.
    Departed,
}

/// One slice lifecycle transition, recorded by the monitor when the
/// coordinator applies a workload event (admit / resize / teardown).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleRecord {
    /// Global coordination round the transition took effect in.
    pub round: usize,
    /// The slice (slot id — stable across the whole run).
    pub slice: SliceId,
    /// The transition.
    pub change: LifecycleChange,
}

/// The monitor database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemMonitor {
    records: Vec<MonitorRecord>,
    /// Slice lifecycle transitions, in application order.
    lifecycle: Vec<LifecycleRecord>,
    /// IMSI → slice (learned from S1AP via the radio manager).
    imsi_assoc: BTreeMap<Imsi, SliceId>,
    /// IP → slice (used by transport and computing managers).
    ip_assoc: BTreeMap<IpAddr, SliceId>,
}

impl SystemMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a user↔slice association by IMSI.
    pub fn associate_imsi(&mut self, imsi: Imsi, slice: SliceId) {
        self.imsi_assoc.insert(imsi, slice);
    }

    /// Registers a user↔slice association by IP.
    pub fn associate_ip(&mut self, ip: IpAddr, slice: SliceId) {
        self.ip_assoc.insert(ip, slice);
    }

    /// Looks up a slice by IMSI.
    pub fn slice_by_imsi(&self, imsi: Imsi) -> Option<SliceId> {
        self.imsi_assoc.get(&imsi).copied()
    }

    /// Looks up a slice by IP.
    pub fn slice_by_ip(&self, ip: IpAddr) -> Option<SliceId> {
        self.ip_assoc.get(&ip).copied()
    }

    /// Appends an interval record (the VR-interface report).
    pub fn record(&mut self, record: MonitorRecord) {
        self.records.push(record);
    }

    /// All records, in arrival order.
    pub fn records(&self) -> &[MonitorRecord] {
        &self.records
    }

    /// Appends a slice lifecycle transition.
    pub fn record_lifecycle(&mut self, record: LifecycleRecord) {
        self.lifecycle.push(record);
    }

    /// All lifecycle transitions, in application order.
    pub fn lifecycle(&self) -> &[LifecycleRecord] {
        &self.lifecycle
    }

    /// RC-M query: `Σ_t U_{i,j}` for one round, indexed `[slice][ra]` —
    /// exactly what the coordinator's update consumes.
    pub fn round_performance(&self, round: usize, n_slices: usize, n_ras: usize) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; n_ras]; n_slices];
        for r in self.served_in_round(round) {
            if r.slice.0 < n_slices && r.ra.0 < n_ras {
                out[r.slice.0][r.ra.0] += r.performance;
            }
        }
        out
    }

    /// Total system performance of a round: `Σ_{i,j,t} U` over served
    /// intervals (outage placeholders are excluded).
    pub fn round_system_performance(&self, round: usize) -> f64 {
        self.served_in_round(round).map(|r| r.performance).sum()
    }

    /// Served (non-outage) records of one round.
    fn served_in_round(&self, round: usize) -> impl Iterator<Item = &MonitorRecord> {
        self.records
            .iter()
            .filter(move |r| r.round == round && r.status == IntervalStatus::Served)
    }

    /// Intervals RA `ra` lost to outages in `round` (counted once per
    /// interval, not per slice).
    pub fn round_outage_intervals(&self, round: usize, ra: RaId) -> usize {
        let mut intervals: Vec<usize> = self
            .records
            .iter()
            .filter(|r| r.round == round && r.ra == ra && r.status == IntervalStatus::Outage)
            .map(|r| r.interval)
            .collect();
        intervals.sort_unstable();
        intervals.dedup();
        intervals.len()
    }

    /// Fraction of this round's (RA, interval) pairs that actually served
    /// traffic — the factor SLA targets are prorated by under outages.
    pub fn round_served_fraction(&self, round: usize, n_ras: usize, period: usize) -> f64 {
        if n_ras * period == 0 {
            return 1.0;
        }
        let total = (n_ras * period) as f64;
        let lost: usize = (0..n_ras)
            .map(|j| self.round_outage_intervals(round, RaId(j)))
            .sum();
        ((total - lost as f64) / total).clamp(0.0, 1.0)
    }

    /// Mean per-resource usage of a slice in a round, `[radio, transport,
    /// compute]`, averaged over served intervals and RAs.
    pub fn round_usage(&self, round: usize, slice: SliceId) -> [f64; 3] {
        let mut sums = [0.0; 3];
        let mut n = 0usize;
        for r in self.served_in_round(round).filter(|r| r.slice == slice) {
            for (s, v) in sums.iter_mut().zip(r.shares) {
                *s += v;
            }
            n += 1;
        }
        if n > 0 {
            for s in &mut sums {
                *s /= n as f64;
            }
        }
        sums
    }

    /// System-wide performance per global time interval (`Σ_{i,j} U` at
    /// `round·T + t`), the series Fig. 6a plots.
    pub fn interval_system_series(&self, period: usize) -> Vec<f64> {
        let n = self.rounds() * period;
        let mut out = vec![0.0; n];
        for r in &self.records {
            let idx = r.round * period + r.interval;
            if idx < n {
                out[idx] += r.performance;
            }
        }
        out
    }

    /// One slice's network-wide performance per global interval (`Σ_j U`),
    /// the series Fig. 6b plots.
    pub fn slice_interval_series(&self, slice: SliceId, period: usize) -> Vec<f64> {
        let n = self.rounds() * period;
        let mut out = vec![0.0; n];
        for r in self.records.iter().filter(|r| r.slice == slice) {
            let idx = r.round * period + r.interval;
            if idx < n {
                out[idx] += r.performance;
            }
        }
        out
    }

    /// One slice's mean usage of one resource per global interval (averaged
    /// over RAs), the series Fig. 7 plots.
    pub fn usage_interval_series(
        &self,
        slice: SliceId,
        resource: crate::ResourceKind,
        period: usize,
        n_ras: usize,
    ) -> Vec<f64> {
        let n = self.rounds() * period;
        let mut out = vec![0.0; n];
        for r in self.records.iter().filter(|r| r.slice == slice) {
            let idx = r.round * period + r.interval;
            if idx < n {
                out[idx] += r.shares[resource.index()] / n_ras.max(1) as f64;
            }
        }
        out
    }

    /// Number of completed rounds present in the database.
    pub fn rounds(&self) -> usize {
        self.records.iter().map(|r| r.round + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: usize, ra: usize, slice: usize, perf: f64) -> MonitorRecord {
        MonitorRecord {
            round,
            interval: 0,
            ra: RaId(ra),
            slice: SliceId(slice),
            queue: 1.0,
            performance: perf,
            shares: [0.5, 0.3, 0.2],
            status: IntervalStatus::Served,
        }
    }

    #[test]
    fn associations_by_imsi_and_ip() {
        let mut m = SystemMonitor::new();
        m.associate_imsi(Imsi(7), SliceId(1));
        m.associate_ip(IpAddr([10, 0, 0, 1]), SliceId(0));
        assert_eq!(m.slice_by_imsi(Imsi(7)), Some(SliceId(1)));
        assert_eq!(m.slice_by_ip(IpAddr([10, 0, 0, 1])), Some(SliceId(0)));
        assert_eq!(m.slice_by_imsi(Imsi(8)), None);
    }

    #[test]
    fn round_performance_aggregates_per_slice_ra() {
        let mut m = SystemMonitor::new();
        m.record(rec(0, 0, 0, -2.0));
        m.record(rec(0, 0, 0, -3.0));
        m.record(rec(0, 1, 0, -1.0));
        m.record(rec(0, 0, 1, -4.0));
        m.record(rec(1, 0, 0, -99.0)); // other round
        let agg = m.round_performance(0, 2, 2);
        assert_eq!(agg[0][0], -5.0);
        assert_eq!(agg[0][1], -1.0);
        assert_eq!(agg[1][0], -4.0);
        assert_eq!(m.round_system_performance(0), -10.0);
    }

    #[test]
    fn usage_is_averaged() {
        let mut m = SystemMonitor::new();
        m.record(rec(0, 0, 0, 0.0));
        let mut r2 = rec(0, 1, 0, 0.0);
        r2.shares = [0.1, 0.1, 0.4];
        m.record(r2);
        let u = m.round_usage(0, SliceId(0));
        assert!((u[0] - 0.3).abs() < 1e-12);
        assert!((u[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn interval_series_flatten_rounds() {
        let mut m = SystemMonitor::new();
        let mut r1 = rec(0, 0, 0, -1.0);
        r1.interval = 0;
        m.record(r1);
        let mut r2 = rec(0, 0, 0, -2.0);
        r2.interval = 1;
        m.record(r2);
        let mut r3 = rec(1, 0, 0, -3.0);
        r3.interval = 0;
        m.record(r3);
        let series = m.interval_system_series(2);
        assert_eq!(series, vec![-1.0, -2.0, -3.0, 0.0]);
        let s0 = m.slice_interval_series(SliceId(0), 2);
        assert_eq!(s0, series);
        let usage = m.usage_interval_series(SliceId(0), crate::ResourceKind::Radio, 2, 1);
        assert_eq!(usage[0], 0.5);
    }

    #[test]
    fn rounds_counts_max() {
        let mut m = SystemMonitor::new();
        assert_eq!(m.rounds(), 0);
        m.record(rec(2, 0, 0, 0.0));
        assert_eq!(m.rounds(), 3);
    }

    #[test]
    fn outage_rows_are_explicit_but_excluded_from_aggregates() {
        let mut m = SystemMonitor::new();
        m.record(rec(0, 0, 0, -2.0));
        m.record(MonitorRecord::outage(0, 0, RaId(1), SliceId(0)));
        m.record(MonitorRecord::outage(0, 1, RaId(1), SliceId(0)));
        // The rows exist...
        assert_eq!(m.records().len(), 3);
        // ...but carry no performance weight and don't dilute usage.
        assert_eq!(m.round_system_performance(0), -2.0);
        assert_eq!(m.round_performance(0, 1, 2)[0][1], 0.0);
        let u = m.round_usage(0, SliceId(0));
        assert!(
            (u[0] - 0.5).abs() < 1e-12,
            "outage rows must not dilute usage means"
        );
        assert_eq!(m.round_outage_intervals(0, RaId(1)), 2);
        assert_eq!(m.round_outage_intervals(0, RaId(0)), 0);
        // 2 RAs × 2 intervals, 2 lost ⇒ half served.
        assert!((m.round_served_fraction(0, 2, 2) - 0.5).abs() < 1e-12);
    }
}
