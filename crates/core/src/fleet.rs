//! Cross-RA batched policy inference.
//!
//! The paper's orchestration agents are decentralized, but after
//! [`crate::EdgeSliceSystem::train_shared`] / `install_agents` every RA
//! runs a policy with bit-identical parameters — the shared-policy
//! structure the FDRL-for-6G line of work leans on. A [`PolicyFleet`]
//! exploits that: it groups RAs whose frozen policies are bit-identical
//! and serves each group with **one** fused `(n_ra × state_dim)` batched
//! forward ([`edgeslice_nn::Mlp::forward_fleet_scratch`]) instead of N
//! per-agent forwards. Per-RA actions are bit-identical to calling
//! [`crate::PolicyCheckpoint::decide`] one RA at a time — batching (and
//! any thread count) never changes a row's arithmetic — so the fleet is
//! purely a wall-clock optimization.

use edgeslice_nn::{FleetScratch, Parallelism};

use crate::PolicyCheckpoint;

/// A set of per-RA frozen policies served by fused batched inference.
///
/// Construction groups the policies by bit-identical parameters
/// ([`PolicyCheckpoint::policy_bit_identical`]); a fully shared-policy
/// system collapses to a single group and a single GEMM chain per
/// decision round. All scratch buffers are reused across calls, so
/// steady-state [`PolicyFleet::decide_into`] performs zero heap
/// allocations.
#[derive(Debug, Clone)]
pub struct PolicyFleet {
    /// One frozen policy per RA, in RA order.
    policies: Vec<PolicyCheckpoint>,
    /// Disjoint RA-index groups; all members of a group share
    /// bit-identical policies and are served by one batched forward.
    groups: Vec<Vec<usize>>,
    /// One inference scratch per group.
    scratches: Vec<FleetScratch>,
    /// Worker-thread budget for the batched GEMMs.
    par: Parallelism,
}

impl PolicyFleet {
    /// Builds a fleet from one frozen policy per RA, grouping RAs whose
    /// policies are bit-identical.
    pub fn new(policies: Vec<PolicyCheckpoint>, par: Parallelism) -> Self {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, p) in policies.iter().enumerate() {
            let existing = groups.iter().position(|g| {
                let rep = *g.first().expect("invariant: fleet groups are never empty");
                policies[rep].policy_bit_identical(p)
            });
            match existing {
                Some(gi) => groups[gi].push(i),
                None => groups.push(vec![i]),
            }
        }
        let scratches = groups.iter().map(|_| FleetScratch::new()).collect();
        Self {
            policies,
            groups,
            scratches,
            par,
        }
    }

    /// Number of RAs served by this fleet.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True when the fleet serves no RAs.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Number of distinct parameter groups (1 for a fully shared-policy
    /// system: a single fused GEMM serves every RA).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The worker-thread budget used for the batched GEMMs.
    pub fn par(&self) -> Parallelism {
        self.par
    }

    /// The per-RA policies, in RA order.
    pub fn policies(&self) -> &[PolicyCheckpoint] {
        &self.policies
    }

    /// Greedy actions for all RAs: one fused batched forward per parameter
    /// group. `actions[i]` is rewritten in place with RA `i`'s action and
    /// is bit-identical to `self.policies()[i].decide(&states[i])`.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from [`PolicyFleet::len`] or any
    /// state's length differs from its policy's `state_dim`.
    pub fn decide_into(&mut self, states: &[Vec<f64>], actions: &mut Vec<Vec<f64>>) {
        assert_eq!(
            states.len(),
            self.policies.len(),
            "fleet decide_into: {} states for {} RAs",
            states.len(),
            self.policies.len()
        );
        actions.resize_with(self.policies.len(), Vec::new);
        for (group, scratch) in self.groups.iter().zip(&mut self.scratches) {
            let rep = *group
                .first()
                .expect("invariant: fleet groups are never empty");
            let policy = &self.policies[rep];
            scratch.begin(group.len(), policy.state_dim());
            for (slot, &member) in group.iter().enumerate() {
                scratch.set_input_row(slot, &states[member]);
            }
            let out = policy.network().forward_fleet_scratch(scratch, self.par);
            for (slot, &member) in group.iter().enumerate() {
                policy.decode_row(out.row(slot), &mut actions[member]);
            }
        }
    }
}
