//! The orchestration agent (paper Sec. IV-B): a per-RA DRL learner that
//! maps the state (Eq. 13) to an end-to-end resource orchestration
//! (Eq. 14) under the coordinator's supervision.

use edgeslice_rl::{
    Ddpg, DdpgConfig, Environment, Ppo, PpoConfig, Sac, SacConfig, Technique, Trpo, TrpoConfig,
    Vpg, VpgConfig,
};
use rand::rngs::StdRng;

use crate::{RaId, RaSliceEnv};

/// The learning backend of an orchestration agent. DDPG is the paper's
/// technique; the others are the Fig. 10b comparators.
// `Ddpg` carries its scratch arena and reusable sample batch inline, so the
// variant is big — but there is exactly one backend per RA (never arrays of
// them), and boxing would put an indirection on the training hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AgentBackend {
    /// Deep deterministic policy gradient (the paper's choice).
    Ddpg(Ddpg),
    /// Soft actor-critic.
    Sac(Sac),
    /// Proximal policy optimization.
    Ppo(Ppo),
    /// Trust region policy optimization.
    Trpo(Trpo),
    /// Vanilla policy gradient.
    Vpg(Vpg),
}

/// Hyper-parameter bundle used when constructing any backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgentConfig {
    /// DDPG hyper-parameters.
    pub ddpg: DdpgConfig,
    /// SAC hyper-parameters.
    pub sac: SacConfig,
    /// PPO hyper-parameters.
    pub ppo: PpoConfig,
    /// TRPO hyper-parameters.
    pub trpo: TrpoConfig,
    /// VPG hyper-parameters.
    pub vpg: VpgConfig,
}

/// A per-RA orchestration agent.
#[derive(Debug, Clone)]
pub struct OrchestrationAgent {
    ra: RaId,
    backend: AgentBackend,
}

impl OrchestrationAgent {
    /// Creates an agent for RA `ra` using `technique`, sized for `env`'s
    /// state/action dimensions.
    pub fn new(
        ra: RaId,
        technique: Technique,
        env: &RaSliceEnv,
        config: &AgentConfig,
        rng: &mut StdRng,
    ) -> Self {
        let (sd, ad) = (env.state_dim(), env.action_dim());
        let backend = match technique {
            Technique::Ddpg => AgentBackend::Ddpg(Ddpg::new(sd, ad, config.ddpg, rng)),
            Technique::Sac => AgentBackend::Sac(Sac::new(sd, ad, config.sac, rng)),
            Technique::Ppo => AgentBackend::Ppo(Ppo::new(sd, ad, config.ppo, rng)),
            Technique::Trpo => AgentBackend::Trpo(Trpo::new(sd, ad, config.trpo, rng)),
            Technique::Vpg => AgentBackend::Vpg(Vpg::new(sd, ad, config.vpg, rng)),
        };
        Self { ra, backend }
    }

    /// Wraps an already-trained DDPG learner as the agent for RA `ra` —
    /// e.g. to checkpoint a learner that was trained outside the system
    /// harness (the kernel-equivalence tests train bare [`Ddpg`] pairs).
    pub fn from_ddpg(ra: RaId, ddpg: Ddpg) -> Self {
        Self {
            ra,
            backend: AgentBackend::Ddpg(ddpg),
        }
    }

    /// The RA this agent orchestrates.
    pub fn ra(&self) -> RaId {
        self.ra
    }

    /// Clones this agent (including its learned parameters) for another RA.
    pub fn clone_for_ra(&self, ra: RaId) -> OrchestrationAgent {
        OrchestrationAgent {
            ra,
            backend: self.backend.clone(),
        }
    }

    /// The learning backend (e.g. for checkpoint extraction).
    pub fn backend(&self) -> &AgentBackend {
        &self.backend
    }

    /// The technique in use.
    pub fn technique(&self) -> Technique {
        match &self.backend {
            AgentBackend::Ddpg(_) => Technique::Ddpg,
            AgentBackend::Sac(_) => Technique::Sac,
            AgentBackend::Ppo(_) => Technique::Ppo,
            AgentBackend::Trpo(_) => Technique::Trpo,
            AgentBackend::Vpg(_) => Technique::Vpg,
        }
    }

    /// Trains the agent offline for approximately `env_steps` environment
    /// interactions (on-policy backends round to whole rollouts).
    pub fn train(&mut self, env: &mut RaSliceEnv, env_steps: usize, rng: &mut StdRng) {
        env.set_randomize_coord(true);
        match &mut self.backend {
            AgentBackend::Ddpg(a) => {
                a.train(env, env_steps, rng);
            }
            AgentBackend::Sac(a) => {
                a.train(env, env_steps, rng);
            }
            AgentBackend::Ppo(a) => {
                let iters = (env_steps / PpoConfig::default().rollout_len).max(1);
                a.train(env, iters, rng);
            }
            AgentBackend::Trpo(a) => {
                let iters = (env_steps / TrpoConfig::default().rollout_len).max(1);
                a.train(env, iters, rng);
            }
            AgentBackend::Vpg(a) => {
                let iters = (env_steps / VpgConfig::default().rollout_len).max(1);
                a.train(env, iters, rng);
            }
        }
        env.set_randomize_coord(false);
    }

    /// The greedy orchestration action for a state (Eq. 14).
    pub fn decide(&self, state: &[f64]) -> Vec<f64> {
        match &self.backend {
            AgentBackend::Ddpg(a) => a.policy(state),
            AgentBackend::Sac(a) => a.policy(state),
            AgentBackend::Ppo(a) => a.policy(state),
            AgentBackend::Trpo(a) => a.policy(state),
            AgentBackend::Vpg(a) => a.policy(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RaEnvConfig, SliceSpec, StateSpec};
    use edgeslice_netsim::PoissonTraffic;
    use rand::SeedableRng;

    fn small_env() -> RaSliceEnv {
        let config = RaEnvConfig::experiment(vec![
            SliceSpec::experiment_slice1(),
            SliceSpec::experiment_slice2(),
        ]);
        RaSliceEnv::with_dataset(
            config,
            vec![
                Box::new(PoissonTraffic::paper()),
                Box::new(PoissonTraffic::paper()),
            ],
        )
    }

    #[test]
    fn every_technique_constructs_and_decides() {
        let mut rng = StdRng::seed_from_u64(0);
        let env = small_env();
        let cfg = AgentConfig::default();
        for t in Technique::ALL {
            let agent = OrchestrationAgent::new(RaId(0), t, &env, &cfg, &mut rng);
            assert_eq!(agent.technique(), t);
            let a = agent.decide(&env.observe());
            assert_eq!(a.len(), env.action_dim());
            assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)), "{t}: {a:?}");
        }
    }

    #[test]
    fn training_restores_orchestration_mode() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut env = small_env();
        let cfg = AgentConfig {
            ddpg: edgeslice_rl::DdpgConfig {
                hidden: 8,
                batch_size: 16,
                warmup: 20,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut agent = OrchestrationAgent::new(RaId(1), Technique::Ddpg, &env, &cfg, &mut rng);
        agent.train(&mut env, 60, &mut rng);
        assert_eq!(agent.ra(), RaId(1));
        // After training, reset must keep the coordination we set.
        env.set_coordination(&[-7.0, -3.0]);
        env.reset(&mut rng);
        assert_eq!(env.coordination(), &[-7.0, -3.0]);
    }

    #[test]
    fn nt_agent_has_smaller_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut config = RaEnvConfig::experiment(vec![
            SliceSpec::experiment_slice1(),
            SliceSpec::experiment_slice2(),
        ]);
        config.state_spec = StateSpec::CoordinationOnly;
        let env = RaSliceEnv::with_dataset(
            config,
            vec![
                Box::new(PoissonTraffic::paper()),
                Box::new(PoissonTraffic::paper()),
            ],
        );
        let agent = OrchestrationAgent::new(
            RaId(0),
            Technique::Ddpg,
            &env,
            &AgentConfig::default(),
            &mut rng,
        );
        assert_eq!(agent.decide(&env.observe()).len(), 6);
    }
}
