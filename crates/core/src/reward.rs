//! The orchestration agent's reward function (paper Eq. 15).
//!
//! ```text
//! r(s_t, a_t) = Σ_i ( U_i − (ρ/2) ‖U_i − (z_i − y_i)/T‖² )
//!               − β Σ_k [ Σ_i x_{i,k} − Rtot_k ]⁺
//! ```
//!
//! The first term approximates the per-RA augmented Lagrangian `P3` with
//! identical sub-objectives per time interval (`Σ_t U ≈ T·U^{(t)}`, so the
//! per-interval consensus target is `(z − y)/T`). The printed equation
//! carries `z + y`, but the augmented Lagrangian (Eq. 7) penalizes
//! `‖Σ_t U − z + y‖²`, whose per-interval target is `(z − y)/T`; the state
//! definition (Eq. 13) also transmits `z − y`, so we implement the
//! consistent `z − y` form. The second term reward-shapes the per-RA
//! capacity constraint (3): a penalty of weight β (paper: 20) per unit of
//! over-allocation in each resource.

use serde::{Deserialize, Serialize};

/// Weights of the reward function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardParams {
    /// Augmented-Lagrangian weight ρ (paper: 1.0).
    pub rho: f64,
    /// Capacity-violation weight β (paper: 20).
    pub beta: f64,
    /// Intervals per period `T` (paper: 10 in experiments, 24 in
    /// simulations).
    pub period: usize,
}

impl RewardParams {
    /// The paper's experimental parameters: `ρ = 1`, `β = 20`, `T = 10`.
    pub fn paper() -> Self {
        Self {
            rho: 1.0,
            beta: 20.0,
            period: 10,
        }
    }
}

/// Computes Eq. 15 for one RA and one time interval.
///
/// * `performance[i]` — `U_{i,j}^{(t)}` per slice;
/// * `coordination[i]` — `z_{i,j} − y_{i,j}` per slice (the coordinator's
///   message, also part of the state);
/// * `resource_sums[k]` — `Σ_i x_{i,j,k}` per resource, in units where the
///   RA capacity is `capacity[k]`.
///
/// # Panics
///
/// Panics if `performance` and `coordination` lengths differ or
/// `resource_sums` and `capacity` lengths differ.
pub fn reward(
    params: &RewardParams,
    performance: &[f64],
    coordination: &[f64],
    resource_sums: &[f64],
    capacity: &[f64],
) -> f64 {
    assert_eq!(
        performance.len(),
        coordination.len(),
        "slice count mismatch"
    );
    assert_eq!(
        resource_sums.len(),
        capacity.len(),
        "resource count mismatch"
    );
    let t = params.period.max(1) as f64;
    let mut r = 0.0;
    for (&u, &zy) in performance.iter().zip(coordination) {
        let target = zy / t;
        r += u - params.rho / 2.0 * (u - target).powi(2);
    }
    for (&sum, &cap) in resource_sums.iter().zip(capacity) {
        r -= params.beta * (sum - cap).max(0.0);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> RewardParams {
        RewardParams {
            rho: 1.0,
            beta: 20.0,
            period: 10,
        }
    }

    #[test]
    fn reward_is_maximal_at_consensus_without_violation() {
        // U hits the per-interval target exactly and capacity is respected.
        let r = reward(&p(), &[-2.0], &[-20.0], &[0.9], &[1.0]);
        assert_eq!(r, -2.0); // penalty terms vanish
    }

    #[test]
    fn deviation_from_target_is_quadratic() {
        let base = reward(&p(), &[-2.0], &[-20.0], &[0.0], &[1.0]);
        let off1 = reward(&p(), &[-3.0], &[-20.0], &[0.0], &[1.0]);
        let off2 = reward(&p(), &[-4.0], &[-20.0], &[0.0], &[1.0]);
        // Penalties: 0, 0.5, 2.0 (plus the linear U term).
        assert!((base - off1 - (1.0 + 0.5)).abs() < 1e-12);
        assert!((base - off2 - (2.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn capacity_violation_is_linear_with_weight_beta() {
        let ok = reward(&p(), &[0.0], &[0.0], &[1.0], &[1.0]);
        let over1 = reward(&p(), &[0.0], &[0.0], &[1.1], &[1.0]);
        let over2 = reward(&p(), &[0.0], &[0.0], &[1.2], &[1.0]);
        assert!((ok - over1 - 2.0).abs() < 1e-9); // 20 * 0.1
        assert!((ok - over2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn under_allocation_is_not_penalized() {
        let a = reward(&p(), &[0.0], &[0.0], &[0.2], &[1.0]);
        let b = reward(&p(), &[0.0], &[0.0], &[0.8], &[1.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn multiple_resources_penalized_independently() {
        let r = reward(&p(), &[0.0], &[0.0], &[1.1, 0.5, 1.2], &[1.0, 1.0, 1.0]);
        assert!((r + 20.0 * 0.3).abs() < 1e-9);
    }

    #[test]
    fn paper_params() {
        let params = RewardParams::paper();
        assert_eq!(params.rho, 1.0);
        assert_eq!(params.beta, 20.0);
        assert_eq!(params.period, 10);
    }
}
