//! # edgeslice
//!
//! A full reproduction of **EdgeSlice** (Liu, Han, Moges — ICDCS 2020):
//! decentralized deep-reinforcement-learning resource orchestration for
//! dynamic end-to-end network slicing in wireless edge computing networks.
//!
//! The system is composed of (Fig. 2):
//!
//! * a central [`PerformanceCoordinator`] running the ADMM `z`/`y` updates
//!   that enforce every slice's SLA across resource autonomies (Sec. IV-A);
//! * per-RA [`OrchestrationAgent`]s — DDPG learners (or the SAC/PPO/TRPO/
//!   VPG comparators) mapping the Eq. 13 state to the Eq. 14 resource
//!   orchestration under the Eq. 15 reward (Sec. IV-B);
//! * [`ResourceManagers`] applying decisions to the radio, transport and
//!   computing substrates (Sec. V);
//! * a [`SystemMonitor`] collecting state/performance and the user↔slice
//!   association database (Sec. V-D);
//! * the [`EdgeSliceSystem`] orchestration loop (Alg. 1);
//! * the [`RaSliceEnv`] simulated network environment used for offline
//!   agent training (Fig. 5, Sec. VI-B);
//! * the [`Taro`] baseline and the EdgeSlice-NT ablation
//!   ([`StateSpec::CoordinationOnly`]) from Sec. VII-B;
//! * a dynamic-workload subsystem ([`WorkloadPlan`] / [`SliceLifecycle`])
//!   driving online slice admission, make-before-break resize, and
//!   teardown through the [`AdmissionController`] mid-run (DESIGN.md §13).
//!
//! # Quickstart
//!
//! ```no_run
//! use edgeslice::{AgentConfig, EdgeSliceSystem, OrchestratorKind, SystemConfig};
//! use edgeslice_rl::Technique;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let config = SystemConfig::prototype();
//! let mut system = EdgeSliceSystem::new(
//!     config,
//!     OrchestratorKind::Learned(Technique::Ddpg),
//!     &AgentConfig::default(),
//!     &mut rng,
//! );
//! system.train(20_000, &mut rng);
//! let report = system.run(10, &mut rng);
//! println!("system performance: {}", report.final_system_performance());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod admission;
mod agent;
mod baseline;
mod checkpoint;
mod coordinator;
mod env;
mod error;
mod exec;
mod faults;
mod fleet;
mod ids;
mod managers;
mod monitor;
mod orchestrator;
mod overhead;
mod perf;
mod reward;
mod sla;
mod store;
mod workload;

pub use admission::{AdmissionController, DemandEstimate, RejectReason, SliceRequest};
pub use agent::{AgentBackend, AgentConfig, OrchestrationAgent};
pub use baseline::Taro;
pub use checkpoint::{CheckpointError, FrozenPolicy, PolicyCheckpoint, POLICY_CHECKPOINT_VERSION};
pub use coordinator::{CoordinationInfo, CoordinatorState, PerformanceCoordinator};
pub use env::{RaEnvConfig, RaSliceEnv, ServiceModel, StateSpec};
pub use error::EdgeSliceError;
pub use faults::{FaultConfig, FaultEvent, FaultInjector, FaultPlan, RaFaultView};
pub use fleet::PolicyFleet;
pub use ids::{RaId, ResourceKind, SliceId};
pub use managers::{ManagerError, ResourceManagers, SliceAllocation};
pub use monitor::{IntervalStatus, LifecycleChange, LifecycleRecord, MonitorRecord, SystemMonitor};
pub use orchestrator::{
    project_action_per_resource, DownEvent, EdgeSliceSystem, OrchestratorKind, RoundRecord,
    RunReport, ServeOutcome, SupervisionStats, SystemConfig, TrafficKind, WorkerNetOptions,
};
pub use overhead::{OverheadModel, RoundTraffic};
pub use store::{
    CheckpointStore, LatestRun, RunSnapshot, TrainSnapshot, WorkerSnapshot, SNAPSHOT_FORMAT_VERSION,
};
// The execution engine's scheduler, supervision policy, and networked-mode
// surface are part of the system API (see `EdgeSliceSystem::set_scheduler`
// / `set_supervision` / `run_networked` / `serve_ra`); re-export them so
// downstream users don't need a direct `edgeslice-runtime` dependency.
pub use edgeslice_runtime::{
    channel_acceptor, connect_tcp, connect_uds, loopback_pair, Acceptor, ChannelAcceptor, Clock,
    FramedTransport, Lease, ListenerAcceptor, LoopbackTransport, MockClock, NetConfig,
    NetCoordinator, NetListener, NetStats, RetryPolicy, Scheduler, SupervisorConfig, Transport,
    TransportError,
};
// The batched-inference knobs (`PolicyFleet::new`, fleet scratch staging)
// are part of the system API; re-export them so downstream users don't
// need a direct `edgeslice-nn` dependency.
pub use edgeslice_nn::{FleetScratch, Parallelism};
pub use perf::{NegServiceTime, PerformanceFunction, QueuePenalty};
pub use reward::{reward, RewardParams};
pub use sla::{Sla, SliceSpec};
pub use workload::{
    ArrivalModel, LifecycleAction, LifecycleSnapshot, LifecycleState, ScheduledEvent, SliceEvent,
    SliceLifecycle, SliceLifetime, SlotStatus, WorkloadConfig, WorkloadPlan,
};
