//! Policy checkpointing: persist a trained orchestration agent's policy
//! network and restore it as a frozen, deployable policy.
//!
//! A checkpoint captures only what's needed to *act* (the actor / policy
//! mean network and its decoding rule), not optimizer or replay state —
//! the unit an operator ships from the training cluster to the RAs.

use edgeslice_nn::Mlp;
use serde::{Deserialize, Serialize};

use crate::{AgentBackend, OrchestrationAgent, RaId};

/// How actions are decoded from the stored network's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Decode {
    /// The network output *is* the action (sigmoid head): DDPG, and the
    /// Gaussian mean networks of PPO/TRPO/VPG (clamped).
    Direct,
    /// The network emits `[μ | log σ]`; the action is `sigmoid(μ)`: SAC.
    SigmoidMeanHead,
}

/// A frozen, serializable policy.
///
/// # Examples
///
/// ```no_run
/// # use edgeslice::{PolicyCheckpoint, OrchestrationAgent};
/// # fn demo(agent: &OrchestrationAgent) {
/// let ckpt = PolicyCheckpoint::from_agent(agent);
/// let json = ckpt.to_json().unwrap();
/// let restored = PolicyCheckpoint::from_json(&json).unwrap();
/// let action = restored.decide(&[0.1, 0.2, 0.3, 0.4]);
/// # let _ = action;
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyCheckpoint {
    /// Serialization format version; [`PolicyCheckpoint::from_json`]
    /// rejects values other than [`POLICY_CHECKPOINT_VERSION`] (and, via
    /// the missing-field decode error, pre-versioned JSON without it).
    version: u32,
    technique: String,
    state_dim: usize,
    action_dim: usize,
    decode: Decode,
    network: Mlp,
}

/// The checkpoint format version this build reads and writes.
pub const POLICY_CHECKPOINT_VERSION: u32 = 1;

/// Errors from checkpoint (de)serialization.
#[derive(Debug)]
pub enum CheckpointError {
    /// The JSON was syntactically or structurally invalid.
    Malformed(String),
    /// The JSON parsed but declares a format version this build does not
    /// understand — failing loudly instead of deserializing garbage.
    UnsupportedVersion {
        /// Version declared by the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Malformed(msg) => write!(f, "checkpoint error: {msg}"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint error: unsupported format version {found} (this build reads {supported})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl PolicyCheckpoint {
    /// Extracts the policy from a trained agent.
    pub fn from_agent(agent: &OrchestrationAgent) -> Self {
        let (network, decode, action_dim) = match agent.backend() {
            AgentBackend::Ddpg(a) => (a.actor().clone(), Decode::Direct, a.actor().out_dim()),
            AgentBackend::Sac(a) => {
                let net = a.actor().clone();
                let ad = net.out_dim() / 2;
                (net, Decode::SigmoidMeanHead, ad)
            }
            AgentBackend::Ppo(a) => {
                let net = a.gaussian_policy().mean_net().clone();
                let ad = net.out_dim();
                (net, Decode::Direct, ad)
            }
            AgentBackend::Trpo(a) => {
                let net = a.gaussian_policy().mean_net().clone();
                let ad = net.out_dim();
                (net, Decode::Direct, ad)
            }
            AgentBackend::Vpg(a) => {
                let net = a.gaussian_policy().mean_net().clone();
                let ad = net.out_dim();
                (net, Decode::Direct, ad)
            }
        };
        Self {
            version: POLICY_CHECKPOINT_VERSION,
            technique: agent.technique().label().to_string(),
            state_dim: network.in_dim(),
            action_dim,
            decode,
            network,
        }
    }

    /// The format version this checkpoint was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The training technique the policy came from.
    pub fn technique(&self) -> &str {
        &self.technique
    }

    /// Expected state dimensionality.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Produced action dimensionality.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// The greedy action for a state, identical to the source agent's
    /// [`OrchestrationAgent::decide`].
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != state_dim()`.
    pub fn decide(&self, state: &[f64]) -> Vec<f64> {
        let out = self.network.forward_one(state);
        match self.decode {
            Decode::Direct => out.into_iter().map(|v| v.clamp(0.0, 1.0)).collect(),
            Decode::SigmoidMeanHead => (0..self.action_dim)
                .map(|j| edgeslice_nn::sigmoid(out[j]))
                .collect(),
        }
    }

    /// True when `other` holds the same decode rule, dimensions, and
    /// bit-identical network parameters — i.e. the two policies produce
    /// identical actions on every state, so a [`crate::PolicyFleet`] may
    /// serve both from one fused batched forward.
    pub fn policy_bit_identical(&self, other: &PolicyCheckpoint) -> bool {
        self.decode == other.decode
            && self.state_dim == other.state_dim
            && self.action_dim == other.action_dim
            && self.network == other.network
    }

    /// The stored policy network (fleet inference runs the batched forward
    /// directly against it).
    pub(crate) fn network(&self) -> &Mlp {
        &self.network
    }

    /// Decodes one raw network-output row into `action` (cleared and
    /// refilled in place; allocation-free once capacity has warmed up).
    /// Element-for-element the same arithmetic as [`PolicyCheckpoint::decide`].
    pub(crate) fn decode_row(&self, row: &[f64], action: &mut Vec<f64>) {
        action.clear();
        match self.decode {
            Decode::Direct => action.extend(row.iter().map(|v| v.clamp(0.0, 1.0))),
            Decode::SigmoidMeanHead => action.extend(
                row[..self.action_dim]
                    .iter()
                    .map(|&v| edgeslice_nn::sigmoid(v)),
            ),
        }
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (practically impossible for
    /// this structure).
    pub fn to_json(&self) -> Result<String, CheckpointError> {
        serde_json::to_string(self).map_err(|e| CheckpointError::Malformed(e.to_string()))
    }

    /// Restores from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Malformed`] on invalid input (including
    /// pre-versioned JSON with no `version` field) and
    /// [`CheckpointError::UnsupportedVersion`] when the `version` field
    /// names a format this build does not read.
    pub fn from_json(json: &str) -> Result<Self, CheckpointError> {
        let ckpt: Self =
            serde_json::from_str(json).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if ckpt.version != POLICY_CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: ckpt.version,
                supported: POLICY_CHECKPOINT_VERSION,
            });
        }
        Ok(ckpt)
    }

    /// Rehydrates the checkpoint as a deployable frozen agent for `ra`.
    pub fn into_frozen_policy(self, ra: RaId) -> FrozenPolicy {
        FrozenPolicy {
            ra,
            checkpoint: self,
        }
    }
}

/// A deployed frozen policy bound to an RA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrozenPolicy {
    ra: RaId,
    checkpoint: PolicyCheckpoint,
}

impl FrozenPolicy {
    /// The RA this policy serves.
    pub fn ra(&self) -> RaId {
        self.ra
    }

    /// The greedy action for a state.
    pub fn decide(&self, state: &[f64]) -> Vec<f64> {
        self.checkpoint.decide(state)
    }

    /// The underlying checkpoint (e.g. to re-checkpoint an RA that is
    /// already running a restored policy).
    pub fn checkpoint(&self) -> &PolicyCheckpoint {
        &self.checkpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgentConfig, RaEnvConfig, RaSliceEnv, SliceSpec};
    use edgeslice_netsim::PoissonTraffic;
    use edgeslice_rl::{Environment, Technique};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env() -> RaSliceEnv {
        RaSliceEnv::with_dataset(
            RaEnvConfig::experiment(vec![
                SliceSpec::experiment_slice1(),
                SliceSpec::experiment_slice2(),
            ]),
            vec![
                Box::new(PoissonTraffic::paper()),
                Box::new(PoissonTraffic::paper()),
            ],
        )
    }

    #[test]
    fn round_trip_preserves_decisions_for_every_technique() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = env();
        let cfg = AgentConfig::default();
        for t in Technique::ALL {
            let agent = OrchestrationAgent::new(RaId(0), t, &e, &cfg, &mut rng);
            let ckpt = PolicyCheckpoint::from_agent(&agent);
            let json = ckpt.to_json().unwrap();
            let restored = PolicyCheckpoint::from_json(&json).unwrap();
            let state = vec![0.4; e.state_dim()];
            for (a, b) in agent.decide(&state).iter().zip(restored.decide(&state)) {
                assert!(
                    (a - b).abs() <= 1e-12,
                    "{t}: checkpoint must reproduce the policy ({a} vs {b})"
                );
            }
            assert_eq!(restored.technique(), t.label());
            assert_eq!(restored.state_dim(), e.state_dim());
            assert_eq!(restored.action_dim(), e.action_dim());
        }
    }

    #[test]
    fn frozen_policy_binds_an_ra() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = env();
        let agent = OrchestrationAgent::new(
            RaId(0),
            Technique::Ddpg,
            &e,
            &AgentConfig::default(),
            &mut rng,
        );
        let frozen = PolicyCheckpoint::from_agent(&agent).into_frozen_policy(RaId(7));
        assert_eq!(frozen.ra(), RaId(7));
        let a = frozen.decide(&vec![0.1; e.state_dim()]);
        assert!(a.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            PolicyCheckpoint::from_json("{not json"),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_format_versions_fail_loudly() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = env();
        let agent = OrchestrationAgent::new(
            RaId(0),
            Technique::Ddpg,
            &e,
            &AgentConfig::default(),
            &mut rng,
        );
        let json = PolicyCheckpoint::from_agent(&agent).to_json().unwrap();
        let current = format!("\"version\":{POLICY_CHECKPOINT_VERSION}");
        assert!(json.contains(&current), "version field must be serialized");

        // A future version must be rejected, not half-deserialized.
        let future = format!("\"version\":{}", POLICY_CHECKPOINT_VERSION + 1);
        let err = PolicyCheckpoint::from_json(&json.replacen(&current, &future, 1)).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::UnsupportedVersion { found, supported }
                if found == POLICY_CHECKPOINT_VERSION + 1
                    && supported == POLICY_CHECKPOINT_VERSION
        ));

        // Pre-versioned JSON (no `version` field) is rejected too.
        let legacy = json.replacen(&format!("{current},"), "", 1);
        assert!(!legacy.contains("version"));
        let err = PolicyCheckpoint::from_json(&legacy).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)));
    }
}
