//! Dynamic slice lifecycle: a seeded workload generator driving online
//! admit/resize/teardown through the ADMM coordinator.
//!
//! The paper's experiments fix the slice population at system start; real
//! tenants arrive, renegotiate and tear down over the SR interface
//! (Sec. V-D) while the network keeps serving. This module supplies the
//! two halves of that story:
//!
//! * [`WorkloadPlan`] — a *deterministic, seeded* schedule of
//!   [`SliceEvent`]s (arrivals, resizes, departures) indexed by
//!   orchestration round. Plans come from the classic slicing arrival
//!   models ([`ArrivalModel::Poisson`], [`ArrivalModel::Incremental`],
//!   [`ArrivalModel::IncrAndKeep`]), from trace-driven demand curves
//!   (CSV/JSON), or from an explicit validated script.
//! * [`SliceLifecycle`] — the online state machine the orchestrator runs
//!   the plan through: each event flows through the
//!   [`AdmissionController`], the resulting slot transitions are applied
//!   to the ADMM coordinator (grow/shrink `z`/`y` rows) and broadcast to
//!   workers as an idempotent absolute [`LifecycleState`], and per-slice
//!   [`SliceLifetime`] rows record the outcome for the run report.
//!
//! # Slot model
//!
//! Policy networks bake their dimensions at construction, so a run's
//! *capacity* — initial slices plus every planned arrival — is fixed up
//! front by [`WorkloadPlan::slot_specs`]; admission, resize and teardown
//! then activate, re-negotiate and deactivate those pre-assigned slots.
//! A rejected arrival permanently retires its slot (ids are never
//! recycled), and later events referencing it are no-ops.
//!
//! Determinism contract: plan generation draws from dedicated RNG
//! streams (`seed ^ WORKLOAD_STREAM_TAG` for the arrival process,
//! `seed ^ RESIZE_STREAM_TAG` for resize decisions) with guarded draws
//! — a zero rate consumes no randomness — so the same seed yields the
//! same arrival schedule regardless of which optional features are
//! enabled: toggling `resize_rate` never shifts the arrival stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use edgeslice_netsim::sample_poisson;

use crate::admission::{AdmissionController, RejectReason, SliceRequest};
use crate::{EdgeSliceError, Sla, SliceId, SliceSpec};

/// Domain-separation tag for the workload RNG stream (disjoint from the
/// fault-plan stream by construction).
const WORKLOAD_STREAM_TAG: u64 = 0x51C3_0000_0000_0007;

/// Domain-separation tag for the resize-decision RNG stream: resize
/// gates and magnitudes draw here so enabling/disabling resizes never
/// shifts the arrival schedule.
const RESIZE_STREAM_TAG: u64 = 0x51C3_0000_0000_0008;

/// One slice-lifecycle event over the SR interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SliceEvent {
    /// A tenant requests a new slice for the pre-assigned slot `slice`.
    Arrive {
        /// The slot the arrival will occupy if admitted.
        slice: SliceId,
        /// The tenant's request.
        request: SliceRequest,
    },
    /// A tenant renegotiates an admitted slice's traffic and SLA.
    Resize {
        /// The slice being renegotiated.
        slice: SliceId,
        /// New expected mean arrivals per interval, per RA.
        new_rate: f64,
        /// New SLA.
        new_sla: Sla,
    },
    /// A tenant tears an admitted slice down.
    Depart {
        /// The departing slice.
        slice: SliceId,
    },
}

impl SliceEvent {
    /// The slice the event concerns.
    pub fn slice(&self) -> SliceId {
        match self {
            SliceEvent::Arrive { slice, .. }
            | SliceEvent::Resize { slice, .. }
            | SliceEvent::Depart { slice } => *slice,
        }
    }
}

/// A [`SliceEvent`] pinned to the orchestration round it fires in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledEvent {
    /// Round index (0-based within the run) the event fires at.
    pub round: usize,
    /// The event.
    pub event: SliceEvent,
}

/// The arrival process a generated plan follows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Memoryless arrivals: `Poisson(rate)` new requests per round, each
    /// holding for a sampled lifetime (see
    /// [`WorkloadConfig::hold_rounds`]).
    Poisson {
        /// Expected arrivals per round (≥ 0, finite).
        rate: f64,
    },
    /// One arrival every `every_rounds`, departing `hold_rounds` later —
    /// the classic "incr" slicing benchmark.
    Incremental {
        /// Rounds between consecutive arrivals (≥ 1).
        every_rounds: usize,
        /// Rounds each arrival stays before teardown (≥ 1).
        hold_rounds: usize,
    },
    /// One arrival every `every_rounds` that never departs — the
    /// "incr-and-keep" benchmark.
    IncrAndKeep {
        /// Rounds between consecutive arrivals (≥ 1).
        every_rounds: usize,
    },
    /// Trace-driven: `demand[r]` is the target number of concurrently
    /// active slices at round `r`; the generator emits arrivals and
    /// (LIFO) departures to track the curve. Consumes no randomness.
    Trace {
        /// Target concurrent slice count per round (finite, ≥ 0).
        demand: Vec<f64>,
    },
}

/// Configuration for [`WorkloadPlan::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Seed for the dedicated workload RNG stream.
    pub seed: u64,
    /// Number of orchestration rounds the plan covers.
    pub horizon_rounds: usize,
    /// The arrival process.
    pub model: ArrivalModel,
    /// Template request for generated arrivals (app and SLA; the expected
    /// rate is resampled per arrival from `rate_range`).
    pub template: SliceRequest,
    /// Inclusive range the per-arrival expected rate is drawn from.
    pub rate_range: (f64, f64),
    /// Inclusive lifetime range, in rounds, for [`ArrivalModel::Poisson`]
    /// arrivals; `(0, 0)` means arrivals never depart.
    pub hold_rounds: (usize, usize),
    /// Per-arrival probability of one mid-lifetime resize (0 disables the
    /// draw entirely).
    pub resize_rate: f64,
}

impl WorkloadConfig {
    /// A small Poisson churn preset matched to the prototype system: one
    /// expected arrival every other round, short holds, occasional
    /// resizes.
    pub fn prototype(seed: u64, horizon_rounds: usize) -> Self {
        Self {
            seed,
            horizon_rounds,
            model: ArrivalModel::Poisson { rate: 0.5 },
            template: SliceRequest {
                app: edgeslice_netsim::AppProfile::traffic_heavy(),
                expected_rate: 10.0,
                sla: Sla::paper(),
            },
            rate_range: (5.0, 15.0),
            hold_rounds: (2, 5),
            resize_rate: 0.25,
        }
    }
}

/// A deterministic, validated schedule of slice-lifecycle events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPlan {
    initial: Vec<SliceRequest>,
    horizon_rounds: usize,
    /// Sorted (stably) by round; arrival slot ids ascend in event order.
    events: Vec<ScheduledEvent>,
}

impl WorkloadPlan {
    /// A plan with only the initial slices and no lifecycle events — the
    /// static workload expressed in dynamic terms.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::InvalidWorkloadPlan`] if an initial
    /// request is malformed or `horizon_rounds` is zero.
    pub fn static_only(
        initial: Vec<SliceRequest>,
        horizon_rounds: usize,
    ) -> Result<Self, EdgeSliceError> {
        Self::scripted(initial, horizon_rounds, Vec::new())
    }

    /// Builds a plan from an explicit event script. Events may arrive in
    /// any order; they are sorted stably by round.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::InvalidWorkloadPlan`] if any event is
    /// malformed: an arrival slot id out of sequence, an event at or past
    /// the horizon, a resize/departure before its slice arrives (or
    /// after it departs), or a non-finite rate.
    pub fn scripted(
        initial: Vec<SliceRequest>,
        horizon_rounds: usize,
        mut events: Vec<ScheduledEvent>,
    ) -> Result<Self, EdgeSliceError> {
        events.sort_by_key(|e| e.round);
        let plan = Self {
            initial,
            horizon_rounds,
            events,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Generates a seeded plan from an arrival model. Same seed, same
    /// config → same plan, on every platform.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::InvalidWorkloadPlan`] if the config is
    /// malformed (non-finite rates, zero horizon, empty range, …).
    pub fn generate(
        initial: Vec<SliceRequest>,
        config: &WorkloadConfig,
    ) -> Result<Self, EdgeSliceError> {
        let invalid = |msg: String| EdgeSliceError::InvalidWorkloadPlan(msg);
        if config.horizon_rounds == 0 {
            return Err(invalid("horizon_rounds must be at least 1".into()));
        }
        let (rate_lo, rate_hi) = config.rate_range;
        if !(rate_lo.is_finite() && rate_hi.is_finite()) || rate_lo < 0.0 || rate_hi < rate_lo {
            return Err(invalid(format!(
                "bad rate_range ({rate_lo}, {rate_hi}): need 0 <= lo <= hi, finite"
            )));
        }
        if !(0.0..=1.0).contains(&config.resize_rate) {
            return Err(invalid(format!(
                "resize_rate {} outside [0, 1]",
                config.resize_rate
            )));
        }
        let mut rng = StdRng::seed_from_u64(config.seed ^ WORKLOAD_STREAM_TAG);
        // Resize gates and magnitudes live on their own derived stream:
        // the arrival schedule is a pure function of the arrival stream,
        // so toggling resize_rate never shifts when slices arrive.
        let mut resize_rng = StdRng::seed_from_u64(config.seed ^ RESIZE_STREAM_TAG);
        let mut events: Vec<ScheduledEvent> = Vec::new();
        let mut next_id = initial.len();
        // Guarded draws: every optional feature checks its gate before
        // touching its RNG, so disabling one never shifts another's
        // stream.
        let draw_rate = |rng: &mut StdRng| {
            if rate_hi > rate_lo {
                rng.gen_range(rate_lo..=rate_hi)
            } else {
                rate_lo
            }
        };
        let mut spawn = |rng: &mut StdRng,
                         resize_rng: &mut StdRng,
                         events: &mut Vec<ScheduledEvent>,
                         round: usize,
                         hold: Option<usize>,
                         resize_rate: f64| {
            let slice = SliceId(next_id);
            next_id += 1;
            let request = SliceRequest {
                expected_rate: draw_rate(rng),
                ..config.template
            };
            events.push(ScheduledEvent {
                round,
                event: SliceEvent::Arrive { slice, request },
            });
            let depart_round = hold.map(|h| round + h);
            if resize_rate > 0.0 && resize_rng.gen_bool(resize_rate) {
                let mid = round + hold.map_or(2, |h| (h / 2).max(1));
                let before_departure = depart_round.is_none_or(|d| mid < d);
                if mid < config.horizon_rounds && before_departure {
                    let factor = resize_rng.gen_range(0.8..=1.2);
                    events.push(ScheduledEvent {
                        round: mid,
                        event: SliceEvent::Resize {
                            slice,
                            new_rate: draw_rate(resize_rng),
                            new_sla: Sla::new(config.template.sla.umin * factor),
                        },
                    });
                }
            }
            if let Some(d) = depart_round {
                if d < config.horizon_rounds {
                    events.push(ScheduledEvent {
                        round: d,
                        event: SliceEvent::Depart { slice },
                    });
                }
            }
        };
        match &config.model {
            ArrivalModel::Poisson { rate } => {
                if !rate.is_finite() || *rate < 0.0 {
                    return Err(invalid(format!("bad Poisson rate {rate}")));
                }
                let (hold_lo, hold_hi) = config.hold_rounds;
                if hold_hi < hold_lo {
                    return Err(invalid(format!(
                        "bad hold_rounds ({hold_lo}, {hold_hi}): need lo <= hi"
                    )));
                }
                for round in 0..config.horizon_rounds {
                    let n = if *rate > 0.0 {
                        sample_poisson(*rate, &mut rng)
                    } else {
                        0
                    };
                    for _ in 0..n {
                        let hold = if hold_hi == 0 {
                            None
                        } else if hold_hi > hold_lo {
                            Some(rng.gen_range(hold_lo.max(1)..=hold_hi))
                        } else {
                            Some(hold_lo)
                        };
                        spawn(
                            &mut rng,
                            &mut resize_rng,
                            &mut events,
                            round,
                            hold,
                            config.resize_rate,
                        );
                    }
                }
            }
            ArrivalModel::Incremental {
                every_rounds,
                hold_rounds,
            } => {
                if *every_rounds == 0 || *hold_rounds == 0 {
                    return Err(invalid(
                        "Incremental needs every_rounds >= 1 and hold_rounds >= 1".into(),
                    ));
                }
                let mut round = *every_rounds;
                while round < config.horizon_rounds {
                    spawn(
                        &mut rng,
                        &mut resize_rng,
                        &mut events,
                        round,
                        Some(*hold_rounds),
                        config.resize_rate,
                    );
                    round += every_rounds;
                }
            }
            ArrivalModel::IncrAndKeep { every_rounds } => {
                if *every_rounds == 0 {
                    return Err(invalid("IncrAndKeep needs every_rounds >= 1".into()));
                }
                let mut round = *every_rounds;
                while round < config.horizon_rounds {
                    spawn(
                        &mut rng,
                        &mut resize_rng,
                        &mut events,
                        round,
                        None,
                        config.resize_rate,
                    );
                    round += every_rounds;
                }
            }
            ArrivalModel::Trace { demand } => {
                if demand.is_empty() {
                    return Err(invalid("trace demand curve is empty".into()));
                }
                if let Some(bad) = demand.iter().find(|v| !v.is_finite() || **v < 0.0) {
                    return Err(invalid(format!("bad trace demand value {bad}")));
                }
                // LIFO stack of currently active slots the trace controls.
                let mut stack: Vec<SliceId> = (0..initial.len()).map(SliceId).collect();
                for round in 0..config.horizon_rounds {
                    let target = demand[round.min(demand.len() - 1)].round() as usize;
                    while stack.len() < target {
                        let slice = SliceId(next_id);
                        next_id += 1;
                        events.push(ScheduledEvent {
                            round,
                            event: SliceEvent::Arrive {
                                slice,
                                request: config.template,
                            },
                        });
                        stack.push(slice);
                    }
                    while stack.len() > target {
                        let slice = stack
                            .pop()
                            .expect("invariant: stack longer than target is non-empty");
                        events.push(ScheduledEvent {
                            round,
                            event: SliceEvent::Depart { slice },
                        });
                    }
                }
            }
        }
        Self::scripted(initial, config.horizon_rounds, events)
    }

    /// Builds a trace-driven plan from CSV text: `round,target_slices`
    /// rows (the [`edgeslice_netsim::CsvTrace`] format), one row per
    /// round; the plan horizon is the trace length.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::InvalidWorkloadPlan`] on malformed rows
    /// or an inconsistent resulting plan.
    pub fn from_trace_csv(
        initial: Vec<SliceRequest>,
        text: &str,
        template: &SliceRequest,
    ) -> Result<Self, EdgeSliceError> {
        let trace =
            edgeslice_netsim::CsvTrace::parse(text).map_err(EdgeSliceError::InvalidWorkloadPlan)?;
        let demand: Vec<f64> = (0..trace.len())
            .map(|i| edgeslice_netsim::TrafficSource::mean_rate(&trace, i))
            .collect();
        Self::from_demand(initial, demand, template)
    }

    /// Builds a trace-driven plan from a JSON array of per-round target
    /// slice counts (e.g. `[2, 3, 3, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::InvalidWorkloadPlan`] on malformed JSON
    /// or an inconsistent resulting plan.
    pub fn from_trace_json(
        initial: Vec<SliceRequest>,
        text: &str,
        template: &SliceRequest,
    ) -> Result<Self, EdgeSliceError> {
        let demand: Vec<f64> = serde_json::from_str(text)
            .map_err(|e| EdgeSliceError::InvalidWorkloadPlan(format!("bad JSON trace: {e}")))?;
        Self::from_demand(initial, demand, template)
    }

    /// Shared trace-curve constructor behind the CSV/JSON fronts.
    fn from_demand(
        initial: Vec<SliceRequest>,
        demand: Vec<f64>,
        template: &SliceRequest,
    ) -> Result<Self, EdgeSliceError> {
        let horizon = demand.len();
        Self::generate(
            initial,
            &WorkloadConfig {
                seed: 0, // the Trace model consumes no randomness
                horizon_rounds: horizon,
                model: ArrivalModel::Trace { demand },
                template: *template,
                rate_range: (template.expected_rate, template.expected_rate),
                hold_rounds: (0, 0),
                resize_rate: 0.0,
            },
        )
    }

    /// Structural validation; every constructor funnels through this.
    fn validate(&self) -> Result<(), EdgeSliceError> {
        let invalid = |msg: String| EdgeSliceError::InvalidWorkloadPlan(msg);
        if self.horizon_rounds == 0 {
            return Err(invalid("horizon_rounds must be at least 1".into()));
        }
        let check_request = |who: &str, r: &SliceRequest| {
            if !r.expected_rate.is_finite() || r.expected_rate < 0.0 {
                return Err(invalid(format!(
                    "{who}: bad expected_rate {}",
                    r.expected_rate
                )));
            }
            if !r.sla.umin.is_finite() {
                return Err(invalid(format!("{who}: non-finite Umin {}", r.sla.umin)));
            }
            Ok(())
        };
        for (i, r) in self.initial.iter().enumerate() {
            check_request(&format!("initial slice {i}"), r)?;
        }
        let capacity = self.capacity();
        let mut next_arrival = self.initial.len();
        let mut arrived = vec![true; self.initial.len()];
        arrived.resize(capacity, false);
        let mut departed = vec![false; capacity];
        for (pos, ev) in self.events.iter().enumerate() {
            if ev.round >= self.horizon_rounds {
                return Err(invalid(format!(
                    "event {pos} at round {} is past the horizon ({})",
                    ev.round, self.horizon_rounds
                )));
            }
            let slice = ev.event.slice();
            match &ev.event {
                SliceEvent::Arrive { request, .. } => {
                    if slice.0 != next_arrival {
                        return Err(invalid(format!(
                            "arrival {pos} has slot id {} but the next free slot is {next_arrival}",
                            slice.0
                        )));
                    }
                    check_request(&format!("arrival for slice {}", slice.0), request)?;
                    arrived[slice.0] = true;
                    next_arrival += 1;
                }
                SliceEvent::Resize {
                    new_rate, new_sla, ..
                } => {
                    if slice.0 >= capacity || !arrived[slice.0] {
                        return Err(invalid(format!(
                            "resize {pos} targets slice {} before it arrives",
                            slice.0
                        )));
                    }
                    if departed[slice.0] {
                        return Err(invalid(format!(
                            "resize {pos} targets slice {} after it departs",
                            slice.0
                        )));
                    }
                    if !new_rate.is_finite() || *new_rate < 0.0 {
                        return Err(invalid(format!("resize {pos}: bad rate {new_rate}")));
                    }
                    if !new_sla.umin.is_finite() {
                        return Err(invalid(format!("resize {pos}: non-finite Umin")));
                    }
                }
                SliceEvent::Depart { .. } => {
                    if slice.0 >= capacity || !arrived[slice.0] {
                        return Err(invalid(format!(
                            "departure {pos} targets slice {} before it arrives",
                            slice.0
                        )));
                    }
                    if departed[slice.0] {
                        return Err(invalid(format!(
                            "departure {pos} targets slice {} twice",
                            slice.0
                        )));
                    }
                    departed[slice.0] = true;
                }
            }
        }
        Ok(())
    }

    /// The initial (round-0, pre-run) slice requests.
    pub fn initial(&self) -> &[SliceRequest] {
        &self.initial
    }

    /// The scheduled lifecycle events, sorted by round.
    pub fn events(&self) -> &[ScheduledEvent] {
        &self.events
    }

    /// Rounds the plan covers.
    pub fn horizon_rounds(&self) -> usize {
        self.horizon_rounds
    }

    /// Number of initial slices.
    pub fn n_initial(&self) -> usize {
        self.initial.len()
    }

    /// Total slot count: initial slices plus every planned arrival. This
    /// is the slice dimension the system must be constructed with.
    pub fn capacity(&self) -> usize {
        self.initial.len()
            + self
                .events
                .iter()
                .filter(|e| matches!(e.event, SliceEvent::Arrive { .. }))
                .count()
    }

    /// The complete slot list — one [`SliceSpec`] per slot, initial
    /// slices first, then arrivals in event order. Pass this as
    /// [`crate::SystemConfig::slices`] so the policy networks are sized
    /// for the whole run.
    pub fn slot_specs(&self) -> Vec<SliceSpec> {
        let mut specs: Vec<SliceSpec> = self
            .initial
            .iter()
            .enumerate()
            .map(|(i, r)| SliceSpec::new(SliceId(i), r.app, r.sla))
            .collect();
        for ev in &self.events {
            if let SliceEvent::Arrive { slice, request } = &ev.event {
                specs.push(SliceSpec::new(*slice, request.app, request.sla));
            }
        }
        specs
    }
}

/// Where a slot is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotStatus {
    /// The arrival has not fired yet.
    Pending,
    /// Admitted and serving.
    Active,
    /// The arrival was rejected; the slot is permanently retired.
    Rejected,
    /// Admitted, then torn down; the slot is permanently retired.
    Departed,
}

/// One slot's lifecycle outcome, reported in
/// [`crate::RunReport::slice_lifetimes`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceLifetime {
    /// The slot.
    pub slice: SliceId,
    /// Round the slice was admitted at (`Some(0)` for initial slices;
    /// `None` if rejected or never arrived).
    pub admit_round: Option<usize>,
    /// Round the slice departed at (`None` if it outlived the run).
    pub depart_round: Option<usize>,
    /// Why admission rejected the arrival, if it did.
    pub reject: Option<RejectReason>,
    /// Successful in-place resizes.
    pub resizes: usize,
}

/// What one round's lifecycle events did — the orchestrator maps these
/// onto coordinator mutations and monitor rows.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleAction {
    /// An arrival was admitted.
    Admitted {
        /// The new slice.
        slice: SliceId,
        /// Its negotiated SLA.
        sla: Sla,
    },
    /// An arrival was rejected.
    Rejected {
        /// The retired slot.
        slice: SliceId,
        /// The binding capacity domain.
        reason: RejectReason,
    },
    /// An admitted slice was resized in place.
    Resized {
        /// The resized slice.
        slice: SliceId,
        /// Its new SLA.
        sla: Sla,
    },
    /// A resize did not fit; the slice keeps its previous allocation
    /// (make-before-break).
    ResizeRejected {
        /// The unchanged slice.
        slice: SliceId,
        /// The binding capacity domain.
        reason: RejectReason,
    },
    /// An admitted slice was torn down.
    Departed {
        /// The retired slot.
        slice: SliceId,
    },
}

/// The absolute per-slot lifecycle state broadcast to workers each round.
///
/// Absolute (not a diff) so the payload is idempotent and self-healing: a
/// worker that missed rounds — dark through an outage, or respawned —
/// converges on the next broadcast it sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleState {
    /// Whether each slot is currently serving.
    pub active: Vec<bool>,
    /// Each slot's negotiated rate *override*: `Some(r)` for dynamic
    /// arrivals and resized slices (workers install `Poisson(r)`), `None`
    /// for slots still on their construction-time traffic source.
    /// Overrides survive departure so substrate RNG streams stay aligned.
    pub rates: Vec<Option<f64>>,
}

impl LifecycleState {
    /// Encodes the state for the wire (the opaque
    /// [`edgeslice_runtime::CoordInfo::lifecycle`] payload).
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("invariant: plain-data struct always serializes")
            .into_bytes()
    }

    /// Decodes a wire payload.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::Serialization`] on undecodable bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, EdgeSliceError> {
        serde_json::from_str(&String::from_utf8_lossy(bytes)).map_err(Into::into)
    }
}

/// Durable snapshot of a [`SliceLifecycle`] mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleSnapshot {
    /// The admission controller's committed-demand ledger.
    pub admission: AdmissionController,
    /// Per-slot status.
    pub status: Vec<SlotStatus>,
    /// Per-slot negotiated rates.
    pub rates: Vec<Option<f64>>,
    /// Per-slot broadcast rate overrides (see [`LifecycleState::rates`]).
    pub overrides: Vec<Option<f64>>,
    /// Per-slot live SLAs.
    pub slas: Vec<Sla>,
    /// Per-slot lifetime rows.
    pub lifetimes: Vec<SliceLifetime>,
    /// Events consumed so far.
    pub cursor: usize,
}

/// The online lifecycle state machine: a [`WorkloadPlan`] replayed round
/// by round through an [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct SliceLifecycle {
    plan: WorkloadPlan,
    admission: AdmissionController,
    status: Vec<SlotStatus>,
    /// Negotiated rate per slot (always `Some` once admitted) — what
    /// release/resize settle demand against.
    rates: Vec<Option<f64>>,
    /// Broadcast overrides: `None` for initial slots never resized (they
    /// keep their configured traffic source on the workers).
    overrides: Vec<Option<f64>>,
    slas: Vec<Sla>,
    lifetimes: Vec<SliceLifetime>,
    cursor: usize,
}

impl SliceLifecycle {
    /// Builds the state machine and admits the plan's initial slices
    /// (recorded as round-0 admissions; an initial slice the controller
    /// cannot fit is a round-0 rejection, not an error).
    pub fn new(plan: WorkloadPlan, mut admission: AdmissionController) -> Self {
        let capacity = plan.capacity();
        let slot_specs = plan.slot_specs();
        let mut status = vec![SlotStatus::Pending; capacity];
        let mut rates: Vec<Option<f64>> = vec![None; capacity];
        let overrides: Vec<Option<f64>> = vec![None; capacity];
        let slas: Vec<Sla> = slot_specs.iter().map(|s| s.sla).collect();
        let mut lifetimes: Vec<SliceLifetime> = (0..capacity)
            .map(|i| SliceLifetime {
                slice: SliceId(i),
                admit_round: None,
                depart_round: None,
                reject: None,
                resizes: 0,
            })
            .collect();
        for (i, request) in plan.initial().iter().enumerate() {
            match admission.decide_as(SliceId(i), request) {
                Ok(_) => {
                    status[i] = SlotStatus::Active;
                    rates[i] = Some(request.expected_rate);
                    lifetimes[i].admit_round = Some(0);
                }
                Err(reason) => {
                    status[i] = SlotStatus::Rejected;
                    lifetimes[i].reject = Some(reason);
                }
            }
        }
        Self {
            plan,
            admission,
            status,
            rates,
            overrides,
            slas,
            lifetimes,
            cursor: 0,
        }
    }

    /// Applies every event scheduled at or before `round` that has not
    /// fired yet, returning the resulting transitions in event order.
    /// Events targeting retired slots (rejected arrivals, departed
    /// slices) are no-ops.
    pub fn apply_round(&mut self, round: usize) -> Vec<LifecycleAction> {
        let mut actions = Vec::new();
        while self.cursor < self.plan.events.len() && self.plan.events[self.cursor].round <= round {
            let ev = self.plan.events[self.cursor].clone();
            self.cursor += 1;
            let i = ev.event.slice().0;
            match ev.event {
                SliceEvent::Arrive { slice, request } => {
                    if self.status[i] != SlotStatus::Pending {
                        continue;
                    }
                    match self.admission.decide_as(slice, &request) {
                        Ok(spec) => {
                            self.status[i] = SlotStatus::Active;
                            self.rates[i] = Some(request.expected_rate);
                            self.overrides[i] = Some(request.expected_rate);
                            self.slas[i] = spec.sla;
                            self.lifetimes[i].admit_round = Some(round);
                            actions.push(LifecycleAction::Admitted {
                                slice,
                                sla: spec.sla,
                            });
                        }
                        Err(reason) => {
                            self.status[i] = SlotStatus::Rejected;
                            self.lifetimes[i].reject = Some(reason);
                            actions.push(LifecycleAction::Rejected { slice, reason });
                        }
                    }
                }
                SliceEvent::Resize {
                    slice,
                    new_rate,
                    new_sla,
                } => {
                    if self.status[i] != SlotStatus::Active {
                        continue;
                    }
                    let old_rate = self.rates[i]
                        .expect("invariant: an Active slot always has a negotiated rate");
                    match self.admission.resize(slice, old_rate, new_rate, new_sla) {
                        Ok(spec) => {
                            self.rates[i] = Some(new_rate);
                            self.overrides[i] = Some(new_rate);
                            self.slas[i] = spec.sla;
                            self.lifetimes[i].resizes += 1;
                            actions.push(LifecycleAction::Resized {
                                slice,
                                sla: spec.sla,
                            });
                        }
                        Err(EdgeSliceError::AdmissionRejected { reason, .. }) => {
                            actions.push(LifecycleAction::ResizeRejected { slice, reason });
                        }
                        Err(_) => {
                            // Unreachable while the Active invariant holds;
                            // treat as a no-op rather than poison the round.
                        }
                    }
                }
                SliceEvent::Depart { slice } => {
                    if self.status[i] != SlotStatus::Active {
                        continue;
                    }
                    let rate = self.rates[i]
                        .expect("invariant: an Active slot always has a negotiated rate");
                    if self.admission.release(slice, rate).is_ok() {
                        self.status[i] = SlotStatus::Departed;
                        self.lifetimes[i].depart_round = Some(round);
                        actions.push(LifecycleAction::Departed { slice });
                    }
                }
            }
        }
        actions
    }

    /// The absolute per-slot state to broadcast this round.
    pub fn state(&self) -> LifecycleState {
        LifecycleState {
            active: self
                .status
                .iter()
                .map(|s| *s == SlotStatus::Active)
                .collect(),
            rates: self.overrides.clone(),
        }
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &WorkloadPlan {
        &self.plan
    }

    /// Per-slot lifetime rows (admit round, depart round, reject reason,
    /// resize count).
    pub fn lifetimes(&self) -> &[SliceLifetime] {
        &self.lifetimes
    }

    /// Each slot's live SLA (initial spec until admission/resize changes
    /// it).
    pub fn slas(&self) -> &[Sla] {
        &self.slas
    }

    /// Slots ever admitted.
    pub fn admitted_count(&self) -> usize {
        self.lifetimes
            .iter()
            .filter(|l| l.admit_round.is_some())
            .count()
    }

    /// Slots whose arrival was rejected.
    pub fn rejected_count(&self) -> usize {
        self.lifetimes.iter().filter(|l| l.reject.is_some()).count()
    }

    /// Slots admitted and later torn down.
    pub fn departed_count(&self) -> usize {
        self.lifetimes
            .iter()
            .filter(|l| l.depart_round.is_some())
            .count()
    }

    /// Slots currently serving.
    pub fn active_count(&self) -> usize {
        self.status
            .iter()
            .filter(|s| **s == SlotStatus::Active)
            .count()
    }

    /// Captures the machine's durable state.
    pub fn snapshot(&self) -> LifecycleSnapshot {
        LifecycleSnapshot {
            admission: self.admission.clone(),
            status: self.status.clone(),
            rates: self.rates.clone(),
            overrides: self.overrides.clone(),
            slas: self.slas.clone(),
            lifetimes: self.lifetimes.clone(),
            cursor: self.cursor,
        }
    }

    /// Restores a snapshot taken from the *same plan*.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::SnapshotMismatch`] if the snapshot's
    /// shape does not match the plan's capacity.
    pub fn restore(&mut self, snap: LifecycleSnapshot) -> Result<(), EdgeSliceError> {
        let capacity = self.plan.capacity();
        if snap.status.len() != capacity
            || snap.rates.len() != capacity
            || snap.overrides.len() != capacity
            || snap.slas.len() != capacity
            || snap.lifetimes.len() != capacity
            || snap.cursor > self.plan.events.len()
        {
            return Err(EdgeSliceError::SnapshotMismatch {
                reason: format!(
                    "lifecycle snapshot covers {} slots / cursor {}, plan has {} slots / {} events",
                    snap.status.len(),
                    snap.cursor,
                    capacity,
                    self.plan.events.len()
                ),
            });
        }
        self.admission = snap.admission;
        self.status = snap.status;
        self.rates = snap.rates;
        self.overrides = snap.overrides;
        self.slas = snap.slas;
        self.lifetimes = snap.lifetimes;
        self.cursor = snap.cursor;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeslice_netsim::AppProfile;

    fn req(rate: f64) -> SliceRequest {
        SliceRequest {
            app: AppProfile::traffic_heavy(),
            expected_rate: rate,
            sla: Sla::paper(),
        }
    }

    fn compute_req(rate: f64) -> SliceRequest {
        SliceRequest {
            app: AppProfile::compute_heavy(),
            expected_rate: rate,
            sla: Sla::paper(),
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let cfg = WorkloadConfig::prototype(42, 12);
        let a = WorkloadPlan::generate(vec![req(10.0), compute_req(10.0)], &cfg).unwrap();
        let b = WorkloadPlan::generate(vec![req(10.0), compute_req(10.0)], &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let base = WorkloadConfig::prototype(1, 32);
        let other = WorkloadConfig {
            seed: 2,
            ..base.clone()
        };
        let a = WorkloadPlan::generate(vec![req(10.0)], &base).unwrap();
        let b = WorkloadPlan::generate(vec![req(10.0)], &other).unwrap();
        assert_ne!(a, b, "32 rounds of Poisson churn should not collide");
    }

    #[test]
    fn disabling_resizes_does_not_shift_arrival_stream() {
        let with = WorkloadConfig::prototype(7, 16);
        let without = WorkloadConfig {
            resize_rate: 0.0,
            ..with.clone()
        };
        let a = WorkloadPlan::generate(vec![req(10.0)], &with).unwrap();
        let b = WorkloadPlan::generate(vec![req(10.0)], &without).unwrap();
        let arrivals = |p: &WorkloadPlan| -> Vec<(usize, SliceId)> {
            p.events()
                .iter()
                .filter(|e| matches!(e.event, SliceEvent::Arrive { .. }))
                .map(|e| (e.round, e.event.slice()))
                .collect()
        };
        assert_eq!(
            arrivals(&a),
            arrivals(&b),
            "guarded draws: the resize gate must not consume arrival randomness"
        );
    }

    #[test]
    fn incremental_holds_then_departs() {
        let cfg = WorkloadConfig {
            model: ArrivalModel::Incremental {
                every_rounds: 2,
                hold_rounds: 3,
            },
            resize_rate: 0.0,
            ..WorkloadConfig::prototype(3, 10)
        };
        let plan = WorkloadPlan::generate(vec![req(10.0)], &cfg).unwrap();
        let arrives: Vec<usize> = plan
            .events()
            .iter()
            .filter(|e| matches!(e.event, SliceEvent::Arrive { .. }))
            .map(|e| e.round)
            .collect();
        assert_eq!(arrives, vec![2, 4, 6, 8]);
        let departs: Vec<usize> = plan
            .events()
            .iter()
            .filter(|e| matches!(e.event, SliceEvent::Depart { .. }))
            .map(|e| e.round)
            .collect();
        assert_eq!(departs, vec![5, 7, 9], "round-8 arrival outlives the run");
        assert_eq!(plan.capacity(), 5);
    }

    #[test]
    fn incr_and_keep_never_departs() {
        let cfg = WorkloadConfig {
            model: ArrivalModel::IncrAndKeep { every_rounds: 3 },
            resize_rate: 0.0,
            ..WorkloadConfig::prototype(3, 10)
        };
        let plan = WorkloadPlan::generate(vec![req(10.0)], &cfg).unwrap();
        assert!(plan
            .events()
            .iter()
            .all(|e| !matches!(e.event, SliceEvent::Depart { .. })));
        assert_eq!(plan.capacity(), 4);
    }

    #[test]
    fn trace_curve_tracks_target_counts() {
        let plan = WorkloadPlan::from_trace_json(
            vec![req(10.0), compute_req(10.0)],
            "[2, 4, 4, 1, 3]",
            &req(8.0),
        )
        .unwrap();
        // Round 1: +2 arrivals; round 3: -3 departures (LIFO: slots 3, 2,
        // then initial slot 1); round 4: +2 arrivals into fresh slots.
        assert_eq!(plan.capacity(), 6);
        let by_round: Vec<(usize, bool)> = plan
            .events()
            .iter()
            .map(|e| (e.round, matches!(e.event, SliceEvent::Arrive { .. })))
            .collect();
        assert_eq!(
            by_round,
            vec![
                (1, true),
                (1, true),
                (3, false),
                (3, false),
                (3, false),
                (4, true),
                (4, true)
            ]
        );
        assert_eq!(plan.events()[2].event.slice(), SliceId(3));
        assert_eq!(plan.events()[4].event.slice(), SliceId(1));
    }

    #[test]
    fn csv_trace_parses_like_json() {
        let initial = vec![req(10.0)];
        let csv = WorkloadPlan::from_trace_csv(
            initial.clone(),
            "# round,target\n0,1\n1,2\n2,1\n",
            &req(8.0),
        )
        .unwrap();
        let json = WorkloadPlan::from_trace_json(initial, "[1, 2, 1]", &req(8.0)).unwrap();
        assert_eq!(csv, json);
    }

    #[test]
    fn scripted_rejects_out_of_sequence_slots() {
        let err = WorkloadPlan::scripted(
            vec![req(10.0)],
            4,
            vec![ScheduledEvent {
                round: 1,
                event: SliceEvent::Arrive {
                    slice: SliceId(5),
                    request: req(8.0),
                },
            }],
        )
        .unwrap_err();
        assert!(
            matches!(err, EdgeSliceError::InvalidWorkloadPlan(_)),
            "{err}"
        );
    }

    #[test]
    fn scripted_rejects_resize_before_arrival_and_past_horizon() {
        let err = WorkloadPlan::scripted(
            vec![req(10.0)],
            4,
            vec![ScheduledEvent {
                round: 0,
                event: SliceEvent::Resize {
                    slice: SliceId(1),
                    new_rate: 5.0,
                    new_sla: Sla::paper(),
                },
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("before it arrives"));

        let err = WorkloadPlan::scripted(
            vec![req(10.0)],
            4,
            vec![ScheduledEvent {
                round: 9,
                event: SliceEvent::Depart { slice: SliceId(0) },
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("past the horizon"));
    }

    #[test]
    fn scripted_rejects_double_departure() {
        let depart = |round| ScheduledEvent {
            round,
            event: SliceEvent::Depart { slice: SliceId(0) },
        };
        let err =
            WorkloadPlan::scripted(vec![req(10.0)], 4, vec![depart(1), depart(2)]).unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn lifecycle_admits_initial_slices_at_round_zero() {
        let plan = WorkloadPlan::static_only(vec![req(10.0), compute_req(10.0)], 4).unwrap();
        let lc = SliceLifecycle::new(plan, AdmissionController::prototype());
        assert_eq!(lc.admitted_count(), 2);
        assert_eq!(lc.active_count(), 2);
        let state = lc.state();
        assert_eq!(state.active, vec![true, true]);
        // Initial slices keep their configured traffic source: no
        // override, so a static plan stays byte-identical to a static run.
        assert_eq!(state.rates, vec![None, None]);
    }

    #[test]
    fn lifecycle_walks_admit_resize_depart() {
        let plan = WorkloadPlan::scripted(
            vec![req(10.0)],
            6,
            vec![
                ScheduledEvent {
                    round: 1,
                    event: SliceEvent::Arrive {
                        slice: SliceId(1),
                        request: compute_req(10.0),
                    },
                },
                ScheduledEvent {
                    round: 2,
                    event: SliceEvent::Resize {
                        slice: SliceId(1),
                        new_rate: 12.0,
                        new_sla: Sla::new(-40.0),
                    },
                },
                ScheduledEvent {
                    round: 4,
                    event: SliceEvent::Depart { slice: SliceId(1) },
                },
            ],
        )
        .unwrap();
        let mut lc = SliceLifecycle::new(plan, AdmissionController::prototype());
        assert!(lc.apply_round(0).is_empty());
        let acts = lc.apply_round(1);
        assert!(matches!(
            acts.as_slice(),
            [LifecycleAction::Admitted {
                slice: SliceId(1),
                ..
            }]
        ));
        let acts = lc.apply_round(2);
        assert!(
            matches!(&acts[..], [LifecycleAction::Resized { slice: SliceId(1), sla }] if sla.umin == -40.0)
        );
        assert_eq!(lc.state().rates[1], Some(12.0));
        assert!(lc.apply_round(3).is_empty());
        let acts = lc.apply_round(4);
        assert!(matches!(
            acts.as_slice(),
            [LifecycleAction::Departed { slice: SliceId(1) }]
        ));
        assert_eq!(lc.state().active, vec![true, false]);
        // Rates survive departure so worker RNG streams stay aligned.
        assert_eq!(lc.state().rates[1], Some(12.0));
        let row = lc.lifetimes()[1];
        assert_eq!(row.admit_round, Some(1));
        assert_eq!(row.depart_round, Some(4));
        assert_eq!(row.resizes, 1);
    }

    #[test]
    fn rejected_arrival_retires_the_slot_and_orphans_later_events() {
        // Fill the radio domain, then try one more traffic-heavy slice.
        let initial: Vec<SliceRequest> = (0..8).map(|_| req(10.0)).collect();
        let n = initial.len();
        let plan = WorkloadPlan::scripted(
            initial,
            6,
            vec![
                ScheduledEvent {
                    round: 1,
                    event: SliceEvent::Arrive {
                        slice: SliceId(n),
                        request: req(10.0),
                    },
                },
                ScheduledEvent {
                    round: 3,
                    event: SliceEvent::Depart { slice: SliceId(n) },
                },
            ],
        )
        .unwrap();
        let mut lc = SliceLifecycle::new(plan, AdmissionController::prototype());
        assert!(
            lc.rejected_count() + lc.admitted_count() == n,
            "every initial slot decided"
        );
        let rejected_before = lc.rejected_count();
        let acts = lc.apply_round(1);
        assert!(matches!(
            acts.as_slice(),
            [LifecycleAction::Rejected {
                reason: RejectReason::RadioExhausted { .. },
                ..
            }]
        ));
        assert_eq!(lc.rejected_count(), rejected_before + 1);
        // The departure now targets a retired slot: a no-op.
        assert!(lc.apply_round(3).is_empty());
    }

    #[test]
    fn lifecycle_state_round_trips_the_wire() {
        let state = LifecycleState {
            active: vec![true, false, true],
            rates: vec![Some(10.0), None, Some(7.5)],
        };
        let bytes = state.encode();
        assert_eq!(LifecycleState::decode(&bytes).unwrap(), state);
        assert!(LifecycleState::decode(b"not json").is_err());
    }

    #[test]
    fn snapshot_restores_mid_plan_state() {
        let cfg = WorkloadConfig::prototype(11, 10);
        let plan = WorkloadPlan::generate(vec![req(10.0), compute_req(10.0)], &cfg).unwrap();
        let mut a = SliceLifecycle::new(plan.clone(), AdmissionController::prototype());
        for round in 0..5 {
            a.apply_round(round);
        }
        let snap = a.snapshot();
        let mut b = SliceLifecycle::new(plan, AdmissionController::prototype());
        b.restore(snap).unwrap();
        for round in 5..10 {
            assert_eq!(a.apply_round(round), b.apply_round(round));
        }
        assert_eq!(a.state(), b.state());
        assert_eq!(a.lifetimes(), b.lifetimes());
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let plan = WorkloadPlan::static_only(vec![req(10.0)], 4).unwrap();
        let mut lc = SliceLifecycle::new(plan.clone(), AdmissionController::prototype());
        let mut snap = lc.snapshot();
        snap.status.push(SlotStatus::Pending);
        assert!(matches!(
            lc.restore(snap),
            Err(EdgeSliceError::SnapshotMismatch { .. })
        ));
        let mut snap = SliceLifecycle::new(plan, AdmissionController::prototype()).snapshot();
        snap.cursor = 99;
        assert!(lc.restore(snap).is_err());
    }

    #[test]
    fn slot_specs_cover_initial_plus_arrivals_in_order() {
        let cfg = WorkloadConfig::prototype(5, 12);
        let plan = WorkloadPlan::generate(vec![req(10.0), compute_req(10.0)], &cfg).unwrap();
        let specs = plan.slot_specs();
        assert_eq!(specs.len(), plan.capacity());
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.id, SliceId(i));
        }
    }
}
