//! Slice admission control over the SR interface (paper Sec. V-D).
//!
//! The paper's SR (slice request) interface lets tenants request slices and
//! negotiate SLAs; the network operator must decide whether a new slice
//! fits. This module implements the natural admission policy for the
//! EdgeSlice model: estimate each slice's per-domain resource demand from
//! its application profile and expected traffic, and admit a request only
//! if the residual capacity in every domain of every RA can absorb it with
//! a safety margin. (Admission control is the operator-side complement the
//! paper leaves to the SR interface; STORNS [41] is its related work.)

use edgeslice_netsim::{AppProfile, RaCapacities};
use serde::{Deserialize, Serialize};

use crate::{Sla, SliceId, SliceSpec};

/// A tenant's slice request: the SR-interface message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceRequest {
    /// The application the slice will carry.
    pub app: AppProfile,
    /// Expected mean task arrivals per interval, per RA.
    pub expected_rate: f64,
    /// Requested SLA.
    pub sla: Sla,
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The radio domain cannot absorb the demand.
    RadioExhausted {
        /// Fraction of the cell the request needs.
        needed: f64,
        /// Fraction still unallocated.
        available: f64,
    },
    /// The transport domain cannot absorb the demand.
    TransportExhausted {
        /// Fraction of the link the request needs.
        needed: f64,
        /// Fraction still unallocated.
        available: f64,
    },
    /// The computing domain cannot absorb the demand.
    ComputingExhausted {
        /// Fraction of the GPU the request needs.
        needed: f64,
        /// Fraction still unallocated.
        available: f64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (domain, needed, available) = match self {
            RejectReason::RadioExhausted { needed, available } => ("radio", needed, available),
            RejectReason::TransportExhausted { needed, available } => {
                ("transport", needed, available)
            }
            RejectReason::ComputingExhausted { needed, available } => {
                ("computing", needed, available)
            }
        };
        write!(
            f,
            "{domain} exhausted: request needs {needed:.2} of capacity, {available:.2} available"
        )
    }
}

/// Per-domain fractional demand of one slice at a target utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandEstimate {
    /// Fraction of the RA's radio capacity.
    pub radio: f64,
    /// Fraction of the RA's transport capacity.
    pub transport: f64,
    /// Fraction of the RA's computing capacity.
    pub compute: f64,
}

impl DemandEstimate {
    /// Estimates the share of each domain a slice needs so that its service
    /// rate is `rate / utilization` (i.e. the queue's utilization factor is
    /// `utilization < 1`).
    ///
    /// The estimate assumes each domain is provisioned independently: the
    /// share of domain `d` must satisfy `rate · t_d / share ≤ utilization`
    /// where `t_d` is the domain's per-task time at full allocation.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilization < 1` and `rate ≥ 0`.
    pub fn for_app(
        app: &AppProfile,
        rate: f64,
        capacities: &RaCapacities,
        utilization: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&utilization) && utilization > 0.0,
            "bad utilization"
        );
        assert!(rate >= 0.0 && rate.is_finite(), "bad rate");
        let radio_t = app.radio_bits() / (capacities.radio_mbps * 1e6);
        let transport_t = app.transport_bits() / (capacities.transport_mbps * 1e6);
        let compute_t = app.compute_gflops() / capacities.compute_gflops_s;
        // Deliberately unclamped: a share above 1.0 means the demand exceeds
        // the whole domain and must fail admission rather than masquerade as
        // "exactly full capacity".
        Self {
            radio: rate * radio_t / utilization,
            transport: rate * transport_t / utilization,
            compute: rate * compute_t / utilization,
        }
    }

    /// The demand as a `[radio, transport, compute]` array.
    pub fn as_array(&self) -> [f64; 3] {
        [self.radio, self.transport, self.compute]
    }
}

/// The operator-side admission controller.
///
/// Serializable so dynamic-workload runs can embed the committed-demand
/// ledger in durable snapshots and resume admission decisions exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    capacities: RaCapacities,
    /// Target per-domain utilization for admitted slices (headroom for
    /// traffic variance and the DRL agent's transient exploration).
    utilization: f64,
    /// Committed per-domain fractions, `[radio, transport, compute]`.
    committed: [f64; 3],
    admitted: Vec<SliceSpec>,
}

impl AdmissionController {
    /// Creates a controller over the given RA capacities. `utilization` is
    /// the per-domain load target (e.g. 0.7).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilization < 1`.
    pub fn new(capacities: RaCapacities, utilization: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&utilization) && utilization > 0.0,
            "bad utilization"
        );
        Self {
            capacities,
            utilization,
            committed: [0.0; 3],
            admitted: Vec::new(),
        }
    }

    /// The prototype controller: Table II capacities, 70% load target.
    pub fn prototype() -> Self {
        Self::new(RaCapacities::prototype(), 0.7)
    }

    /// Slices admitted so far, in admission order.
    pub fn admitted(&self) -> &[SliceSpec] {
        &self.admitted
    }

    /// Residual per-domain fraction available to future slices.
    pub fn residual(&self) -> [f64; 3] {
        let [radio, transport, computing] = self.committed;
        [1.0 - radio, 1.0 - transport, 1.0 - computing]
    }

    /// Decides a request: on admission the demand is committed and the new
    /// slice's spec (with the next free [`SliceId`]) is returned.
    ///
    /// # Errors
    ///
    /// Returns the binding [`RejectReason`] if any domain lacks capacity.
    pub fn decide(&mut self, request: &SliceRequest) -> Result<SliceSpec, RejectReason> {
        self.decide_as(SliceId(self.admitted.len()), request)
    }

    /// Decides a request for a *caller-chosen* [`SliceId`] — the dynamic
    /// workload generator pre-assigns slot ids at plan time, so re-admission
    /// after an unrelated release must not recycle a departed slice's id.
    ///
    /// # Errors
    ///
    /// Returns the binding [`RejectReason`] if any domain lacks capacity.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already admitted.
    pub fn decide_as(
        &mut self,
        id: SliceId,
        request: &SliceRequest,
    ) -> Result<SliceSpec, RejectReason> {
        assert!(
            self.admitted.iter().all(|s| s.id != id),
            "slice id {} is already admitted",
            id.0
        );
        let demand = DemandEstimate::for_app(
            &request.app,
            request.expected_rate,
            &self.capacities,
            self.utilization,
        );
        if let Some(reason) = self.binding_reject(&demand) {
            return Err(reason);
        }
        for (c, v) in self.committed.iter_mut().zip(demand.as_array()) {
            *c += v;
        }
        let spec = SliceSpec::new(id, request.app, request.sla);
        self.admitted.push(spec);
        Ok(spec)
    }

    /// The domain (if any) whose residual capacity cannot absorb `demand`.
    fn binding_reject(&self, demand: &DemandEstimate) -> Option<RejectReason> {
        let [radio_free, transport_free, computing_free] = self.residual();
        let [radio_need, transport_need, computing_need] = demand.as_array();
        if radio_need > radio_free + 1e-12 {
            return Some(RejectReason::RadioExhausted {
                needed: radio_need,
                available: radio_free,
            });
        }
        if transport_need > transport_free + 1e-12 {
            return Some(RejectReason::TransportExhausted {
                needed: transport_need,
                available: transport_free,
            });
        }
        if computing_need > computing_free + 1e-12 {
            return Some(RejectReason::ComputingExhausted {
                needed: computing_need,
                available: computing_free,
            });
        }
        None
    }

    /// Resizes an admitted slice in place — make-before-break: the old
    /// commitment is released, the new demand is tried against the
    /// residual, and on rejection the old commitment is re-applied so the
    /// slice keeps serving under its previous SLA untouched.
    ///
    /// On success the stored spec is replaced (same id, new SLA) and
    /// returned.
    ///
    /// # Errors
    ///
    /// * [`crate::EdgeSliceError::SliceNotAdmitted`] if `slice` is unknown;
    /// * [`crate::EdgeSliceError::AdmissionRejected`] if the new demand does
    ///   not fit — the previous commitment is restored exactly.
    pub fn resize(
        &mut self,
        slice: SliceId,
        old_rate: f64,
        new_rate: f64,
        new_sla: crate::Sla,
    ) -> Result<SliceSpec, crate::EdgeSliceError> {
        let pos = self
            .admitted
            .iter()
            .position(|s| s.id == slice)
            .ok_or(crate::EdgeSliceError::SliceNotAdmitted { slice })?;
        let app = self.admitted[pos].app;
        let old = DemandEstimate::for_app(&app, old_rate, &self.capacities, self.utilization);
        let new = DemandEstimate::for_app(&app, new_rate, &self.capacities, self.utilization);
        let before = self.committed;
        for (c, v) in self.committed.iter_mut().zip(old.as_array()) {
            *c = (*c - v).max(0.0);
        }
        if let Some(reason) = self.binding_reject(&new) {
            self.committed = before;
            return Err(crate::EdgeSliceError::AdmissionRejected { slice, reason });
        }
        for (c, v) in self.committed.iter_mut().zip(new.as_array()) {
            *c += v;
        }
        self.admitted[pos] = SliceSpec::new(slice, app, new_sla);
        Ok(self.admitted[pos])
    }

    /// Releases a slice's committed demand (tenant teardown over SR).
    ///
    /// # Errors
    ///
    /// Returns [`crate::EdgeSliceError::SliceNotAdmitted`] if the slice is
    /// unknown, leaving the controller unchanged.
    pub fn release(
        &mut self,
        slice: SliceId,
        expected_rate: f64,
    ) -> Result<(), crate::EdgeSliceError> {
        let pos = self
            .admitted
            .iter()
            .position(|s| s.id == slice)
            .ok_or(crate::EdgeSliceError::SliceNotAdmitted { slice })?;
        let spec = self.admitted.remove(pos);
        let demand =
            DemandEstimate::for_app(&spec.app, expected_rate, &self.capacities, self.utilization);
        for (c, v) in self.committed.iter_mut().zip(demand.as_array()) {
            *c = (*c - v).max(0.0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(app: AppProfile, rate: f64) -> SliceRequest {
        SliceRequest {
            app,
            expected_rate: rate,
            sla: Sla::paper(),
        }
    }

    #[test]
    fn demand_estimate_scales_with_rate() {
        let caps = RaCapacities::prototype();
        let lo = DemandEstimate::for_app(&AppProfile::traffic_heavy(), 5.0, &caps, 0.7);
        let hi = DemandEstimate::for_app(&AppProfile::traffic_heavy(), 10.0, &caps, 0.7);
        assert!((hi.radio - 2.0 * lo.radio).abs() < 1e-12);
        assert!(
            hi.radio > hi.compute,
            "traffic-heavy app is radio-dominated"
        );
    }

    #[test]
    fn compute_heavy_app_demands_gpu() {
        let caps = RaCapacities::prototype();
        let d = DemandEstimate::for_app(&AppProfile::compute_heavy(), 10.0, &caps, 0.7);
        assert!(d.compute > d.radio);
        assert!(d.compute > d.transport);
    }

    #[test]
    fn admits_the_experimental_pair() {
        let mut ctl = AdmissionController::prototype();
        assert!(ctl
            .decide(&request(AppProfile::traffic_heavy(), 10.0))
            .is_ok());
        assert!(ctl
            .decide(&request(AppProfile::compute_heavy(), 10.0))
            .is_ok());
        assert_eq!(ctl.admitted().len(), 2);
        assert_eq!(ctl.admitted()[1].id, SliceId(1));
    }

    #[test]
    fn rejects_when_radio_is_exhausted() {
        let mut ctl = AdmissionController::prototype();
        // Traffic-heavy slices until the cell runs out.
        let mut admitted = 0;
        loop {
            match ctl.decide(&request(AppProfile::traffic_heavy(), 10.0)) {
                Ok(_) => admitted += 1,
                Err(reason) => {
                    assert!(
                        matches!(reason, RejectReason::RadioExhausted { .. }),
                        "{reason}"
                    );
                    break;
                }
            }
            assert!(admitted < 100, "should eventually reject");
        }
        assert!(admitted >= 1);
        // Residual radio is below one more slice's demand.
        let d = DemandEstimate::for_app(
            &AppProfile::traffic_heavy(),
            10.0,
            &RaCapacities::prototype(),
            0.7,
        );
        assert!(ctl.residual()[0] < d.radio);
    }

    #[test]
    fn release_restores_capacity() {
        let mut ctl = AdmissionController::prototype();
        let spec = ctl
            .decide(&request(AppProfile::traffic_heavy(), 10.0))
            .unwrap();
        let before = ctl.residual();
        ctl.release(spec.id, 10.0).unwrap();
        let after = ctl.residual();
        assert!(after[0] > before[0]);
        assert!((after[0] - 1.0).abs() < 1e-9);
        assert!(ctl.admitted().is_empty());
    }

    #[test]
    fn release_of_unknown_slice_is_an_error() {
        let mut ctl = AdmissionController::prototype();
        let err = ctl.release(SliceId(9), 10.0).unwrap_err();
        assert!(matches!(
            err,
            crate::EdgeSliceError::SliceNotAdmitted { slice: SliceId(9) }
        ));
        assert!(err.to_string().contains("slice"));
    }

    #[test]
    fn double_release_is_rejected_and_leaves_ledger_unchanged() {
        let mut ctl = AdmissionController::prototype();
        let spec = ctl
            .decide(&request(AppProfile::traffic_heavy(), 10.0))
            .unwrap();
        ctl.release(spec.id, 10.0).unwrap();
        let residual = ctl.residual();
        let err = ctl.release(spec.id, 10.0).unwrap_err();
        assert!(matches!(
            err,
            crate::EdgeSliceError::SliceNotAdmitted { slice } if slice == spec.id
        ));
        assert_eq!(ctl.residual(), residual, "failed release must not mutate");
    }

    #[test]
    fn readmission_after_release_does_not_recycle_ids() {
        let mut ctl = AdmissionController::prototype();
        let a = ctl
            .decide_as(SliceId(0), &request(AppProfile::traffic_heavy(), 10.0))
            .unwrap();
        ctl.release(a.id, 10.0).unwrap();
        // The workload generator pre-assigns the *next* slot id; the
        // departed id 0 must stay retired.
        let b = ctl
            .decide_as(SliceId(1), &request(AppProfile::compute_heavy(), 10.0))
            .unwrap();
        assert_eq!(b.id, SliceId(1));
        assert_eq!(ctl.admitted().len(), 1);
        assert_eq!(ctl.admitted()[0].id, SliceId(1));
    }

    #[test]
    fn repeated_admit_release_cycles_do_not_drift_residual_capacity() {
        let mut ctl = AdmissionController::prototype();
        let start = ctl.residual();
        for i in 0..1000 {
            let spec = ctl
                .decide_as(SliceId(i), &request(AppProfile::traffic_heavy(), 7.3))
                .unwrap();
            ctl.release(spec.id, 7.3).unwrap();
        }
        let end = ctl.residual();
        for (s, e) in start.iter().zip(end) {
            assert!(
                (s - e).abs() < 1e-9,
                "residual drifted over admit/release cycles: {start:?} -> {end:?}"
            );
        }
        assert!(ctl.admitted().is_empty());
    }

    #[test]
    fn resize_grows_and_shrinks_committed_demand() {
        let mut ctl = AdmissionController::prototype();
        let spec = ctl
            .decide(&request(AppProfile::traffic_heavy(), 10.0))
            .unwrap();
        let at_10 = ctl.residual();
        let new_sla = Sla::new(0.9 * Sla::paper().umin);
        let grown = ctl.resize(spec.id, 10.0, 20.0, new_sla).unwrap();
        assert_eq!(grown.id, spec.id);
        assert_eq!(grown.sla, new_sla);
        assert!(ctl.residual()[0] < at_10[0], "growth commits more radio");
        ctl.resize(spec.id, 20.0, 10.0, Sla::paper()).unwrap();
        for (a, b) in at_10.iter().zip(ctl.residual()) {
            assert!((a - b).abs() < 1e-9, "shrink back must restore residual");
        }
    }

    #[test]
    fn rejected_resize_is_make_before_break() {
        let mut ctl = AdmissionController::prototype();
        let spec = ctl
            .decide(&request(AppProfile::traffic_heavy(), 10.0))
            .unwrap();
        let before = ctl.residual();
        // A rate the radio domain cannot absorb even with slice 0 released.
        let err = ctl.resize(spec.id, 10.0, 1e6, Sla::paper()).unwrap_err();
        assert!(matches!(
            err,
            crate::EdgeSliceError::AdmissionRejected {
                slice,
                reason: RejectReason::RadioExhausted { .. },
            } if slice == spec.id
        ));
        assert_eq!(
            ctl.residual(),
            before,
            "rejected resize must leave the old commitment serving"
        );
        assert_eq!(ctl.admitted()[0].sla, Sla::paper());
    }

    #[test]
    fn resize_of_unknown_slice_is_an_error() {
        let mut ctl = AdmissionController::prototype();
        let err = ctl.resize(SliceId(4), 1.0, 2.0, Sla::paper()).unwrap_err();
        assert!(matches!(
            err,
            crate::EdgeSliceError::SliceNotAdmitted { slice: SliceId(4) }
        ));
    }

    #[test]
    fn controller_round_trips_through_serde() {
        let mut ctl = AdmissionController::prototype();
        ctl.decide(&request(AppProfile::traffic_heavy(), 10.0))
            .unwrap();
        let json = serde_json::to_string(&ctl).unwrap();
        let back: AdmissionController = serde_json::from_str(&json).unwrap();
        assert_eq!(back.residual(), ctl.residual());
        assert_eq!(back.admitted(), ctl.admitted());
    }

    #[test]
    fn reject_reason_displays() {
        let r = RejectReason::ComputingExhausted {
            needed: 0.8,
            available: 0.1,
        };
        let s = r.to_string();
        assert!(s.contains("computing") && s.contains("0.80"));
    }
}
