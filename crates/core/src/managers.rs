//! The resource managers and interfaces (paper Sec. V, Fig. 2).
//!
//! The orchestration agent's decision reaches the infrastructure through
//! three managers — radio (VR-R), transport (VR-T) and computing (VR-C) —
//! each a middleware over its platform (OAI / ODL / CUDA in the prototype;
//! the [`edgeslice_netsim`] simulators here). The managers hide platform
//! mechanics (PRB mapping, make-before-break meter swaps, kernel splits)
//! behind a uniform *virtual resource* abstraction.

use edgeslice_netsim::{DomainShares, ResourceAutonomy, SliceRates};
use serde::{Deserialize, Serialize};

use crate::{RaId, ResourceKind, SliceId};

/// A VR (virtual resource) message: one slice's end-to-end allocation in
/// one RA for the next time interval (the agent's action, Eq. 14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceAllocation {
    /// The slice being configured.
    pub slice: SliceId,
    /// Its per-domain shares.
    pub shares: DomainShares,
}

/// Errors raised by the manager layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManagerError {
    /// An allocation referenced a slice the RA does not serve.
    UnknownSlice {
        /// The offending slice.
        slice: SliceId,
        /// Slices actually served.
        served: usize,
    },
    /// The same slice appeared twice in one update.
    DuplicateSlice {
        /// The duplicated slice.
        slice: SliceId,
    },
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::UnknownSlice { slice, served } => {
                write!(f, "{slice} is not served by this RA ({served} slices)")
            }
            ManagerError::DuplicateSlice { slice } => {
                write!(f, "{slice} appears more than once in the update")
            }
        }
    }
}

impl std::error::Error for ManagerError {}

/// The manager stack of one RA: applies VR updates atomically across all
/// three domains and reports the achieved rates back (the information the
/// system monitor collects over the VR interface).
#[derive(Debug)]
pub struct ResourceManagers {
    ra_id: RaId,
    ra: ResourceAutonomy,
    /// Last rates produced, for the monitor.
    last_rates: Vec<SliceRates>,
}

impl ResourceManagers {
    /// Wraps the manager stack around an RA's substrates.
    pub fn new(ra_id: RaId, ra: ResourceAutonomy) -> Self {
        Self { ra_id, ra, last_rates: Vec::new() }
    }

    /// Builds the prototype manager stack for RA `ra_id` serving
    /// `n_slices` slices.
    pub fn prototype(ra_id: RaId, n_slices: usize) -> Self {
        Self::new(ra_id, ResourceAutonomy::prototype(ra_id.0, n_slices))
    }

    /// The RA this stack manages.
    pub fn ra_id(&self) -> RaId {
        self.ra_id
    }

    /// The underlying substrates (read-only).
    pub fn substrates(&self) -> &ResourceAutonomy {
        &self.ra
    }

    /// Applies a full VR update (one allocation per served slice; order
    /// free) and returns the achieved per-slice rates in slice order.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError`] if a slice is unknown, duplicated, or
    /// missing.
    pub fn apply(&mut self, updates: &[SliceAllocation]) -> Result<Vec<SliceRates>, ManagerError> {
        let n = self.ra.n_slices();
        let mut shares = vec![None; n];
        for u in updates {
            if u.slice.0 >= n {
                return Err(ManagerError::UnknownSlice { slice: u.slice, served: n });
            }
            if shares[u.slice.0].replace(u.shares).is_some() {
                return Err(ManagerError::DuplicateSlice { slice: u.slice });
            }
        }
        // Slices without an explicit update keep nothing (zero resources):
        // the radio manager simply does not schedule them.
        let shares: Vec<DomainShares> = shares
            .into_iter()
            .map(|s| s.unwrap_or(DomainShares::new(0.0, 0.0, 0.0)))
            .collect();
        let rates = self.ra.apply(&shares);
        self.last_rates = rates.clone();
        Ok(rates)
    }

    /// The rates achieved by the most recent update.
    pub fn last_rates(&self) -> &[SliceRates] {
        &self.last_rates
    }

    /// The rate a slice obtains in one domain, from the last update.
    pub fn rate_of(&self, slice: SliceId, kind: ResourceKind) -> Option<f64> {
        self.last_rates.get(slice.0).map(|r| match kind {
            ResourceKind::Radio => r.radio_mbps,
            ResourceKind::Transport => r.transport_mbps,
            ResourceKind::Computing => r.compute_gflops_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn managers() -> ResourceManagers {
        ResourceManagers::prototype(RaId(0), 2)
    }

    #[test]
    fn apply_routes_to_all_domains() {
        let mut m = managers();
        let rates = m
            .apply(&[
                SliceAllocation { slice: SliceId(0), shares: DomainShares::new(0.6, 0.5, 0.25) },
                SliceAllocation { slice: SliceId(1), shares: DomainShares::new(0.4, 0.5, 0.75) },
            ])
            .unwrap();
        assert_eq!(rates.len(), 2);
        assert!(rates[0].radio_mbps > rates[1].radio_mbps);
        assert!(rates[1].compute_gflops_s > rates[0].compute_gflops_s);
        assert_eq!(m.rate_of(SliceId(0), ResourceKind::Transport), Some(rates[0].transport_mbps));
    }

    #[test]
    fn unknown_slice_is_rejected() {
        let mut m = managers();
        let err = m
            .apply(&[SliceAllocation { slice: SliceId(9), shares: DomainShares::new(0.1, 0.1, 0.1) }])
            .unwrap_err();
        assert!(matches!(err, ManagerError::UnknownSlice { .. }));
        assert!(err.to_string().contains("slice-9"));
    }

    #[test]
    fn duplicate_slice_is_rejected() {
        let mut m = managers();
        let a = SliceAllocation { slice: SliceId(0), shares: DomainShares::new(0.1, 0.1, 0.1) };
        assert!(matches!(m.apply(&[a, a]), Err(ManagerError::DuplicateSlice { .. })));
    }

    #[test]
    fn missing_slice_gets_zero_resources() {
        let mut m = managers();
        let rates = m
            .apply(&[SliceAllocation { slice: SliceId(0), shares: DomainShares::new(0.5, 0.5, 0.5) }])
            .unwrap();
        assert_eq!(rates[1].radio_mbps, 0.0);
        assert_eq!(rates[1].transport_mbps, 0.0);
        assert_eq!(rates[1].compute_gflops_s, 0.0);
    }
}
