//! The resource managers and interfaces (paper Sec. V, Fig. 2).
//!
//! The orchestration agent's decision reaches the infrastructure through
//! three managers — radio (VR-R), transport (VR-T) and computing (VR-C) —
//! each a middleware over its platform (OAI / ODL / CUDA in the prototype;
//! the [`edgeslice_netsim`] simulators here). The managers hide platform
//! mechanics (PRB mapping, make-before-break meter swaps, kernel splits)
//! behind a uniform *virtual resource* abstraction.

use edgeslice_netsim::{DomainShares, ReconfigMode, ResourceAutonomy, SliceRates};
use serde::{Deserialize, Serialize};

use crate::{RaId, ResourceKind, SliceId};

/// A VR (virtual resource) message: one slice's end-to-end allocation in
/// one RA for the next time interval (the agent's action, Eq. 14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceAllocation {
    /// The slice being configured.
    pub slice: SliceId,
    /// Its per-domain shares.
    pub shares: DomainShares,
}

/// Errors raised by the manager layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManagerError {
    /// An allocation referenced a slice the RA does not serve.
    UnknownSlice {
        /// The offending slice.
        slice: SliceId,
        /// Slices actually served.
        served: usize,
    },
    /// The same slice appeared twice in one update.
    DuplicateSlice {
        /// The duplicated slice.
        slice: SliceId,
    },
    /// A share component was non-finite or outside `[0, 1]` (possible when
    /// a [`DomainShares`] is built field-wise rather than via its clamping
    /// constructor).
    InvalidShare {
        /// The offending slice.
        slice: SliceId,
        /// The offending domain.
        kind: ResourceKind,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::UnknownSlice { slice, served } => {
                write!(f, "{slice} is not served by this RA ({served} slices)")
            }
            ManagerError::DuplicateSlice { slice } => {
                write!(f, "{slice} appears more than once in the update")
            }
            ManagerError::InvalidShare { slice, kind, value } => {
                write!(
                    f,
                    "{slice} {kind} share {value} is not a fraction in [0, 1]"
                )
            }
        }
    }
}

impl std::error::Error for ManagerError {}

/// The manager stack of one RA: applies VR updates atomically across all
/// three domains and reports the achieved rates back (the information the
/// system monitor collects over the VR interface).
///
/// # Make-before-break commits
///
/// [`apply`](Self::apply) is a two-phase commit. Phase 1 validates the
/// whole update (unknown slice, duplicate, non-finite share) without
/// touching any substrate; a rejection leaves the previously **committed**
/// configuration serving traffic untouched. Phase 2 installs the new
/// configuration; the transport domain swaps meters make-before-break
/// (parallel install, atomic repoint, old release) so the flow never goes
/// dark, with the modeled per-switch swap interval configurable via
/// [`set_reconfig_interval_s`](Self::set_reconfig_interval_s). Only after
/// the substrates accept the new configuration does it replace the
/// committed one; [`rollback`](Self::rollback) re-installs the committed
/// configuration explicitly.
#[derive(Debug)]
pub struct ResourceManagers {
    ra_id: RaId,
    ra: ResourceAutonomy,
    /// Last rates produced, for the monitor.
    last_rates: Vec<SliceRates>,
    /// The configuration currently serving traffic (phase-2 survivor).
    committed: Vec<DomainShares>,
}

impl ResourceManagers {
    /// Wraps the manager stack around an RA's substrates.
    pub fn new(ra_id: RaId, ra: ResourceAutonomy) -> Self {
        Self {
            ra_id,
            ra,
            last_rates: Vec::new(),
            committed: Vec::new(),
        }
    }

    /// Builds the prototype manager stack for RA `ra_id` serving
    /// `n_slices` slices.
    pub fn prototype(ra_id: RaId, n_slices: usize) -> Self {
        Self::new(ra_id, ResourceAutonomy::prototype(ra_id.0, n_slices))
    }

    /// The RA this stack manages.
    pub fn ra_id(&self) -> RaId {
        self.ra_id
    }

    /// The underlying substrates (read-only).
    pub fn substrates(&self) -> &ResourceAutonomy {
        &self.ra
    }

    /// Applies a full VR update (one allocation per served slice; order
    /// free) and returns the achieved per-slice rates in slice order.
    ///
    /// Two-phase: the whole update is validated before any substrate is
    /// touched, so a rejection leaves the previously committed allocation
    /// serving traffic (see the type docs).
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError`] if a slice is unknown or duplicated, or a
    /// share is not a fraction in `[0, 1]`.
    pub fn apply(&mut self, updates: &[SliceAllocation]) -> Result<Vec<SliceRates>, ManagerError> {
        // Phase 1: validate everything; no substrate is touched on error.
        let shares = self.validate(updates)?;
        // Phase 2: commit. The transport manager swaps meters
        // make-before-break inside `ResourceAutonomy::apply`, so the old
        // configuration serves until the new one is installed.
        let rates = self.ra.apply(&shares);
        self.committed = shares;
        self.last_rates = rates.clone();
        Ok(rates)
    }

    /// Phase-1 validation: resolves `updates` into a dense per-slice share
    /// vector without touching the substrates.
    fn validate(&self, updates: &[SliceAllocation]) -> Result<Vec<DomainShares>, ManagerError> {
        let n = self.ra.n_slices();
        let mut shares = vec![None; n];
        for u in updates {
            if u.slice.0 >= n {
                return Err(ManagerError::UnknownSlice {
                    slice: u.slice,
                    served: n,
                });
            }
            for kind in ResourceKind::ALL {
                let v = u.shares.as_array()[kind.index()];
                if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                    return Err(ManagerError::InvalidShare {
                        slice: u.slice,
                        kind,
                        value: v,
                    });
                }
            }
            if shares[u.slice.0].replace(u.shares).is_some() {
                return Err(ManagerError::DuplicateSlice { slice: u.slice });
            }
        }
        // Slices without an explicit update keep nothing (zero resources):
        // the radio manager simply does not schedule them.
        Ok(shares
            .into_iter()
            .map(|s| s.unwrap_or(DomainShares::new(0.0, 0.0, 0.0)))
            .collect())
    }

    /// The configuration currently serving traffic (empty before the first
    /// successful [`apply`](Self::apply)).
    pub fn committed_shares(&self) -> &[DomainShares] {
        &self.committed
    }

    /// Re-installs the committed configuration (e.g. after an out-of-band
    /// substrate change) and refreshes the achieved rates. Returns `None`
    /// when nothing was ever committed.
    pub fn rollback(&mut self) -> Option<&[SliceRates]> {
        if self.committed.is_empty() {
            return None;
        }
        let shares = self.committed.clone();
        self.last_rates = self.ra.apply(&shares);
        Some(&self.last_rates)
    }

    /// Sets the transport reconfiguration strategy (default
    /// make-before-break).
    pub fn set_reconfig_mode(&mut self, mode: ReconfigMode) {
        self.ra.set_reconfig_mode(mode);
    }

    /// Sets the modeled per-switch meter delete–create interval, seconds —
    /// the outage each break-before-make swap would cost (and the window a
    /// make-before-break swap runs both configurations in parallel).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or non-finite.
    pub fn set_reconfig_interval_s(&mut self, seconds: f64) {
        self.ra.set_reconfig_interval_s(seconds);
    }

    /// The rates achieved by the most recent update.
    pub fn last_rates(&self) -> &[SliceRates] {
        &self.last_rates
    }

    /// The rate a slice obtains in one domain, from the last update.
    pub fn rate_of(&self, slice: SliceId, kind: ResourceKind) -> Option<f64> {
        self.last_rates.get(slice.0).map(|r| match kind {
            ResourceKind::Radio => r.radio_mbps,
            ResourceKind::Transport => r.transport_mbps,
            ResourceKind::Computing => r.compute_gflops_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn managers() -> ResourceManagers {
        ResourceManagers::prototype(RaId(0), 2)
    }

    #[test]
    fn apply_routes_to_all_domains() {
        let mut m = managers();
        let rates = m
            .apply(&[
                SliceAllocation {
                    slice: SliceId(0),
                    shares: DomainShares::new(0.6, 0.5, 0.25),
                },
                SliceAllocation {
                    slice: SliceId(1),
                    shares: DomainShares::new(0.4, 0.5, 0.75),
                },
            ])
            .unwrap();
        assert_eq!(rates.len(), 2);
        assert!(rates[0].radio_mbps > rates[1].radio_mbps);
        assert!(rates[1].compute_gflops_s > rates[0].compute_gflops_s);
        assert_eq!(
            m.rate_of(SliceId(0), ResourceKind::Transport),
            Some(rates[0].transport_mbps)
        );
    }

    #[test]
    fn unknown_slice_is_rejected() {
        let mut m = managers();
        let err = m
            .apply(&[SliceAllocation {
                slice: SliceId(9),
                shares: DomainShares::new(0.1, 0.1, 0.1),
            }])
            .unwrap_err();
        assert!(matches!(err, ManagerError::UnknownSlice { .. }));
        assert!(err.to_string().contains("slice-9"));
    }

    #[test]
    fn duplicate_slice_is_rejected() {
        let mut m = managers();
        let a = SliceAllocation {
            slice: SliceId(0),
            shares: DomainShares::new(0.1, 0.1, 0.1),
        };
        assert!(matches!(
            m.apply(&[a, a]),
            Err(ManagerError::DuplicateSlice { .. })
        ));
    }

    #[test]
    fn invalid_share_is_rejected() {
        let mut m = managers();
        let mut shares = DomainShares::new(0.2, 0.2, 0.2);
        shares.transport = f64::NAN;
        let err = m
            .apply(&[SliceAllocation {
                slice: SliceId(0),
                shares,
            }])
            .unwrap_err();
        assert!(matches!(
            err,
            ManagerError::InvalidShare {
                kind: ResourceKind::Transport,
                ..
            }
        ));
    }

    #[test]
    fn rejected_update_leaves_committed_allocation_serving() {
        let mut m = managers();
        let good = [
            SliceAllocation {
                slice: SliceId(0),
                shares: DomainShares::new(0.6, 0.5, 0.25),
            },
            SliceAllocation {
                slice: SliceId(1),
                shares: DomainShares::new(0.4, 0.5, 0.75),
            },
        ];
        let rates = m.apply(&good).unwrap();
        let committed = m.committed_shares().to_vec();

        // A bad update (out-of-range share, built field-wise) must not
        // disturb the committed configuration or the reported rates.
        let mut bad = DomainShares::new(0.0, 0.0, 0.0);
        bad.radio = 1.7;
        let err = m
            .apply(&[SliceAllocation {
                slice: SliceId(0),
                shares: bad,
            }])
            .unwrap_err();
        assert!(matches!(
            err,
            ManagerError::InvalidShare {
                kind: ResourceKind::Radio,
                ..
            }
        ));
        assert_eq!(m.committed_shares(), &committed[..]);
        assert_eq!(m.last_rates(), &rates[..]);

        // Same for an unknown slice mixed into an otherwise valid update.
        let err = m
            .apply(&[
                good[0],
                SliceAllocation {
                    slice: SliceId(5),
                    shares: DomainShares::new(0.1, 0.1, 0.1),
                },
            ])
            .unwrap_err();
        assert!(matches!(err, ManagerError::UnknownSlice { .. }));
        assert_eq!(m.committed_shares(), &committed[..]);

        // Explicit rollback re-installs the committed configuration.
        let rolled = m
            .rollback()
            .expect("a configuration was committed")
            .to_vec();
        assert_eq!(rolled, rates);
    }

    #[test]
    fn rollback_before_any_commit_is_none() {
        let mut m = managers();
        assert!(m.rollback().is_none());
        let _ = m.apply(&[SliceAllocation {
            slice: SliceId(9),
            shares: DomainShares::new(0.1, 0.1, 0.1),
        }]);
        assert!(
            m.rollback().is_none(),
            "a rejected first update commits nothing"
        );
    }

    #[test]
    fn missing_slice_gets_zero_resources() {
        let mut m = managers();
        let rates = m
            .apply(&[SliceAllocation {
                slice: SliceId(0),
                shares: DomainShares::new(0.5, 0.5, 0.5),
            }])
            .unwrap();
        assert_eq!(rates[1].radio_mbps, 0.0);
        assert_eq!(rates[1].transport_mbps, 0.0);
        assert_eq!(rates[1].compute_gflops_s, 0.0);
    }
}
