//! The per-RA slicing environment (paper Fig. 5) — the world an
//! orchestration agent interacts with.
//!
//! Each decision epoch is one time interval `t`: slice traffic arrives into
//! FIFO queues, the agent's action sets every slice's end-to-end resource
//! shares, the resulting per-task service time determines how much of each
//! queue drains, the slices report their performance `U`, and the reward is
//! Eq. 15. Training runs against the grid-search dataset + local linear
//! model (Sec. VI-B); evaluation can run against the physical RA substrates
//! instead.

use std::sync::Arc;

use edgeslice_netsim::{
    DomainShares, GridDataset, RaCapacities, ResourceAutonomy, ServiceQueue, TrafficSource,
};
use edgeslice_rl::{Environment, Step};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{reward, PerformanceFunction, ResourceKind, RewardParams, SliceSpec};

/// What the orchestration agent observes (Sec. VII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateSpec {
    /// EdgeSlice: queue lengths **and** coordinating information (Eq. 13).
    Full,
    /// EdgeSlice-NT: coordinating information only.
    CoordinationOnly,
}

/// How the environment maps an action to service times.
pub enum ServiceModel {
    /// The Fig. 5 training path: per-slice grid dataset + local linear
    /// regression.
    Dataset(Vec<GridDataset>),
    /// The prototype path: drive the physical RA substrates.
    Physical(Box<ResourceAutonomy>),
}

impl std::fmt::Debug for ServiceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceModel::Dataset(d) => write!(f, "ServiceModel::Dataset({} slices)", d.len()),
            ServiceModel::Physical(_) => write!(f, "ServiceModel::Physical"),
        }
    }
}

/// Configuration of a [`RaSliceEnv`].
#[derive(Clone)]
pub struct RaEnvConfig {
    /// The slices served in this RA.
    pub slices: Vec<SliceSpec>,
    /// The (hidden) performance function slices report with.
    pub perf: Arc<dyn PerformanceFunction>,
    /// Reward weights (Eq. 15).
    pub reward: RewardParams,
    /// Agent observability (EdgeSlice vs EdgeSlice-NT).
    pub state_spec: StateSpec,
    /// Length of one time interval, seconds (paper: 1 s).
    pub interval_s: f64,
    /// Queue-length normalization for the state vector.
    pub queue_norm: f64,
    /// Coordination-signal normalization for the state vector.
    pub coord_norm: f64,
    /// Range the per-slice coordinating signal `z − y` is sampled from at
    /// reset during offline training (the paper trains "under different
    /// coordinating information", Sec. VI-A).
    pub coord_sample_range: (f64, f64),
    /// Whether reset should randomize the coordinating signal (training) or
    /// keep the externally-set one (orchestration).
    pub randomize_coord: bool,
    /// Per-slice queue capacity in tasks: arrivals beyond it are dropped,
    /// like any real buffer. Also bounds the performance range seen by the
    /// learner.
    pub queue_capacity: f64,
    /// Squash the *training* reward with `asinh` to compress the huge
    /// dynamic range of Eq. 15 (quadratic in `U = −l^α`) — a monotone
    /// per-step transform that stabilizes the critic. Evaluation metrics
    /// (`advance`'s return and [`RaSliceEnv::last_performance`]) are never
    /// squashed.
    pub squash_training_reward: bool,
    /// Project the decoded shares onto per-resource capacity before they
    /// reach the substrates. This is the physical truth — the radio
    /// scheduler trims to the PRB grid and an over-subscribed link cannot
    /// deliver more than its rate — and it makes training consistent with
    /// deployment: the Eq. 15 capacity penalty is still computed on the
    /// *raw* action, so the agent is taught feasibility, but service never
    /// benefits from infeasible allocations.
    pub project_shares: bool,
}

impl std::fmt::Debug for RaEnvConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaEnvConfig")
            .field("slices", &self.slices.len())
            .field("perf", &self.perf.label())
            .field("state_spec", &self.state_spec)
            .field("interval_s", &self.interval_s)
            .finish_non_exhaustive()
    }
}

impl RaEnvConfig {
    /// The experiments' defaults: Eq. 15 weights, 1 s intervals, `T = 10`,
    /// full state, training-mode coordination sampling over
    /// `[Umin, 0] = [−50, 0]`.
    pub fn experiment(slices: Vec<SliceSpec>) -> Self {
        Self {
            slices,
            perf: Arc::new(crate::QueuePenalty::paper()),
            reward: RewardParams::paper(),
            state_spec: StateSpec::Full,
            interval_s: 1.0,
            queue_norm: 25.0,
            coord_norm: 50.0,
            coord_sample_range: (-100.0, 25.0),
            randomize_coord: true,
            queue_capacity: 200.0,
            squash_training_reward: true,
            project_shares: true,
        }
    }
}

/// The per-RA environment (Fig. 5).
pub struct RaSliceEnv {
    config: RaEnvConfig,
    traffic: Vec<Box<dyn TrafficSource + Send>>,
    model: ServiceModel,
    queues: Vec<ServiceQueue>,
    /// Coordinating information `z − y` per slice.
    coord: Vec<f64>,
    /// Interval index within the current period.
    t: usize,
    /// Global interval counter (drives trace position across periods).
    global_t: usize,
    /// Last per-slice performance `U^{(t)}`.
    last_perf: Vec<f64>,
    /// Last applied shares.
    last_shares: Vec<DomainShares>,
    /// Last per-slice service time, seconds.
    last_service: Vec<f64>,
    /// Per-domain capacity multipliers `[radio, transport, compute]` from
    /// fault injection (`1.0` when healthy): a share `x` of a degraded
    /// domain delivers what `x · scale` of the nominal capacity would.
    capacity_scale: [f64; 3],
    /// Per-slice activity flags (dynamic workloads): an inactive slot's
    /// shares are zeroed before the Eq. 15 penalty and before service, its
    /// traffic draw is discarded, and its performance is 0. Traffic is
    /// still *drawn* each interval so the round RNG stream is identical
    /// whatever the live slice set.
    active: Vec<bool>,
    /// Negotiated per-slice rate overrides: `Some(r)` replaces the
    /// construction-time source with `Poisson(r)` (dynamic admission or
    /// resize), `None` keeps the configured source.
    rate_overrides: Vec<Option<f64>>,
}

impl std::fmt::Debug for RaSliceEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaSliceEnv")
            .field("config", &self.config)
            .field("model", &self.model)
            .field("t", &self.t)
            .field("queues", &self.queue_lengths())
            .finish_non_exhaustive()
    }
}

impl RaSliceEnv {
    /// Builds a training environment over grid datasets generated from the
    /// prototype capacities.
    pub fn with_dataset(config: RaEnvConfig, traffic: Vec<Box<dyn TrafficSource + Send>>) -> Self {
        let caps = RaCapacities::prototype();
        let datasets = config
            .slices
            .iter()
            .map(|s| GridDataset::generate(s.app, caps))
            .collect();
        Self::new(config, traffic, ServiceModel::Dataset(datasets))
    }

    /// Builds an environment over explicit substrates.
    ///
    /// # Panics
    ///
    /// Panics if the traffic-source count differs from the slice count.
    pub fn new(
        config: RaEnvConfig,
        traffic: Vec<Box<dyn TrafficSource + Send>>,
        model: ServiceModel,
    ) -> Self {
        assert_eq!(
            traffic.len(),
            config.slices.len(),
            "one traffic source per slice"
        );
        let n = config.slices.len();
        let queues = vec![ServiceQueue::with_capacity(config.queue_capacity); n];
        Self {
            config,
            traffic,
            model,
            queues,
            coord: vec![0.0; n],
            t: 0,
            global_t: 0,
            last_perf: vec![0.0; n],
            last_shares: vec![DomainShares::new(0.0, 0.0, 0.0); n],
            last_service: vec![f64::INFINITY; n],
            capacity_scale: [1.0; 3],
            active: vec![true; n],
            rate_overrides: vec![None; n],
        }
    }

    /// Per-slice activity flags (all `true` for static workloads).
    pub fn slice_active(&self) -> &[bool] {
        &self.active
    }

    /// Per-slice negotiated rate overrides (`None` = configured source).
    pub fn rate_overrides(&self) -> &[Option<f64>] {
        &self.rate_overrides
    }

    /// Activates or deactivates slice `i`. Either transition flushes the
    /// slot's queue: a departing tenant takes its backlog with it, and an
    /// arriving one starts empty.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the slice capacity.
    pub fn set_slice_active(&mut self, i: usize, active: bool) {
        assert!(i < self.n_slices(), "slice {i} beyond capacity");
        if self.active[i] != active {
            self.queues[i].flush();
        }
        self.active[i] = active;
    }

    /// Installs the negotiated Poisson rate for slice `i` (dynamic
    /// admission or in-place resize).
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the slice capacity or `rate` is not a
    /// finite non-negative number.
    pub fn set_slice_rate(&mut self, i: usize, rate: f64) {
        assert!(i < self.n_slices(), "slice {i} beyond capacity");
        self.traffic[i] = Box::new(edgeslice_netsim::PoissonTraffic::new(rate));
        self.rate_overrides[i] = Some(rate);
    }

    /// Converges the environment onto an absolute lifecycle state from the
    /// coordinator (idempotent; diffs against local state so repeated
    /// applications are free and a worker that missed rounds self-heals).
    ///
    /// # Errors
    ///
    /// Returns [`crate::EdgeSliceError::SnapshotMismatch`] if the state is
    /// shaped for a different slice capacity; the environment is left
    /// untouched.
    pub fn apply_lifecycle(
        &mut self,
        state: &crate::workload::LifecycleState,
    ) -> Result<(), crate::EdgeSliceError> {
        let n = self.n_slices();
        if state.active.len() != n || state.rates.len() != n {
            return Err(crate::EdgeSliceError::SnapshotMismatch {
                reason: format!(
                    "lifecycle state covers {} slots, environment has {n}",
                    state.active.len()
                ),
            });
        }
        for i in 0..n {
            if let Some(rate) = state.rates[i] {
                if self.rate_overrides[i] != Some(rate) {
                    self.set_slice_rate(i, rate);
                }
            }
            if state.active[i] != self.active[i] {
                self.set_slice_active(i, state.active[i]);
            }
        }
        Ok(())
    }

    /// Restores lifecycle flags captured by a durable snapshot. Unlike
    /// [`RaSliceEnv::apply_lifecycle`] this never flushes queues — the
    /// snapshot's queues already reflect every past transition.
    ///
    /// # Panics
    ///
    /// Panics on a slice-capacity mismatch.
    pub fn restore_lifecycle(&mut self, active: &[bool], rates: &[Option<f64>]) {
        assert_eq!(active.len(), self.n_slices(), "active flag count mismatch");
        assert_eq!(rates.len(), self.n_slices(), "rate override count mismatch");
        self.active.copy_from_slice(active);
        for (i, rate) in rates.iter().enumerate() {
            if let Some(r) = rate {
                if self.rate_overrides[i] != Some(*r) {
                    self.traffic[i] = Box::new(edgeslice_netsim::PoissonTraffic::new(*r));
                    self.rate_overrides[i] = Some(*r);
                }
            }
        }
    }

    /// Scales each domain's capacity (fault injection; `[1.0; 3]` restores
    /// full capacity). Physical substrates scale inside the RA; dataset
    /// models scale the effective shares fed to the grid.
    ///
    /// # Panics
    ///
    /// Panics unless every multiplier is finite and in `(0, 1]`.
    pub fn set_capacity_scale(&mut self, scale: [f64; 3]) {
        for s in scale {
            assert!(
                s.is_finite() && s > 0.0 && s <= 1.0,
                "capacity scale {s} not in (0, 1]"
            );
        }
        if let ServiceModel::Physical(ra) = &mut self.model {
            ra.set_capacity_scale(scale);
        }
        self.capacity_scale = scale;
    }

    /// The per-domain capacity multipliers in effect.
    pub fn capacity_scale(&self) -> [f64; 3] {
        self.capacity_scale
    }

    /// Number of slices.
    pub fn n_slices(&self) -> usize {
        self.config.slices.len()
    }

    /// Current queue backlogs (the paper's `l`).
    pub fn queue_lengths(&self) -> Vec<f64> {
        self.queues.iter().map(ServiceQueue::backlog).collect()
    }

    /// Replaces the traffic sources (e.g. to sweep loads in an experiment).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_traffic(&mut self, traffic: Vec<Box<dyn TrafficSource + Send>>) {
        assert_eq!(
            traffic.len(),
            self.n_slices(),
            "one traffic source per slice"
        );
        self.traffic = traffic;
    }

    /// Sets the coordinating information `z − y` (one value per slice) —
    /// the RC-L message from the performance coordinator.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_coordination(&mut self, zy: &[f64]) {
        assert_eq!(zy.len(), self.coord.len(), "coordination length mismatch");
        self.coord.copy_from_slice(zy);
    }

    /// The coordinating information currently in effect.
    pub fn coordination(&self) -> &[f64] {
        &self.coord
    }

    /// Per-slice performance of the most recent interval.
    pub fn last_performance(&self) -> &[f64] {
        &self.last_perf
    }

    /// Shares applied in the most recent interval.
    pub fn last_shares(&self) -> &[DomainShares] {
        &self.last_shares
    }

    /// Per-slice service times of the most recent interval, seconds.
    pub fn last_service_times(&self) -> &[f64] {
        &self.last_service
    }

    /// The environment's state-spec.
    pub fn state_spec(&self) -> StateSpec {
        self.config.state_spec
    }

    /// Switches between training-mode (randomized coordination at reset)
    /// and orchestration-mode (externally controlled).
    pub fn set_randomize_coord(&mut self, randomize: bool) {
        self.config.randomize_coord = randomize;
    }

    /// Clears the queues (the orchestrator does this once at start-up, not
    /// between coordination rounds).
    pub fn clear_queues(&mut self) {
        for q in &mut self.queues {
            q.flush();
        }
    }

    /// The per-slice service queues, for durable snapshots. Together with
    /// [`RaSliceEnv::coordination`] and [`RaSliceEnv::global_t`] this is
    /// the complete round-boundary state of the environment: `observe`
    /// reads only queues + coordination, and traffic draws are a pure
    /// function of `global_t` plus the domain-separated round stream.
    pub fn queues(&self) -> &[ServiceQueue] {
        &self.queues
    }

    /// The global interval counter (trace position across rounds).
    pub fn global_t(&self) -> usize {
        self.global_t
    }

    /// Restores the round-boundary state captured by a durable snapshot:
    /// service queues, coordination vector, and trace position.
    ///
    /// # Panics
    ///
    /// Panics if `queues` or `coord` do not match the slice count.
    pub fn restore_round_state(
        &mut self,
        queues: Vec<ServiceQueue>,
        coord: &[f64],
        global_t: usize,
    ) {
        assert_eq!(queues.len(), self.n_slices(), "queue count mismatch");
        assert_eq!(coord.len(), self.n_slices(), "coordination length mismatch");
        self.queues = queues;
        self.coord = coord.to_vec();
        self.global_t = global_t;
    }

    /// Assembles the observation (Eq. 13), normalized.
    ///
    /// Both halves of the state saturate at the range the agent trained
    /// over: out-of-range signals (a coordination target beyond the
    /// sampled range, a queue beyond the training coverage) clamp to the
    /// nearest trained value instead of driving the actor into input
    /// regions it never saw — the deployed-policy analogue of input
    /// standardization.
    pub fn observe(&self) -> Vec<f64> {
        let mut s = Vec::with_capacity(self.state_dim());
        if self.config.state_spec == StateSpec::Full {
            // The queue observation spans the whole buffer range (the
            // capacity bound already saturates it physically).
            let max_obs = self.config.queue_capacity / self.config.queue_norm;
            for q in &self.queues {
                s.push((q.backlog() / self.config.queue_norm).min(max_obs));
            }
        }
        let (lo, hi) = self.config.coord_sample_range;
        for &c in &self.coord {
            s.push(c.clamp(lo, hi) / self.config.coord_norm);
        }
        s
    }

    /// Decodes a normalized action vector into per-slice domain shares
    /// (Eq. 14 layout: slice-major, `[radio, transport, compute]` per
    /// slice).
    pub fn decode_action(&self, action: &[f64]) -> Vec<DomainShares> {
        assert_eq!(action.len(), self.action_dim(), "action length mismatch");
        (0..self.n_slices())
            .map(|i| DomainShares::new(action[3 * i], action[3 * i + 1], action[3 * i + 2]))
            .collect()
    }

    /// Per-slice service times for a decoded action.
    fn service_times(&mut self, shares: &[DomainShares]) -> Vec<f64> {
        match &mut self.model {
            ServiceModel::Dataset(datasets) => {
                // A share `x` of a capacity scaled by `s` delivers what
                // `x·s` of the nominal capacity would; the grid is indexed
                // by nominal shares.
                let scale = self.capacity_scale;
                shares
                    .iter()
                    .zip(datasets.iter())
                    .map(|(sh, d)| {
                        let [radio, transport, computing] = sh.as_array();
                        let [rs, ts, cs] = scale;
                        d.predict([radio * rs, transport * ts, computing * cs])
                    })
                    .collect()
            }
            // The physical RA applies its own capacity scale internally.
            ServiceModel::Physical(ra) => {
                let apps: Vec<_> = self.config.slices.iter().map(|s| s.app).collect();
                ra.service_times(shares, &apps)
            }
        }
    }

    /// Runs one interval and returns `(reward, per-slice U)`; shared by the
    /// RL trait impl and the orchestrator loop.
    pub fn advance(&mut self, action: &[f64], rng: &mut StdRng) -> (f64, Vec<f64>) {
        // The Eq. 15 capacity penalty is computed on the raw action; the
        // substrates only ever see a feasible (projected) one. An inactive
        // slot's shares are zeroed first: a departed tenant neither holds
        // capacity nor pays the over-allocation penalty.
        let mut raw_shares = self.decode_action(action);
        for (sh, active) in raw_shares.iter_mut().zip(&self.active) {
            if !active {
                *sh = DomainShares::new(0.0, 0.0, 0.0);
            }
        }
        let shares = if self.config.project_shares {
            let mut columns: [Vec<f64>; ResourceKind::COUNT] =
                std::array::from_fn(|k| raw_shares.iter().map(|s| s.as_array()[k]).collect());
            for col in &mut columns {
                edgeslice_optim::project_capacity(col, 1.0);
            }
            let [radio_col, transport_col, computing_col] = &columns;
            (0..self.n_slices())
                .map(|i| DomainShares::new(radio_col[i], transport_col[i], computing_col[i]))
                .collect()
        } else {
            raw_shares.clone()
        };
        let service = self.service_times(&shares);

        // Queue dynamics: arrivals, then service at Δt / service_time.
        // Traffic is drawn for *every* slot — and discarded for inactive
        // ones — so the round RNG stream is identical whatever the live
        // slice set (the determinism contract under churn).
        let mut perf = Vec::with_capacity(self.n_slices());
        for (i, ((queue, traffic), &service_time)) in self
            .queues
            .iter_mut()
            .zip(&self.traffic)
            .zip(&service)
            .enumerate()
        {
            let arrivals = traffic.arrivals(self.global_t, rng);
            if !self.active[i] {
                perf.push(0.0);
                continue;
            }
            queue.arrive(arrivals);
            let capacity = if service_time.is_finite() && service_time > 0.0 {
                self.config.interval_s / service_time
            } else {
                0.0
            };
            queue.serve(capacity);
            perf.push(self.config.perf.evaluate(queue.backlog(), service_time));
        }

        // Eq. 15 reward: per-resource allocation sums vs unit capacity.
        let mut sums = [0.0; ResourceKind::COUNT];
        for sh in &raw_shares {
            let a = sh.as_array();
            for (s, v) in sums.iter_mut().zip(a) {
                *s += v;
            }
        }
        let r = reward(
            &self.config.reward,
            &perf,
            &self.coord,
            &sums,
            &[1.0, 1.0, 1.0],
        );

        self.last_perf = perf.clone();
        self.last_shares = shares;
        self.last_service = service;
        self.t += 1;
        self.global_t += 1;
        (r, perf)
    }
}

impl Environment for RaSliceEnv {
    fn state_dim(&self) -> usize {
        match self.config.state_spec {
            StateSpec::Full => 2 * self.n_slices(),
            StateSpec::CoordinationOnly => self.n_slices(),
        }
    }

    fn action_dim(&self) -> usize {
        self.n_slices() * ResourceKind::COUNT
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.t = 0;
        for q in &mut self.queues {
            q.flush();
            // A random initial backlog diversifies training starts and
            // covers the loaded states the deployed agent will encounter.
            q.arrive(rng.gen_range(0.0..20.0));
        }
        if self.config.randomize_coord {
            let (lo, hi) = self.config.coord_sample_range;
            for c in &mut self.coord {
                *c = rng.gen_range(lo..hi);
            }
        }
        self.observe()
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> Step {
        let (raw, _) = self.advance(action, rng);
        let reward = if self.config.squash_training_reward {
            raw.asinh()
        } else {
            raw
        };
        let done = self.t >= self.config.reward.period;
        Step {
            next_state: self.observe(),
            reward,
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeslice_netsim::PoissonTraffic;
    use rand::SeedableRng;

    fn env(spec: StateSpec) -> RaSliceEnv {
        let mut config = RaEnvConfig::experiment(vec![
            SliceSpec::experiment_slice1(),
            SliceSpec::experiment_slice2(),
        ]);
        config.state_spec = spec;
        RaSliceEnv::with_dataset(
            config,
            vec![
                Box::new(PoissonTraffic::paper()),
                Box::new(PoissonTraffic::paper()),
            ],
        )
    }

    #[test]
    fn dimensions_match_paper() {
        let full = env(StateSpec::Full);
        assert_eq!(full.state_dim(), 4); // 2 queues + 2 coordination signals
        assert_eq!(full.action_dim(), 6); // 2 slices × 3 resources
        let nt = env(StateSpec::CoordinationOnly);
        assert_eq!(nt.state_dim(), 2);
    }

    #[test]
    fn episode_ends_after_period() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut e = env(StateSpec::Full);
        e.reset(&mut rng);
        let mut steps = 0;
        loop {
            let s = e.step(&[0.4; 6], &mut rng);
            steps += 1;
            if s.done {
                break;
            }
        }
        assert_eq!(steps, RewardParams::paper().period);
    }

    #[test]
    fn starving_a_slice_grows_its_queue() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = env(StateSpec::Full);
        e.reset(&mut rng);
        // Slice 0 gets everything; slice 1 nothing.
        let action = [1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        for _ in 0..5 {
            e.step(&action, &mut rng);
        }
        let l = e.queue_lengths();
        assert!(l[1] > 20.0, "starved queue should grow, got {}", l[1]);
        assert!(l[0] < l[1]);
        // Starved performance is strongly negative.
        assert!(e.last_performance()[1] < -400.0);
    }

    #[test]
    fn over_allocation_is_penalized_in_reward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = env(StateSpec::Full);
        e.reset(&mut rng);
        e.set_randomize_coord(false);
        e.set_coordination(&[0.0, 0.0]);
        e.clear_queues();
        // Duplicate env to compare rewards on identical traffic.
        let (r_ok, _) = e.advance(&[0.5, 0.5, 0.5, 0.5, 0.5, 0.5], &mut rng);
        let mut rng2 = StdRng::seed_from_u64(2);
        let mut e2 = env(StateSpec::Full);
        e2.reset(&mut rng2);
        e2.set_randomize_coord(false);
        e2.set_coordination(&[0.0, 0.0]);
        e2.clear_queues();
        let (r_over, _) = e2.advance(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0], &mut rng2);
        // Over-allocation serves faster but pays β = 20 per unit excess ×
        // 3 resources = 60; it must not out-score the feasible action.
        assert!(r_ok > r_over, "feasible {r_ok} vs over-allocated {r_over}");
    }

    #[test]
    fn nt_state_excludes_queues() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = env(StateSpec::CoordinationOnly);
        e.set_randomize_coord(false);
        e.set_coordination(&[-10.0, -20.0]);
        e.reset(&mut rng);
        let s1 = e.observe();
        // Grow the queues; the observation must not change.
        for _ in 0..3 {
            e.step(&[0.0; 6], &mut rng);
        }
        let s2 = e.observe();
        assert_eq!(s1, s2);
    }

    #[test]
    fn coordination_enters_the_state_normalized() {
        let mut e = env(StateSpec::Full);
        e.set_coordination(&[-25.0, -50.0]);
        let s = e.observe();
        assert!((s[2] + 0.5).abs() < 1e-12);
        assert!((s[3] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn physical_model_agrees_with_dataset_on_grid_points() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = RaEnvConfig::experiment(vec![
            SliceSpec::experiment_slice1(),
            SliceSpec::experiment_slice2(),
        ]);
        let ra = ResourceAutonomy::prototype(0, 2);
        let mut phys = RaSliceEnv::new(
            config.clone(),
            vec![
                Box::new(PoissonTraffic::paper()),
                Box::new(PoissonTraffic::paper()),
            ],
            ServiceModel::Physical(Box::new(ra)),
        );
        let mut data = RaSliceEnv::with_dataset(
            config,
            vec![
                Box::new(PoissonTraffic::paper()),
                Box::new(PoissonTraffic::paper()),
            ],
        );
        phys.reset(&mut rng);
        let mut rng2 = StdRng::seed_from_u64(4);
        data.reset(&mut rng2);
        // An on-grid action whose radio share maps to whole PRBs
        // (0.6·25 ≈ 15, 0.4·25 = 10) keeps the two paths comparable.
        let action = [0.6, 0.5, 0.4, 0.4, 0.5, 0.6];
        phys.advance(&action, &mut rng);
        data.advance(&action, &mut rng2);
        for (a, b) in phys
            .last_service_times()
            .iter()
            .zip(data.last_service_times())
        {
            let rel = (a - b).abs() / b.max(1e-9);
            assert!(rel < 0.05, "physical {a} vs dataset {b}");
        }
    }
}
