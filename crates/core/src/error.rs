//! The unified typed error hierarchy for the orchestration stack.
//!
//! Every fallible operation across the crate funnels into
//! [`EdgeSliceError`] so callers — in particular the degradation policy in
//! the orchestrator — can branch on *variants* instead of parsing strings:
//! a rejected virtualized-resource update ([`EdgeSliceError::Manager`])
//! keeps the previous allocation serving traffic, a corrupt checkpoint
//! ([`EdgeSliceError::Checkpoint`]) blocks an RA rejoin, a numerical
//! failure in the optimization layer ([`EdgeSliceError::Optim`]) aborts the
//! round, and an exhausted staleness budget
//! ([`EdgeSliceError::RaUnavailable`]) declares the RA dead and triggers
//! slice redistribution.

use crate::checkpoint::CheckpointError;
use crate::ids::{RaId, SliceId};
use crate::managers::ManagerError;
use edgeslice_optim::OptimError;

/// The crate-wide error type unifying the layer-specific errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum EdgeSliceError {
    /// A virtualized-resource update was rejected by the resource managers
    /// (unknown/duplicate slice, non-finite share): the previous allocation
    /// stays in force.
    Manager(ManagerError),
    /// Policy checkpoint (de)serialization failed: the RA cannot be
    /// re-synced from this artifact.
    Checkpoint(CheckpointError),
    /// A numerical routine in the optimization layer failed.
    Optim(OptimError),
    /// Report/record JSON (de)serialization failed.
    Serialization(String),
    /// An RA missed more consecutive coordination rounds than the
    /// staleness budget allows and was declared dead.
    RaUnavailable {
        /// The RA that went silent.
        ra: RaId,
        /// Consecutive rounds without a report.
        missed_rounds: usize,
        /// The configured staleness budget, rounds.
        budget: usize,
    },
    /// A teardown referenced a slice that was never admitted.
    SliceNotAdmitted {
        /// The unknown slice.
        slice: SliceId,
    },
    /// A fault plan was internally inconsistent (e.g. an RA index beyond
    /// the system size, a non-finite degradation factor).
    InvalidFaultPlan(String),
    /// A workload plan was internally inconsistent (e.g. out-of-order
    /// arrival ids, an event past the horizon, a non-finite rate).
    InvalidWorkloadPlan(String),
    /// A slice request (fresh admission or an in-place resize) was
    /// rejected by the admission controller for lack of capacity.
    AdmissionRejected {
        /// The slice the request concerned.
        slice: SliceId,
        /// The binding capacity domain.
        reason: crate::admission::RejectReason,
    },
    /// An I/O operation on the durable checkpoint store failed.
    Io {
        /// The file or directory involved.
        path: std::path::PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A durable snapshot file failed structural validation (bad magic,
    /// truncation, CRC mismatch, undecodable payload) and must not be
    /// trusted; resume falls back to the previous valid snapshot.
    CorruptSnapshot {
        /// The rejected file.
        path: std::path::PathBuf,
        /// What failed to validate.
        reason: String,
    },
    /// A durable snapshot declares an envelope format version this build
    /// does not read.
    UnsupportedSnapshotVersion {
        /// The rejected file.
        path: std::path::PathBuf,
        /// Version declared by the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A durable snapshot was valid but describes a different system than
    /// the one resuming from it (RA count, period, policy kind).
    SnapshotMismatch {
        /// What differed.
        reason: String,
    },
    /// A networked-runtime transport operation failed (handshake,
    /// registration, framed send/receive) in a way the retry policy could
    /// not absorb; the typed cause distinguishes "network flaked" from
    /// "peer is gone".
    Transport(edgeslice_runtime::TransportError),
}

impl std::fmt::Display for EdgeSliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Manager(e) => write!(f, "resource-manager rejection: {e}"),
            Self::Checkpoint(e) => write!(f, "{e}"),
            Self::Optim(e) => write!(f, "optimization failure: {e}"),
            Self::Serialization(msg) => write!(f, "serialization failure: {msg}"),
            Self::RaUnavailable {
                ra,
                missed_rounds,
                budget,
            } => write!(
                f,
                "RA {} declared dead: missed {missed_rounds} consecutive rounds \
                 (staleness budget {budget})",
                ra.0
            ),
            Self::SliceNotAdmitted { slice } => {
                write!(f, "slice {} was never admitted", slice.0)
            }
            Self::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            Self::InvalidWorkloadPlan(msg) => write!(f, "invalid workload plan: {msg}"),
            Self::AdmissionRejected { slice, reason } => {
                write!(f, "slice {} rejected by admission: {reason}", slice.0)
            }
            Self::Io { path, source } => {
                write!(
                    f,
                    "checkpoint-store I/O failure at {}: {source}",
                    path.display()
                )
            }
            Self::CorruptSnapshot { path, reason } => {
                write!(f, "corrupt snapshot {}: {reason}", path.display())
            }
            Self::UnsupportedSnapshotVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "snapshot {} has unsupported format version {found} (this build reads {supported})",
                path.display()
            ),
            Self::SnapshotMismatch { reason } => {
                write!(f, "snapshot does not match this system: {reason}")
            }
            Self::Transport(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for EdgeSliceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Manager(e) => Some(e),
            Self::Checkpoint(e) => Some(e),
            Self::Optim(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            Self::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ManagerError> for EdgeSliceError {
    fn from(e: ManagerError) -> Self {
        Self::Manager(e)
    }
}

impl From<CheckpointError> for EdgeSliceError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<OptimError> for EdgeSliceError {
    fn from(e: OptimError) -> Self {
        Self::Optim(e)
    }
}

impl From<serde_json::Error> for EdgeSliceError {
    fn from(e: serde_json::Error) -> Self {
        Self::Serialization(e.to_string())
    }
}

impl From<edgeslice_runtime::TransportError> for EdgeSliceError {
    fn from(e: edgeslice_runtime::TransportError) -> Self {
        Self::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_layer_errors_with_sources() {
        let err: EdgeSliceError = ManagerError::DuplicateSlice { slice: SliceId(3) }.into();
        assert!(matches!(err, EdgeSliceError::Manager(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("resource-manager rejection"));

        let err: EdgeSliceError = OptimError::Singular { column: 2 }.into();
        assert!(matches!(err, EdgeSliceError::Optim(_)));

        let err = EdgeSliceError::RaUnavailable {
            ra: RaId(1),
            missed_rounds: 4,
            budget: 3,
        };
        assert!(err.to_string().contains("declared dead"));
        assert!(std::error::Error::source(&err).is_none());
    }
}
