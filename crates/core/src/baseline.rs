//! Baseline orchestration algorithms (paper Sec. VII-B).

use edgeslice_netsim::DomainShares;
use serde::{Deserialize, Serialize};

/// Traffic-aware resource orchestration (TARO): every resource is shared
/// proportionally to the slices' current queue lengths,
/// `x_{i,j}^{(t)} = Rtot_j · l_i / Σ_i l_i` — traffic-aware but blind to
/// the per-domain resource needs of each application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Taro;

impl Taro {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }

    /// Allocates all three resources proportionally to `queue_lengths`.
    /// With an empty system (all queues zero) the capacity is split evenly.
    pub fn allocate(&self, queue_lengths: &[f64]) -> Vec<DomainShares> {
        let total: f64 = queue_lengths.iter().map(|l| l.max(0.0)).sum();
        let n = queue_lengths.len().max(1);
        queue_lengths
            .iter()
            .map(|&l| {
                let share = if total > 0.0 {
                    l.max(0.0) / total
                } else {
                    1.0 / n as f64
                };
                DomainShares::new(share, share, share)
            })
            .collect()
    }

    /// The flat action-vector form of [`Taro::allocate`] (slice-major
    /// `[radio, transport, compute]` layout), for use wherever a learned
    /// policy's action is expected.
    pub fn action(&self, queue_lengths: &[f64]) -> Vec<f64> {
        self.allocate(queue_lengths)
            .iter()
            .flat_map(|s| s.as_array())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_proportional_to_queues() {
        let taro = Taro::new();
        let shares = taro.allocate(&[30.0, 10.0]);
        assert!((shares[0].radio - 0.75).abs() < 1e-12);
        assert!((shares[1].radio - 0.25).abs() < 1e-12);
        // Same ratio in every domain — TARO's defining blindness.
        assert_eq!(shares[0].radio, shares[0].transport);
        assert_eq!(shares[0].radio, shares[0].compute);
    }

    #[test]
    fn allocation_saturates_capacity() {
        let taro = Taro::new();
        for lens in [&[5.0, 5.0][..], &[100.0, 1.0], &[0.0, 7.0]] {
            let shares = taro.allocate(lens);
            let sum: f64 = shares.iter().map(|s| s.radio).sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "TARO always uses the full capacity"
            );
        }
    }

    #[test]
    fn empty_system_splits_evenly() {
        let taro = Taro::new();
        let shares = taro.allocate(&[0.0, 0.0, 0.0]);
        for s in shares {
            assert!((s.radio - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn action_vector_layout() {
        let taro = Taro::new();
        let a = taro.action(&[1.0, 3.0]);
        assert_eq!(a.len(), 6);
        assert!((a[0] - 0.25).abs() < 1e-12);
        assert!((a[3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn negative_queues_are_treated_as_empty() {
        let taro = Taro::new();
        let shares = taro.allocate(&[-5.0, 10.0]);
        assert_eq!(shares[0].radio, 0.0);
        assert!((shares[1].radio - 1.0).abs() < 1e-12);
    }
}
