//! The EdgeSlice resource-orchestration workflow (paper Alg. 1).
//!
//! A period `T` at a time, every RA's orchestration agent acts on its local
//! state under the current coordinating information; at the period's end
//! the performance coordinator runs the `z`/`y` updates and broadcasts
//! fresh `z − y`, iterating until the ADMM residuals converge.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use edgeslice_optim::{project_capacity, AdmmConfig, AdmmResiduals};
use edgeslice_rl::Technique;
use edgeslice_runtime::{
    caps, derive_stream_seed, par_map, Control, Engine, Lease, NetCoordinator, NodeInfo, RaReport,
    RoundCoordinator, RoundWorker, Scheduler, Supervisor, SupervisorConfig, Transport,
    TransportError, WorkerCommand, WorkerSession, DOMAIN_ORCH, DOMAIN_TRAIN,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use edgeslice_netsim::{
    AppProfile, ComputationModel, DiurnalTrace, FrameResolution, PoissonTraffic, TrafficSource,
};

use crate::exec::{RaExecWorker, SystemExecCoordinator, WorkerPolicy};
use crate::store::{CheckpointStore, TrainSnapshot, WorkerSnapshot};
use crate::{
    AgentConfig, EdgeSliceError, FaultInjector, OrchestrationAgent, PerformanceCoordinator,
    PerformanceFunction, PolicyCheckpoint, QueuePenalty, RaEnvConfig, RaId, RaSliceEnv,
    RewardParams, Sla, SliceId, SliceSpec, StateSpec, SystemMonitor,
};

/// Traffic model shared by every (slice, RA) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficKind {
    /// Stationary Poisson arrivals (prototype experiments, rate 10).
    Poisson(f64),
    /// Synthetic diurnal traces (trace-driven simulations), randomized per
    /// (slice, RA) around the given base rate.
    Diurnal {
        /// Peak arrivals per interval.
        base: f64,
    },
}

/// Full system configuration.
#[derive(Clone)]
pub struct SystemConfig {
    /// Slice specifications (apps + SLAs).
    pub slices: Vec<SliceSpec>,
    /// Number of resource autonomies.
    pub n_ras: usize,
    /// Reward weights and the period length `T`.
    pub reward: RewardParams,
    /// Agent observability (EdgeSlice vs EdgeSlice-NT).
    pub state_spec: StateSpec,
    /// ADMM convergence parameters.
    pub admm: AdmmConfig,
    /// Traffic model.
    pub traffic: TrafficKind,
    /// The hidden slice performance function.
    pub perf: Arc<dyn PerformanceFunction>,
    /// Range for randomized coordination during offline training.
    pub coord_sample_range: (f64, f64),
    /// Project evaluated actions onto per-resource capacity (what the
    /// physical managers enforce anyway). Training is never projected.
    pub project_actions: bool,
}

impl std::fmt::Debug for SystemConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemConfig")
            .field("slices", &self.slices.len())
            .field("n_ras", &self.n_ras)
            .field("period", &self.reward.period)
            .field("state_spec", &self.state_spec)
            .field("traffic", &self.traffic)
            .finish_non_exhaustive()
    }
}

impl SystemConfig {
    /// The prototype experiments (Sec. VII-C): 2 slices (traffic-heavy +
    /// compute-heavy), 2 RAs, Poisson(10) traffic, `t = 1 s`, `T = 10`,
    /// `Umin = −50`, `ρ = 1`, `β = 20`.
    pub fn prototype() -> Self {
        Self {
            slices: vec![
                SliceSpec::experiment_slice1(),
                SliceSpec::experiment_slice2(),
            ],
            n_ras: 2,
            reward: RewardParams::paper(),
            state_spec: StateSpec::Full,
            admm: AdmmConfig::default(),
            traffic: TrafficKind::Poisson(10.0),
            perf: Arc::new(QueuePenalty::paper()),
            coord_sample_range: (-100.0, 25.0),
            project_actions: true,
        }
    }

    /// The trace-driven simulations (Sec. VII-D): `n_slices` slices with
    /// randomly selected frame resolutions and computation models,
    /// `n_ras` RAs, diurnal traffic, `T = 24` intervals (one per hour).
    pub fn simulation(n_slices: usize, n_ras: usize, rng: &mut StdRng) -> Self {
        // The experiments' Umin = −50 is calibrated to 2 RAs × T=10; keep
        // the same per-(RA, interval) stringency as the network grows so
        // the SLA stays meaningful (and the ADMM duals stay interior).
        let umin = -50.0 * (n_ras as f64 / 2.0) * (24.0 / 10.0);
        let slices = (0..n_slices)
            .map(|i| {
                let res = FrameResolution::ALL[rng.gen_range(0..3)];
                let model = ComputationModel::ALL[rng.gen_range(0..3)];
                SliceSpec::new(SliceId(i), AppProfile::new(res, model), Sla::new(umin))
            })
            .collect();
        Self {
            slices,
            n_ras,
            reward: RewardParams {
                period: 24,
                ..RewardParams::paper()
            },
            state_spec: StateSpec::Full,
            admm: AdmmConfig::default(),
            traffic: TrafficKind::Diurnal { base: 12.0 },
            perf: Arc::new(QueuePenalty::paper()),
            coord_sample_range: (-100.0, 25.0),
            project_actions: true,
        }
    }

    /// The EdgeSlice-NT ablation of this configuration.
    pub fn without_traffic_state(mut self) -> Self {
        self.state_spec = StateSpec::CoordinationOnly;
        self
    }

    fn make_traffic(&self, rng: &mut StdRng) -> Vec<Box<dyn TrafficSource + Send>> {
        self.slices
            .iter()
            .map(|_| -> Box<dyn TrafficSource + Send> {
                match self.traffic {
                    TrafficKind::Poisson(rate) => Box::new(PoissonTraffic::new(rate)),
                    TrafficKind::Diurnal { base } => Box::new(DiurnalTrace::random_area(base, rng)),
                }
            })
            .collect()
    }

    fn make_env(&self, rng: &mut StdRng) -> RaSliceEnv {
        let env_config = RaEnvConfig {
            slices: self.slices.clone(),
            perf: Arc::clone(&self.perf),
            reward: self.reward,
            state_spec: self.state_spec,
            interval_s: 1.0,
            queue_norm: 25.0,
            coord_norm: 50.0,
            coord_sample_range: self.coord_sample_range,
            randomize_coord: true,
            queue_capacity: 200.0,
            squash_training_reward: true,
            project_shares: true,
        };
        RaSliceEnv::with_dataset(env_config, self.make_traffic(rng))
    }
}

/// Which orchestration policy drives the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrchestratorKind {
    /// A learned per-RA agent (EdgeSlice / EdgeSlice-NT, by state spec).
    Learned(Technique),
    /// The TARO proportional baseline.
    Taro,
}

/// One coordination round's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index.
    pub round: usize,
    /// `Σ_{i,j,t} U` of the round.
    pub system_performance: f64,
    /// `Σ_{j,t} U` per slice.
    pub slice_performance: Vec<f64>,
    /// Mean `[radio, transport, compute]` usage per slice.
    pub usage: Vec<[f64; 3]>,
    /// ADMM residuals after the coordinator update.
    pub residuals: AdmmResiduals,
    /// Whether each slice's SLA held this round. Under outages the target
    /// is prorated by `served_fraction` — dark intervals are excluded from
    /// SLA accounting rather than counted as zero-performance service.
    pub sla_met: Vec<bool>,
    /// RAs that were dark this round.
    pub outages: Vec<RaId>,
    /// RAs whose supervised worker went down this round (caught panic,
    /// exhausted restart budget, or dead channel) — reported explicitly,
    /// never silently truncated into a missing report.
    pub downed: Vec<RaId>,
    /// Malformed reports (wrong round, unknown RA, duplicate slot) the
    /// gather loop dropped with a trace this round.
    pub discarded_reports: usize,
    /// Fraction of this round's (RA, interval) pairs that served traffic
    /// (`1.0` in a fault-free round).
    pub served_fraction: f64,
    /// End-of-round queue backlog per RA (summed over slices; `0.0` for an
    /// RA whose report never arrived).
    pub load: Vec<f64>,
}

/// One supervision event: a worker that could not report this round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DownEvent {
    /// The downed RA.
    pub ra: RaId,
    /// Global round index of the event.
    pub round: usize,
    /// Human-readable cause (`"panic: …"`, `"restart budget exhausted"`,
    /// `"worker channel disconnected"`).
    pub cause: String,
}

/// Aggregate supervision telemetry for a run: what went down, when, and
/// what the engine's gather loop had to discard or time out on.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SupervisionStats {
    /// Every worker-down event, in round order (RA-sorted within a round).
    pub worker_downs: Vec<DownEvent>,
    /// Rounds whose wall-clock report deadline expired.
    pub deadline_timeouts: usize,
    /// Rounds that ended with a dead worker channel.
    pub disconnects: usize,
    /// Malformed reports dropped at the gather loop across the run.
    pub discarded_reports: usize,
    /// Networked mode: frame sends retried after a transient failure and
    /// ultimately delivered — "the network flaked but recovered". Always
    /// zero in-process.
    pub send_retries: usize,
    /// Networked mode: frame sends abandoned after the bounded retry
    /// budget (the link broke; the lease decides whether the worker is
    /// down). Always zero in-process.
    pub sends_abandoned: usize,
    /// Networked mode: leases that lapsed into a
    /// [`edgeslice_runtime::DownCause::LeaseExpired`] down event — "the
    /// worker died". Always zero in-process.
    pub leases_expired: usize,
    /// Networked mode: workers re-admitted after a lease expiry (a sign
    /// of life or a fresh registration from a respawned process). Always
    /// zero in-process.
    pub rejoins: usize,
}

/// The full run's outcome.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-round records, in order.
    pub rounds: Vec<RoundRecord>,
    /// Supervision telemetry accumulated over the run.
    pub supervision: SupervisionStats,
    /// Per-slot lifecycle outcomes (admit round, depart round, reject
    /// reason, resize count) for dynamic-workload runs; empty for static
    /// runs.
    pub slice_lifetimes: Vec<crate::SliceLifetime>,
}

impl RunReport {
    /// System performance of the final round.
    pub fn final_system_performance(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.system_performance)
    }

    /// Serializes the report to JSON (for offline analysis/plotting).
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::Serialization`] on failure (practically
    /// impossible for this structure).
    pub fn to_json(&self) -> Result<String, EdgeSliceError> {
        serde_json::to_string_pretty(self).map_err(EdgeSliceError::from)
    }

    /// Mean system performance over the last `n` rounds (a stabler
    /// convergence figure than the single final round).
    pub fn tail_system_performance(&self, n: usize) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        let tail = &self.rounds[self.rounds.len().saturating_sub(n)..];
        tail.iter().map(|r| r.system_performance).sum::<f64>() / tail.len() as f64
    }
}

/// The assembled EdgeSlice system: envs + agents + coordinator + monitor.
///
/// All round execution and training is delegated to the
/// [`edgeslice_runtime`] engine; [`EdgeSliceSystem::set_scheduler`] picks
/// between the inline reference topology and worker threads. Both produce
/// bit-identical [`RunReport`]s for the same seed.
pub struct EdgeSliceSystem {
    config: SystemConfig,
    kind: OrchestratorKind,
    envs: Vec<RaSliceEnv>,
    agents: Vec<OrchestrationAgent>,
    coordinator: PerformanceCoordinator,
    monitor: SystemMonitor,
    scheduler: Scheduler,
    round_deadline: Duration,
    straggle_sleep: Duration,
    /// Supervision policy for worker panics (restart budget + backoff).
    supervision: SupervisorConfig,
    /// Durable snapshot store; when set, runs checkpoint every
    /// `checkpoint_every` rounds and training checkpoints per RA.
    store: Option<CheckpointStore>,
    checkpoint_every: usize,
    /// Per-RA policies restored from snapshots; when set, workers decide
    /// with these instead of the live agents (bit-identical either way).
    policy_overrides: Vec<Option<PolicyCheckpoint>>,
    /// Dynamic-workload state machine (see
    /// [`EdgeSliceSystem::set_workload`]); `None` = static slice set.
    workload: Option<crate::workload::SliceLifecycle>,
}

impl std::fmt::Debug for EdgeSliceSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeSliceSystem")
            .field("kind", &self.kind)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl EdgeSliceSystem {
    /// Assembles the system (envs, coordinator, and — for learned kinds —
    /// untrained agents).
    pub fn new(
        config: SystemConfig,
        kind: OrchestratorKind,
        agent_config: &AgentConfig,
        rng: &mut StdRng,
    ) -> Self {
        let envs: Vec<RaSliceEnv> = (0..config.n_ras).map(|_| config.make_env(rng)).collect();
        let agents = match kind {
            OrchestratorKind::Learned(technique) => (0..config.n_ras)
                .map(|j| OrchestrationAgent::new(RaId(j), technique, &envs[j], agent_config, rng))
                .collect(),
            OrchestratorKind::Taro => Vec::new(),
        };
        let slas: Vec<Sla> = config.slices.iter().map(|s| s.sla).collect();
        let coordinator = PerformanceCoordinator::new(&slas, config.n_ras, config.admm);
        let n_ras = config.n_ras;
        Self {
            config,
            kind,
            envs,
            agents,
            coordinator,
            monitor: SystemMonitor::new(),
            scheduler: Scheduler::Sequential,
            round_deadline: Duration::from_secs(30),
            straggle_sleep: Duration::ZERO,
            supervision: SupervisorConfig::default(),
            store: None,
            checkpoint_every: 4,
            policy_overrides: vec![None; n_ras],
            workload: None,
        }
    }

    /// Selects the execution topology for subsequent `run*`/`train*`
    /// calls. [`Scheduler::Sequential`] (the default) runs every RA inline
    /// on the caller's thread; [`Scheduler::Threaded`] shards RAs across
    /// worker threads. Reports are bit-identical either way.
    pub fn set_scheduler(&mut self, scheduler: Scheduler) {
        self.scheduler = scheduler;
    }

    /// The execution topology in effect.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Sets the per-round wall-clock report deadline (default 30 s — a
    /// liveness backstop that only a hung worker ever misses; injected
    /// stragglers miss their deadline *logically* via the fault plan, so
    /// determinism is unaffected).
    pub fn set_round_deadline(&mut self, deadline: Duration) {
        self.round_deadline = deadline;
    }

    /// Makes injected stragglers also sleep for `delay` before reporting,
    /// so their reports are physically late on the channel (default zero:
    /// straggling stays purely logical and runs stay fast).
    pub fn set_straggle_sleep(&mut self, delay: Duration) {
        self.straggle_sleep = delay;
    }

    /// Sets the supervision policy applied to worker panics: restart
    /// budget per RA and the exponential backoff between respawns.
    pub fn set_supervision(&mut self, config: SupervisorConfig) {
        self.supervision = config;
    }

    /// Attaches a durable [`CheckpointStore`] at `dir`: subsequent runs
    /// write a crash-consistent snapshot every `every_k` rounds and
    /// training checkpoints each RA's trained policy, enabling
    /// [`EdgeSliceSystem::resume`].
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::Io`] if the directory cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `every_k` is zero.
    pub fn set_checkpointing(&mut self, dir: &Path, every_k: usize) -> Result<(), EdgeSliceError> {
        assert!(every_k >= 1, "checkpoint cadence must be at least 1 round");
        self.store = Some(CheckpointStore::open(dir)?);
        self.checkpoint_every = every_k;
        Ok(())
    }

    /// The attached checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// How many of this system's RAs currently decide with a
    /// snapshot-restored policy instead of a live agent.
    pub fn restored_policy_count(&self) -> usize {
        self.policy_overrides.iter().filter(|p| p.is_some()).count()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The monitor database accumulated so far.
    pub fn monitor(&self) -> &SystemMonitor {
        &self.monitor
    }

    /// The performance coordinator.
    pub fn coordinator(&self) -> &PerformanceCoordinator {
        &self.coordinator
    }

    /// Trains every RA's agent offline for ~`env_steps` interactions each
    /// (randomized coordinating information, Sec. VI-A). No-op for TARO.
    ///
    /// Each (agent, env) pair trains on a private RNG stream derived from
    /// one master seed drawn from `rng`, so training parallelizes across
    /// RA workers under [`Scheduler::Threaded`] with results identical to
    /// the sequential schedule.
    /// With a [`CheckpointStore`] attached, each RA's trained policy (and
    /// end-of-training environment state) is persisted as it completes,
    /// and a re-run of the same `train` call — same seed sequence, same
    /// `env_steps` — skips straight to the stored outcome instead of
    /// retraining, so an interrupted train-then-run program resumes.
    pub fn train(&mut self, env_steps: usize, rng: &mut StdRng) {
        if self.agents.is_empty() {
            // TARO trains nothing, but deployment still starts from an
            // operational baseline (and the caller's rng is untouched).
            for env in &mut self.envs {
                env.clear_queues();
            }
            return;
        }
        let master = rng.gen::<u64>();
        // Per RA: resume from a matching train snapshot, or train live.
        let mut restored: Vec<Option<TrainSnapshot>> = vec![None; self.config.n_ras];
        if let Some(store) = &self.store {
            for (j, slot) in restored.iter_mut().enumerate() {
                match store.load_train(RaId(j)) {
                    Ok(Some(snap)) if snap.master_seed == master && snap.env_steps == env_steps => {
                        *slot = Some(snap);
                    }
                    // A snapshot from a different seed/length: retrain.
                    Ok(_) => {}
                    Err(err) => {
                        eprintln!(
                            "edgeslice: ignoring unreadable train snapshot for ra {j}: {err}"
                        );
                    }
                }
            }
        }
        let mut units: Vec<TrainUnit<'_>> = self
            .agents
            .iter_mut()
            .zip(&mut self.envs)
            .enumerate()
            .filter(|(j, _)| restored[*j].is_none())
            .map(|(j, (agent, env))| TrainUnit {
                ra: RaId(j),
                agent,
                env,
                rng: StdRng::seed_from_u64(derive_stream_seed(master, DOMAIN_TRAIN, j as u64)),
            })
            .collect();
        let sink = self.store.as_ref();
        par_map(self.scheduler, &mut units, |_, unit| {
            unit.agent.train(unit.env, env_steps, &mut unit.rng);
            // Deployment starts from an operational baseline, not whatever
            // backlog the final training episode left behind.
            unit.env.clear_queues();
            if let Some(store) = sink {
                let snap = TrainSnapshot {
                    ra: unit.ra,
                    master_seed: master,
                    env_steps,
                    policy: PolicyCheckpoint::from_agent(unit.agent),
                    env: WorkerSnapshot {
                        ra: unit.ra,
                        queues: unit.env.queues().to_vec(),
                        coordination: unit.env.coordination().to_vec(),
                        global_t: unit.env.global_t(),
                        was_down: false,
                        active: unit.env.slice_active().to_vec(),
                        rates: unit.env.rate_overrides().to_vec(),
                    },
                };
                if let Err(err) = store.save_train(&snap) {
                    eprintln!(
                        "edgeslice: train checkpoint write failed for ra {} (continuing): {err}",
                        unit.ra.0
                    );
                }
            }
        });
        drop(units);
        for (j, slot) in restored.into_iter().enumerate() {
            match slot {
                Some(snap) => {
                    // Skipped RA: re-install the stored outcome — policy
                    // and environment exactly as training left them.
                    self.envs[j].restore_round_state(
                        snap.env.queues,
                        &snap.env.coordination,
                        snap.env.global_t,
                    );
                    self.policy_overrides[j] = Some(snap.policy);
                }
                None => self.policy_overrides[j] = None,
            }
        }
    }

    /// Trains RA 0's agent and replicates it to every other RA — a large
    /// speed-up when all RAs are statistically identical (used by the
    /// scalability sweeps; the paper trains each agent, which is
    /// embarrassingly parallel on their testbed).
    pub fn train_shared(&mut self, env_steps: usize, rng: &mut StdRng) {
        if self.agents.is_empty() {
            return;
        }
        // Same stream derivation as `train` (worker 0's stream), so shared
        // and per-RA training draw from the same family of streams.
        let master = rng.gen::<u64>();
        let mut rng0 = StdRng::seed_from_u64(derive_stream_seed(master, DOMAIN_TRAIN, 0));
        if let (Some(agent), Some(env)) = (self.agents.first_mut(), self.envs.first_mut()) {
            agent.train(env, env_steps, &mut rng0);
        }
        // Re-decide the remaining agents from the trained one's policy by
        // round-tripping through its backend clone.
        let trained = self.agents.remove(0);
        let mut replicas = trained.replicate(self.config.n_ras);
        for env in &mut self.envs {
            env.set_randomize_coord(false);
            // Deployment starts from an operational baseline, not whatever
            // backlog the final training episode left behind.
            env.clear_queues();
        }
        self.agents.clear();
        self.agents.append(&mut replicas);
    }

    /// Installs replicas of a pre-trained agent on every RA (the
    /// counterpart of [`EdgeSliceSystem::train_shared`] when the agent was
    /// trained elsewhere, e.g. reused across a scalability sweep whose RA
    /// count varies but whose slice set does not).
    ///
    /// # Panics
    ///
    /// Panics if this is a TARO system.
    pub fn install_agents(&mut self, trained: &OrchestrationAgent) {
        assert!(
            matches!(self.kind, OrchestratorKind::Learned(_)),
            "cannot install agents on a TARO system"
        );
        self.agents = trained.replicate(self.config.n_ras);
        for env in &mut self.envs {
            env.set_randomize_coord(false);
        }
    }

    /// A clone of RA 0's (trained) agent, for installation into another
    /// system of the same slice set (e.g. a different network size in a
    /// scalability sweep).
    ///
    /// # Panics
    ///
    /// Panics on a TARO system.
    pub fn agent0(&self) -> OrchestrationAgent {
        self.agents
            .first()
            .expect(
                "invariant: agent0 is only called on learned systems, which hold one agent per RA",
            )
            .clone()
    }

    /// Snapshots every RA's current policy (restored checkpoint override
    /// when present, live agent otherwise) into a [`crate::PolicyFleet`]
    /// for batched cross-RA inference. After [`EdgeSliceSystem::train_shared`]
    /// or [`EdgeSliceSystem::install_agents`] the parameters are
    /// bit-identical across RAs, so the fleet collapses to one group and
    /// one fused GEMM chain per decision round; per-RA actions stay
    /// bit-identical to [`OrchestrationAgent::decide`].
    pub fn policy_fleet(&self, par: edgeslice_nn::Parallelism) -> crate::PolicyFleet {
        let policies = self
            .agents
            .iter()
            .zip(&self.policy_overrides)
            .map(|(agent, over)| match over {
                Some(p) => p.clone(),
                None => PolicyCheckpoint::from_agent(agent),
            })
            .collect();
        crate::PolicyFleet::new(policies, par)
    }

    /// A mutable handle to RA 0's environment (used to train an agent that
    /// will be installed elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if the system has no RAs (impossible by construction).
    pub fn env0_mut(&mut self) -> &mut RaSliceEnv {
        self.envs
            .first_mut()
            .expect("invariant: systems are constructed with at least one RA")
    }

    /// Sets the coordinator's staleness budget: missed rounds tolerated
    /// before an RA is declared dead (default 3).
    pub fn set_staleness_budget(&mut self, rounds: usize) {
        self.coordinator.set_staleness_budget(rounds);
    }

    /// Attaches a dynamic workload: the plan's lifecycle events (arrivals,
    /// resizes, teardowns) are replayed online through `admission` by
    /// subsequent `run*` calls. The system must have been constructed with
    /// [`crate::WorkloadPlan::slot_specs`] as its slice set — policy
    /// network dimensions are fixed at construction, so every slot (initial
    /// slices plus planned arrivals) pre-exists and events merely activate
    /// or retire them.
    ///
    /// Initial slices are admitted immediately (a round-0 rejection is a
    /// recorded outcome, not an error); pending and rejected slots start
    /// deactivated in the ADMM coordinator and the substrate environments,
    /// so training and static reports are unaffected until events fire.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::InvalidWorkloadPlan`] if the plan's slot
    /// list does not match this system's configured slices.
    pub fn set_workload(
        &mut self,
        plan: crate::WorkloadPlan,
        admission: crate::AdmissionController,
    ) -> Result<(), EdgeSliceError> {
        let specs = plan.slot_specs();
        if specs != self.config.slices {
            return Err(EdgeSliceError::InvalidWorkloadPlan(format!(
                "plan covers {} slot(s) that do not match the system's {} configured slice(s); \
                 construct the system with WorkloadPlan::slot_specs()",
                specs.len(),
                self.config.slices.len()
            )));
        }
        self.workload = Some(crate::workload::SliceLifecycle::new(plan, admission));
        Ok(())
    }

    /// The attached dynamic-workload state machine, if any.
    pub fn workload(&self) -> Option<&crate::workload::SliceLifecycle> {
        self.workload.as_ref()
    }

    /// Deactivates coordinator rows and substrate slots that the workload
    /// machine reports as not currently serving, so a run starts from the
    /// machine's present state (round 0 of a fresh plan: initial slices
    /// active, planned arrivals pending).
    fn sync_lifecycle_into_substrate(&mut self) {
        let Some(lc) = &self.workload else { return };
        let state = lc.state();
        for (i, active) in state.active.iter().enumerate() {
            if !active {
                self.coordinator.depart_slice(SliceId(i));
            }
        }
        for env in &mut self.envs {
            env.apply_lifecycle(&state)
                .expect("invariant: set_workload validated the plan against this system's slices");
        }
    }

    /// Runs Alg. 1 for at most `max_rounds` coordination rounds (stopping
    /// early on ADMM convergence) and reports per-round outcomes.
    pub fn run(&mut self, max_rounds: usize, rng: &mut StdRng) -> RunReport {
        let injector = FaultInjector::none(self.config.n_ras, max_rounds);
        self.run_with_faults(max_rounds, rng, &injector)
    }

    /// Runs Alg. 1 under injected faults (Alg. 1 + the degradation policy).
    ///
    /// The injector's rounds index this run's rounds, 0-based. Per round,
    /// for each RA the orchestrator consults its [`crate::RaFaultView`]:
    ///
    /// * **down** — the RA serves nothing; the monitor records explicit
    ///   outage rows; the coordinator sees the RA as missing (stale reuse,
    ///   frozen duals, death + redistribution past the staleness budget).
    ///   At outage start a learned RA's policy is checkpointed.
    /// * **rejoining** — the RA's queues are flushed (the node rebooted)
    ///   and, for learned kinds, its policy is restored from the
    ///   checkpoint taken at outage start — decisions after rejoin are
    ///   bit-identical to the pre-outage policy.
    /// * **broadcast dropped** — the RA orchestrates on its previous
    ///   `z − y` (the env keeps the last coordination it received).
    /// * **straggler** — traffic is served and monitored, but the report
    ///   misses the deadline: the coordinator treats the RA as missing
    ///   this round (the late report is superseded by the next one).
    /// * **capacity degradation** — the RA's substrate capacity is scaled
    ///   for the round; the agent's shares deliver proportionally less.
    ///
    /// SLA accounting excludes outage intervals: each round's `Umin` is
    /// prorated by the fraction of (RA, interval) pairs that served.
    ///
    /// Execution is delegated to the [`edgeslice_runtime`] engine: one
    /// worker per RA (each with a private RNG stream derived from a master
    /// seed drawn once from `rng`), folded by a coordinator task. The
    /// report is bit-identical across schedulers.
    pub fn run_with_faults(
        &mut self,
        max_rounds: usize,
        rng: &mut StdRng,
        injector: &FaultInjector,
    ) -> RunReport {
        let master = rng.gen::<u64>();
        self.run_rounds(max_rounds, master, injector, None)
    }

    /// Resumes an interrupted `run`/`run_with_faults` from the newest
    /// valid snapshot in `dir`, producing a report bit-identical to the
    /// run that was never interrupted (same system seed, same fault plan,
    /// same `max_rounds`).
    ///
    /// Corrupt or truncated snapshot files are skipped (with a note on
    /// stderr) in favour of the newest one that validates; if none does,
    /// the run simply starts over from round 0 — `resume` is therefore
    /// safe to use as the *only* entry point of a crash-looped program.
    /// One draw is consumed from `rng` either way, so the caller's seed
    /// stream stays aligned with the interrupted program's.
    ///
    /// What resume cannot replay: real wall-clock deadline misses and
    /// channel disconnects (as opposed to fault-plan stragglers and
    /// scripted outages/panics) are nondeterministic in the original run,
    /// so their reports are only equal if neither run hits one.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::Io`] if the store cannot be opened and
    /// [`EdgeSliceError::SnapshotMismatch`] if the snapshot belongs to a
    /// differently-shaped system.
    pub fn resume(
        &mut self,
        dir: &Path,
        max_rounds: usize,
        rng: &mut StdRng,
        injector: &FaultInjector,
    ) -> Result<RunReport, EdgeSliceError> {
        let every_k = self.checkpoint_every;
        self.set_checkpointing(dir, every_k)?;
        let latest = self
            .store
            .as_ref()
            .expect("invariant: set_checkpointing attached the store on the line above")
            .latest_run()?;
        for (path, err) in &latest.rejected {
            eprintln!(
                "edgeslice: skipping unreadable snapshot {}: {err}",
                path.display()
            );
        }
        // Drawn whether or not a snapshot exists, so the caller's rng
        // stays aligned with the interrupted program's seed stream.
        let drawn_master = rng.gen::<u64>();
        let Some(snap) = latest.snapshot else {
            return Ok(self.run_rounds(max_rounds, drawn_master, injector, None));
        };
        if snap.workers.len() != self.config.n_ras {
            return Err(EdgeSliceError::SnapshotMismatch {
                reason: format!(
                    "snapshot has {} RAs, this system has {}",
                    snap.workers.len(),
                    self.config.n_ras
                ),
            });
        }
        snap.validate_slices(&self.config.slices)?;
        match (self.workload.as_mut(), snap.lifecycle) {
            (Some(lc), Some(state)) => lc.restore(state)?,
            (Some(_), None) => {
                return Err(EdgeSliceError::SnapshotMismatch {
                    reason: "this system has a workload plan but the snapshot carries no \
                             lifecycle state"
                        .into(),
                });
            }
            (None, Some(_)) => {
                return Err(EdgeSliceError::SnapshotMismatch {
                    reason: "the snapshot carries lifecycle state but this system has no \
                             workload plan"
                        .into(),
                });
            }
            (None, None) => {}
        }
        self.coordinator.restore(&snap.coordinator)?;
        self.policy_overrides = snap.policies;
        let mut prefix = RunReport {
            rounds: snap.rounds,
            supervision: snap.supervision,
            slice_lifetimes: Vec::new(),
        };
        if snap.next_round >= max_rounds {
            // The interrupted run had already finished these rounds; its
            // lifecycle outcomes are the restored machine's.
            if let Some(lc) = &self.workload {
                prefix.slice_lifetimes = lc.lifetimes().to_vec();
            }
            return Ok(prefix);
        }
        Ok(self.run_rounds(
            max_rounds,
            snap.master_seed,
            injector,
            Some(ResumeState {
                first_round: snap.next_round,
                round_base: snap.round_base,
                worker_state: snap.workers,
                panic_counts: snap.panic_counts,
                prefix,
            }),
        ))
    }

    /// The single round-loop implementation behind `run`,
    /// `run_with_faults` and `resume`.
    fn run_rounds(
        &mut self,
        max_rounds: usize,
        master: u64,
        injector: &FaultInjector,
        resume: Option<ResumeState>,
    ) -> RunReport {
        let n_ras = self.config.n_ras;
        let period = self.config.reward.period;
        for env in &mut self.envs {
            env.set_randomize_coord(false);
        }
        let (first_round, round_base, worker_state, panic_counts, prefix) = match resume {
            Some(state) => {
                // Rewind every environment to the snapshot boundary,
                // including its slot activity and rate overrides (absent
                // on pre-churn snapshots: fall back to the restored
                // workload machine's present state).
                for (env, ws) in self.envs.iter_mut().zip(&state.worker_state) {
                    env.restore_round_state(ws.queues.clone(), &ws.coordination, ws.global_t);
                    if !ws.active.is_empty() {
                        env.restore_lifecycle(&ws.active, &ws.rates);
                    }
                }
                if state
                    .worker_state
                    .first()
                    .is_some_and(|ws| ws.active.is_empty())
                {
                    self.sync_lifecycle_into_substrate();
                }
                (
                    state.first_round,
                    state.round_base,
                    state.worker_state,
                    state.panic_counts,
                    state.prefix,
                )
            }
            None => {
                let round_base = self.monitor.rounds();
                // A fresh dynamic run starts from the workload machine's
                // present state: initial slices active, planned arrivals
                // pending (deactivated rows and slots).
                self.sync_lifecycle_into_substrate();
                // The initial snapshot state is the environments as they
                // stand at run start (post-training baseline).
                let worker_state = self
                    .envs
                    .iter()
                    .enumerate()
                    .map(|(j, env)| WorkerSnapshot {
                        ra: RaId(j),
                        queues: env.queues().to_vec(),
                        coordination: env.coordination().to_vec(),
                        global_t: env.global_t(),
                        was_down: false,
                        active: env.slice_active().to_vec(),
                        rates: env.rate_overrides().to_vec(),
                    })
                    .collect();
                (
                    0,
                    round_base,
                    worker_state,
                    vec![0; n_ras],
                    RunReport::default(),
                )
            }
        };
        let policies = self.effective_policies();
        let project_actions = self.config.project_actions;
        let straggle_sleep = self.straggle_sleep;
        let mut workers: Vec<RaExecWorker<'_>> = Vec::with_capacity(n_ras);
        match self.kind {
            OrchestratorKind::Learned(_) => {
                for (j, (env, agent)) in self.envs.iter_mut().zip(&self.agents).enumerate() {
                    let mut worker = RaExecWorker::new(
                        RaId(j),
                        env,
                        WorkerPolicy::Learned(agent),
                        injector,
                        derive_stream_seed(master, DOMAIN_ORCH, j as u64),
                        period,
                        project_actions,
                        round_base,
                        straggle_sleep,
                    )
                    .with_down_state(worker_state[j].was_down);
                    if let Some(ckpt) = &self.policy_overrides[j] {
                        worker = worker.with_restored_policy(ckpt.clone());
                    }
                    workers.push(worker);
                }
            }
            OrchestratorKind::Taro => {
                for (j, env) in self.envs.iter_mut().enumerate() {
                    workers.push(
                        RaExecWorker::new(
                            RaId(j),
                            env,
                            WorkerPolicy::Taro(crate::Taro::new()),
                            injector,
                            derive_stream_seed(master, DOMAIN_ORCH, j as u64),
                            period,
                            project_actions,
                            round_base,
                            straggle_sleep,
                        )
                        .with_down_state(worker_state[j].was_down),
                    );
                }
            }
        }
        let mut exec = SystemExecCoordinator::new(
            &mut self.coordinator,
            &mut self.monitor,
            &self.config.slices,
            n_ras,
            period,
            round_base,
        )
        .with_state(worker_state, panic_counts.clone(), policies, prefix)
        .with_workload(self.workload.as_mut());
        if let Some(store) = &self.store {
            exec = exec.with_sink(store, self.checkpoint_every, master);
        }
        Engine::new(self.scheduler)
            .with_deadline(self.round_deadline)
            .with_supervisor(self.supervision)
            .with_prior_panics(panic_counts)
            .run_from(&mut workers, &mut exec, first_round, max_rounds);
        let mut report = exec.report;
        drop(workers);
        if let Some(lc) = &self.workload {
            report.slice_lifetimes = lc.lifetimes().to_vec();
        }
        // Leave the substrates healthy for subsequent runs.
        for env in &mut self.envs {
            env.set_capacity_scale([1.0; 3]);
        }
        report
    }

    /// The effective policy per RA — what a fresh process re-installs
    /// instead of retraining (`None` for TARO).
    fn effective_policies(&self) -> Vec<Option<PolicyCheckpoint>> {
        match self.kind {
            OrchestratorKind::Learned(_) => (0..self.config.n_ras)
                .map(|j| {
                    self.policy_overrides[j]
                        .clone()
                        .or_else(|| Some(PolicyCheckpoint::from_agent(&self.agents[j])))
                })
                .collect(),
            OrchestratorKind::Taro => vec![None; self.config.n_ras],
        }
    }

    /// Runs Alg. 1 as the *coordinator of a networked deployment*: every
    /// RA is a separate [`EdgeSliceSystem::serve_ra`] peer (thread or
    /// process) reached through `net`'s [`Transport`] links, registered on
    /// the ε-ORC-style lease plane.
    ///
    /// The round protocol, ADMM folding, degraded-coordination policy and
    /// checkpointing are exactly `run_with_faults`'s — the coordinator
    /// side is transport-agnostic, so a loopback run and a UDS run of the
    /// same seed and fault plan produce byte-identical [`RunReport`]s.
    /// Failure semantics differ from in-process in one deliberate way: a
    /// vanished peer is detected by its *lapsed lease*
    /// ([`edgeslice_runtime::DownCause::LeaseExpired`], folded into
    /// [`SupervisionStats::leases_expired`] and the per-round `downed`
    /// set), never by the broken socket, and a degraded round completes
    /// through the same stale-report/frozen-dual ADMM path a scripted
    /// outage takes.
    ///
    /// One seed draw is consumed from `rng`, exactly like
    /// `run_with_faults`, so workers constructed from the same seed derive
    /// the identical master seed in [`EdgeSliceSystem::serve_ra`].
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::Transport`] if registration does not
    /// complete within `net`'s configured deadline. Mid-run transport
    /// failures are *not* errors: they degrade the run (telemetry, lease
    /// expiries) instead of aborting it.
    pub fn run_networked<T: Transport>(
        &mut self,
        max_rounds: usize,
        rng: &mut StdRng,
        injector: &FaultInjector,
        net: &mut NetCoordinator<T>,
    ) -> Result<RunReport, EdgeSliceError> {
        let _ = injector; // the fault plan acts on the worker side
        let master = rng.gen::<u64>();
        let n_ras = self.config.n_ras;
        let period = self.config.reward.period;
        for env in &mut self.envs {
            env.set_randomize_coord(false);
        }
        let round_base = self.monitor.rounds();
        self.sync_lifecycle_into_substrate();
        let worker_state: Vec<WorkerSnapshot> = self
            .envs
            .iter()
            .enumerate()
            .map(|(j, env)| WorkerSnapshot {
                ra: RaId(j),
                queues: env.queues().to_vec(),
                coordination: env.coordination().to_vec(),
                global_t: env.global_t(),
                was_down: false,
                active: env.slice_active().to_vec(),
                rates: env.rate_overrides().to_vec(),
            })
            .collect();
        let policies = self.effective_policies();
        net.wait_registered(0).map_err(EdgeSliceError::Transport)?;
        let mut exec = SystemExecCoordinator::new(
            &mut self.coordinator,
            &mut self.monitor,
            &self.config.slices,
            n_ras,
            period,
            round_base,
        )
        .with_state(worker_state, vec![0; n_ras], policies, RunReport::default())
        .with_workload(self.workload.as_mut());
        if let Some(store) = &self.store {
            exec = exec.with_sink(store, self.checkpoint_every, master);
        }
        for round in 0..max_rounds {
            let zys = exec.broadcast(round);
            let lifecycle = exec.lifecycle_delta(round);
            let (raw, mut telemetry) = net.run_round(round, &zys, &lifecycle);
            let mut slots: Vec<Option<RaReport<crate::exec::RaRoundBody>>> =
                Vec::with_capacity(n_ras);
            for slot in raw {
                let Some(rep) = slot else {
                    slots.push(None);
                    continue;
                };
                let body = match rep.body {
                    None => None,
                    Some(bytes) => match crate::exec::decode_body(&bytes) {
                        Ok(body) => Some(body),
                        Err(err) => {
                            // Framed correctly but undecodable: a foreign
                            // or buggy peer. Drop the report, count it,
                            // keep the round going.
                            eprintln!(
                                "edgeslice: dropping undecodable report body from ra {}: {err}",
                                rep.ra
                            );
                            telemetry.discarded_reports += 1;
                            slots.push(None);
                            continue;
                        }
                    },
                };
                slots.push(Some(RaReport {
                    ra: rep.ra,
                    round: rep.round,
                    deadline_missed: rep.deadline_missed,
                    body,
                }));
            }
            let converged = exec.collect(round, slots, &telemetry);
            if converged {
                break;
            }
        }
        net.shutdown();
        let mut report = exec.report;
        let stats = net.stats();
        report.supervision.send_retries += stats.send_retries;
        report.supervision.sends_abandoned += stats.sends_abandoned;
        report.supervision.leases_expired += stats.leases_expired;
        report.supervision.rejoins += stats.rejoins;
        if let Some(lc) = &self.workload {
            report.slice_lifetimes = lc.lifetimes().to_vec();
        }
        for env in &mut self.envs {
            env.set_capacity_scale([1.0; 3]);
        }
        Ok(report)
    }

    /// Serves RA `ra` as a *networked worker peer* of a
    /// [`EdgeSliceSystem::run_networked`] coordinator, over `transport`.
    ///
    /// The peer must be built from the same seed as the coordinator (both
    /// construct the full system identically, then draw one master seed
    /// from `rng` here), which is what makes its decisions bit-identical
    /// to an in-process worker's. It registers on the coordinator's lease
    /// plane, then serves rounds until `Shutdown` or disconnect:
    ///
    /// * injected faults from `injector` act exactly as in-process —
    ///   panics really unwind and are caught by a per-worker
    ///   [`Supervisor`] (reported to the coordinator as a typed `Down`
    ///   frame), outages go dark, stragglers mark their reports late;
    /// * a [`FaultEvent::WorkerSilence`](crate::FaultEvent::WorkerSilence)
    ///   window freezes the peer: connected but sending neither reports
    ///   nor lease refreshes, so the coordinator's failure detector — the
    ///   lease, not the socket — fires deterministically;
    /// * with a [`CheckpointStore`] attached
    ///   ([`EdgeSliceSystem::set_checkpointing`] on the same directory the
    ///   coordinator checkpoints into), a freshly (re)spawned peer
    ///   re-syncs its environment, policy and restart budget from the
    ///   newest snapshot before registering — the kill-and-rejoin path.
    ///
    /// Returns what happened: rounds served, the snapshot round re-synced
    /// from (if any), and panics caught by the local supervisor.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::Transport`] if the session cannot be
    /// established or dies mid-round, and [`EdgeSliceError::Io`] /
    /// snapshot errors if the checkpoint store is attached but unreadable.
    ///
    /// # Panics
    ///
    /// Panics if `ra` is outside this system's RA range.
    pub fn serve_ra<T: Transport>(
        &mut self,
        ra: RaId,
        rng: &mut StdRng,
        injector: &FaultInjector,
        transport: T,
        opts: &WorkerNetOptions,
    ) -> Result<ServeOutcome, EdgeSliceError> {
        let n_ras = self.config.n_ras;
        assert!(ra.0 < n_ras, "serve_ra: ra {} out of range {n_ras}", ra.0);
        let master = rng.gen::<u64>();
        let period = self.config.reward.period;
        for env in &mut self.envs {
            env.set_randomize_coord(false);
        }
        // Re-sync from the newest checkpoint, if a store is attached and
        // its snapshot belongs to this exact run (same master seed).
        let mut resynced_from = None;
        let mut round_base = self.monitor.rounds();
        let mut panic_count = 0usize;
        let mut policy_override = self.policy_overrides[ra.0].clone();
        let mut was_down = false;
        if let Some(store) = &self.store {
            let latest = store.latest_run()?;
            for (path, err) in &latest.rejected {
                eprintln!(
                    "edgeslice: skipping unreadable snapshot {}: {err}",
                    path.display()
                );
            }
            if let Some(snap) = latest.snapshot {
                if snap.master_seed == master && snap.workers.len() == n_ras {
                    let ws = &snap.workers[ra.0];
                    self.envs[ra.0].restore_round_state(
                        ws.queues.clone(),
                        &ws.coordination,
                        ws.global_t,
                    );
                    if !ws.active.is_empty() {
                        self.envs[ra.0].restore_lifecycle(&ws.active, &ws.rates);
                    }
                    was_down = ws.was_down;
                    panic_count = snap.panic_counts[ra.0];
                    policy_override = snap.policies[ra.0].clone().or(policy_override);
                    round_base = snap.round_base;
                    resynced_from = Some(snap.next_round);
                }
            }
        }
        // A fresh (non-resynced) dynamic worker starts from the workload
        // machine's present state; per-round lifecycle payloads converge
        // it from there.
        if resynced_from.is_none() {
            if let Some(lc) = &self.workload {
                self.envs[ra.0].apply_lifecycle(&lc.state()).expect(
                    "invariant: set_workload validated the plan against this system's slices",
                );
            }
        }
        let stream_seed = derive_stream_seed(master, DOMAIN_ORCH, ra.0 as u64);
        let policy = match self.kind {
            OrchestratorKind::Learned(_) => WorkerPolicy::Learned(&self.agents[ra.0]),
            OrchestratorKind::Taro => WorkerPolicy::Taro(crate::Taro::new()),
        };
        let mut worker = RaExecWorker::new(
            ra,
            &mut self.envs[ra.0],
            policy,
            injector,
            stream_seed,
            period,
            self.config.project_actions,
            round_base,
            self.straggle_sleep,
        )
        .with_down_state(was_down);
        if let Some(ckpt) = policy_override {
            worker = worker.with_restored_policy(ckpt);
        }
        let mut supervisor = Supervisor::with_panic_counts(self.supervision, &[panic_count]);
        let capabilities = caps::RESYNC
            | match self.kind {
                OrchestratorKind::Learned(_) => caps::LEARNED,
                OrchestratorKind::Taro => caps::TARO,
            };
        let node = NodeInfo {
            ra: ra.0,
            capabilities,
            capacity: 1.0,
        };
        let (mut session, _ack) = WorkerSession::establish(
            transport,
            node,
            opts.lease,
            opts.establish_timeout,
            opts.refresh_interval,
        )
        .map_err(EdgeSliceError::Transport)?;
        let mut rounds_served = 0usize;
        let mut frozen = false;
        loop {
            match session.next_command(opts.idle_budget) {
                Ok(WorkerCommand::Round(info)) => {
                    let view = injector.view(ra, info.round);
                    if view.silent {
                        if !frozen {
                            // Freeze: checkpoint the effective policy and
                            // mark the worker down so the round it thaws
                            // on takes the rejoin path — the same
                            // make-before-break an outage performs.
                            worker.handle_control(&Control::Checkpoint);
                            let _ = worker.recover();
                            frozen = true;
                        }
                        session.set_auto_refresh(false);
                        continue;
                    }
                    frozen = false;
                    session.set_auto_refresh(true);
                    match supervisor.guard(0, &mut worker, &info) {
                        Ok(report) => {
                            let body = match &report.body {
                                Some(b) => Some(crate::exec::encode_body(b)?),
                                None => None,
                            };
                            session
                                .report(report.round, report.deadline_missed, body)
                                .map_err(EdgeSliceError::Transport)?;
                            rounds_served += 1;
                        }
                        Err(down) => {
                            // A real caught panic (or an exhausted restart
                            // budget), shipped as a typed Down frame.
                            session
                                .down(info.round, down.cause.to_string())
                                .map_err(EdgeSliceError::Transport)?;
                        }
                    }
                }
                Ok(WorkerCommand::Control(Control::Shutdown)) => break,
                Ok(WorkerCommand::Control(ctl)) => worker.handle_control(&ctl),
                // The coordinator is gone: an orderly end of service, not
                // a worker failure.
                Err(TransportError::Disconnected) => break,
                Err(e) => return Err(EdgeSliceError::Transport(e)),
            }
        }
        let caught_panics = supervisor.restarts(0);
        drop(worker);
        for env in &mut self.envs {
            env.set_capacity_scale([1.0; 3]);
        }
        Ok(ServeOutcome {
            rounds_served,
            resynced_from,
            caught_panics,
        })
    }
}

/// Knobs for a [`EdgeSliceSystem::serve_ra`] worker peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerNetOptions {
    /// The lease this worker declares at registration (its own failure
    /// deadline, in rounds).
    pub lease: Lease,
    /// Budget for handshake + registration.
    pub establish_timeout: Duration,
    /// How often the idle worker refreshes its lease.
    pub refresh_interval: Duration,
    /// How long the worker waits for a command before giving up on the
    /// coordinator.
    pub idle_budget: Duration,
}

impl Default for WorkerNetOptions {
    fn default() -> Self {
        Self {
            lease: Lease::default(),
            establish_timeout: Duration::from_secs(10),
            refresh_interval: Duration::from_millis(100),
            idle_budget: Duration::from_secs(120),
        }
    }
}

/// What a [`EdgeSliceSystem::serve_ra`] worker peer did before shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Rounds this peer served (reports actually sent).
    pub rounds_served: usize,
    /// `Some(next_round)` if the peer re-synced from a checkpoint
    /// snapshot before registering (the kill-and-rejoin path).
    pub resynced_from: Option<usize>,
    /// Panics the peer's local supervisor caught and restarted through.
    pub caught_panics: usize,
}

/// One RA's training bundle: agent + env + private RNG stream, shippable
/// to a worker thread as a unit.
struct TrainUnit<'a> {
    ra: RaId,
    agent: &'a mut OrchestrationAgent,
    env: &'a mut RaSliceEnv,
    rng: StdRng,
}

/// The state a resumed run re-enters the round loop with.
struct ResumeState {
    /// First engine-local round to execute.
    first_round: usize,
    /// Global round index of the interrupted run's round 0.
    round_base: usize,
    /// Per-RA round-boundary state from the snapshot.
    worker_state: Vec<WorkerSnapshot>,
    /// Caught panics per RA before the snapshot (restart budgets).
    panic_counts: Vec<usize>,
    /// The rounds (and supervision telemetry) completed before the
    /// snapshot.
    prefix: RunReport,
}

/// Projects a flat slice-major action onto per-resource capacity
/// (`Σ_i x_{i,k} ≤ 1` for each `k`), preserving ratios — the same
/// enforcement the physical managers apply.
pub fn project_action_per_resource(action: &mut [f64], n_slices: usize) {
    let k = crate::ResourceKind::COUNT;
    debug_assert_eq!(action.len(), n_slices * k);
    for kind in 0..k {
        let mut column: Vec<f64> = (0..n_slices).map(|i| action[i * k + kind]).collect();
        project_capacity(&mut column, 1.0);
        for (i, v) in column.into_iter().enumerate() {
            action[i * k + kind] = v;
        }
    }
}

impl OrchestrationAgent {
    /// Clones this trained agent into `n` per-RA replicas (see
    /// [`EdgeSliceSystem::train_shared`]).
    pub fn replicate(&self, n: usize) -> Vec<OrchestrationAgent> {
        (0..n).map(|j| self.clone_for_ra(RaId(j))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn quick_agent_config() -> AgentConfig {
        AgentConfig {
            ddpg: edgeslice_rl::DdpgConfig {
                hidden: 16,
                batch_size: 32,
                warmup: 50,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn taro_system_runs_and_reports() {
        let mut rng = StdRng::seed_from_u64(0);
        let config = SystemConfig::prototype();
        let mut sys = EdgeSliceSystem::new(
            config,
            OrchestratorKind::Taro,
            &AgentConfig::default(),
            &mut rng,
        );
        let report = sys.run(3, &mut rng);
        assert!(!report.rounds.is_empty());
        let r0 = &report.rounds[0];
        assert_eq!(r0.slice_performance.len(), 2);
        assert_eq!(r0.usage.len(), 2);
        // TARO's per-domain usage is identical across resources by design.
        for u in &r0.usage {
            assert!((u[0] - u[1]).abs() < 1e-9);
            assert!((u[1] - u[2]).abs() < 1e-9);
        }
        assert!(r0.system_performance < 0.0);
    }

    #[test]
    fn learned_system_trains_and_runs() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = SystemConfig::prototype();
        let mut sys = EdgeSliceSystem::new(
            config,
            OrchestratorKind::Learned(Technique::Ddpg),
            &quick_agent_config(),
            &mut rng,
        );
        sys.train(300, &mut rng);
        let report = sys.run(2, &mut rng);
        assert_eq!(report.rounds.len().min(2), report.rounds.len());
        assert!(report.final_system_performance().is_finite());
        // Monitor saw every (round, interval, ra, slice) tuple.
        let expected = report.rounds.len() * 10 * 2 * 2;
        assert_eq!(sys.monitor().records().len(), expected);
    }

    #[test]
    fn action_projection_caps_each_resource() {
        let mut a = vec![0.8, 0.2, 0.6, 0.8, 0.2, 0.6];
        project_action_per_resource(&mut a, 2);
        // Radio column: 0.8 + 0.8 = 1.6 → scaled to 1.0 keeping ratio.
        assert!((a[0] - 0.5).abs() < 1e-12);
        assert!((a[3] - 0.5).abs() < 1e-12);
        // Transport column was feasible: untouched.
        assert_eq!(a[1], 0.2);
        assert_eq!(a[4], 0.2);
        // Compute column: 1.2 → 0.5/0.5.
        assert!((a[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_report_serializes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sys = EdgeSliceSystem::new(
            SystemConfig::prototype(),
            OrchestratorKind::Taro,
            &AgentConfig::default(),
            &mut rng,
        );
        let report = sys.run(1, &mut rng);
        let json = report.to_json().unwrap();
        assert!(json.contains("system_performance"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn simulation_config_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = SystemConfig::simulation(5, 10, &mut rng);
        assert_eq!(c.slices.len(), 5);
        assert_eq!(c.n_ras, 10);
        assert_eq!(c.reward.period, 24);
        let nt = c.clone().without_traffic_state();
        assert_eq!(nt.state_spec, StateSpec::CoordinationOnly);
    }

    #[test]
    fn train_shared_replicates_one_agent() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = SystemConfig::prototype();
        let mut sys = EdgeSliceSystem::new(
            config,
            OrchestratorKind::Learned(Technique::Ddpg),
            &quick_agent_config(),
            &mut rng,
        );
        sys.train_shared(150, &mut rng);
        let report = sys.run(1, &mut rng);
        assert_eq!(report.rounds.len(), 1);
    }
}
