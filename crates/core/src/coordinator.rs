//! The central performance coordinator (paper Sec. IV-A).
//!
//! Solves the `z`-update `P2` (Eq. 11) — a per-slice Euclidean projection of
//! `c_{i,·} = Σ_t U_{i,·} + y_{i,·}` onto the SLA half-space
//! `Σ_j z_{i,j} ≥ Umin_i` — and the scaled dual update
//! `y ← y + (Σ_t U − z)` (Eq. 10). The only message it exchanges with the
//! orchestration agents is the coordinating information `z − y` per
//! (slice, RA), which is what keeps EdgeSlice's communication overhead low.
//!
//! # Degraded coordination
//!
//! Deployed RAs miss rounds: outages, stragglers, lost reports. The
//! coordinator degrades gracefully instead of stalling the round
//! ([`PerformanceCoordinator::update_partial`]):
//!
//! * a missing RA's `Σ_t U` is substituted with its **last-known report**
//!   for up to a configurable **staleness budget** of consecutive rounds;
//! * the missing RA's dual column is **frozen** (no `y` ascent on stale
//!   data — stale residuals would corrupt the consensus);
//! * past the budget the RA is **declared dead**: its columns leave the
//!   projection, so the SLA half-space `Σ_j z_{i,j} ≥ Umin_i` spreads each
//!   slice's requirement across the survivors;
//! * a report from a dead RA **revives** it with a zeroed dual column (the
//!   rejoining RA restarts from checkpointed policy, not stale duals).

use edgeslice_optim::{
    dual_update, project_sum_halfspace, AdmmConfig, AdmmResiduals, ConvergenceTracker,
};
use serde::{Deserialize, Serialize};

use crate::{RaId, Sla, SliceId};

/// The per-(slice, RA) coordinating information sent to an orchestration
/// agent: `z_{i,j} − y_{i,j}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinationInfo {
    /// `z − y` indexed `[slice][ra]`.
    pub zy: Vec<Vec<f64>>,
}

impl CoordinationInfo {
    /// The message for one RA: `z_{i,j} − y_{i,j}` for all slices `i`.
    pub fn for_ra(&self, ra: RaId) -> Vec<f64> {
        self.zy.iter().map(|row| row[ra.0]).collect()
    }
}

/// The complete mutable state of a [`PerformanceCoordinator`], as captured
/// by a durable run snapshot: the ADMM iterates (`z`, `y`), the
/// degraded-coordination bookkeeping (last-known reports, staleness
/// counters, dead flags), the residual history driving convergence checks,
/// and the tunable knobs. The static shape (SLAs, RA count, ADMM config)
/// is *not* stored — it is rebuilt from the system configuration and
/// validated against the snapshot on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinatorState {
    /// Auxiliary variables `z`, `[slice][ra]`.
    pub z: Vec<Vec<f64>>,
    /// Scaled duals `y`, `[slice][ra]`.
    pub y: Vec<Vec<f64>>,
    /// Last report received per RA, `[slice][ra]`.
    pub last_known: Vec<Vec<f64>>,
    /// Consecutive silent rounds per RA.
    pub staleness: Vec<usize>,
    /// Dead flags per RA.
    pub dead: Vec<bool>,
    /// Residuals of every completed round, in order.
    pub residual_history: Vec<AdmmResiduals>,
    /// The dual safeguard bound in effect.
    pub dual_clamp: f64,
    /// The staleness budget in effect, rounds.
    pub staleness_budget: usize,
    /// Active flags per slice row (dynamic workloads; empty means every
    /// row active, the static default).
    pub active: Vec<bool>,
    /// Live per-slice `Umin` (renegotiated SLAs; empty means the
    /// construction-time SLAs are in force).
    pub umins: Vec<f64>,
}

/// The performance coordinator.
#[derive(Debug, Clone)]
pub struct PerformanceCoordinator {
    slas: Vec<Sla>,
    n_ras: usize,
    /// Auxiliary variables `z`, `[slice][ra]`.
    z: Vec<Vec<f64>>,
    /// Scaled dual variables `y`, `[slice][ra]`.
    y: Vec<Vec<f64>>,
    config: AdmmConfig,
    tracker: ConvergenceTracker,
    /// Safeguard bound on |y|: scaled duals are clamped into
    /// `[-dual_clamp, dual_clamp]`. With a feasible SLA the duals stay far
    /// inside the bound and the clamp is inert; with a (transiently)
    /// infeasible SLA it prevents dual divergence from driving the
    /// coordination signal outside the agents' trained input range — the
    /// standard safeguarded-ADMM device.
    dual_clamp: f64,
    /// Last report received per RA, `[slice][ra]` (bounded-staleness reuse).
    last_known: Vec<Vec<f64>>,
    /// Consecutive rounds each RA has gone without reporting.
    staleness: Vec<usize>,
    /// Missed rounds tolerated before an RA is declared dead.
    staleness_budget: usize,
    /// RAs currently declared dead (past the staleness budget).
    dead: Vec<bool>,
    /// Active flags per slice row: an inactive slice (slot pending
    /// arrival, rejected, or departed) leaves the projection entirely —
    /// its `z`/`y` row is zeroed and neither update touches it.
    active: Vec<bool>,
}

impl PerformanceCoordinator {
    /// Creates a coordinator for `slas.len()` slices over `n_ras` RAs.
    ///
    /// `z` is initialized to an even split of each slice's SLA across RAs
    /// (a feasible starting point); `y` to zero (Alg. 1 line 1).
    ///
    /// # Panics
    ///
    /// Panics if there are no slices or no RAs.
    pub fn new(slas: &[Sla], n_ras: usize, config: AdmmConfig) -> Self {
        assert!(!slas.is_empty(), "need at least one slice");
        assert!(n_ras > 0, "need at least one RA");
        let z = slas
            .iter()
            .map(|sla| vec![sla.umin / n_ras as f64; n_ras])
            .collect();
        let y = vec![vec![0.0; n_ras]; slas.len()];
        let last_known = vec![vec![0.0; n_ras]; slas.len()];
        Self {
            slas: slas.to_vec(),
            n_ras,
            z,
            y,
            config,
            tracker: ConvergenceTracker::new(),
            dual_clamp: 50.0,
            last_known,
            staleness: vec![0; n_ras],
            staleness_budget: 3,
            dead: vec![false; n_ras],
            active: vec![true; slas.len()],
        }
    }

    /// Activates slice row `slice` with SLA `sla` (a dynamic admission or
    /// an in-place resize): the row re-enters the projection with `z`
    /// re-split evenly across the alive RAs and a fresh (zero) dual
    /// column — the ADMM re-anchors on the new requirement instead of
    /// ascending on duals accumulated under the old one.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is beyond the coordinator's slice capacity.
    pub fn admit_slice(&mut self, slice: SliceId, sla: Sla) {
        let i = slice.0;
        assert!(i < self.slas.len(), "slice {i} beyond capacity");
        self.slas[i] = sla;
        self.active[i] = true;
        let alive = self.dead.iter().filter(|d| !**d).count();
        let share = if alive == 0 {
            0.0
        } else {
            sla.umin / alive as f64
        };
        for j in 0..self.n_ras {
            self.z[i][j] = if self.dead[j] { 0.0 } else { share };
            self.y[i][j] = 0.0;
            self.last_known[i][j] = 0.0;
        }
    }

    /// Deactivates slice row `slice` (teardown): its `z`/`y`/last-known
    /// row is zeroed and the row leaves the projection — the departed
    /// slice's share of every RA is redistributed to the survivors by the
    /// next `z`-update, the row analogue of dead-RA column redistribution.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is beyond the coordinator's slice capacity.
    pub fn depart_slice(&mut self, slice: SliceId) {
        let i = slice.0;
        assert!(i < self.slas.len(), "slice {i} beyond capacity");
        self.active[i] = false;
        for j in 0..self.n_ras {
            self.z[i][j] = 0.0;
            self.y[i][j] = 0.0;
            self.last_known[i][j] = 0.0;
        }
    }

    /// Renegotiates an active slice's SLA in place. Equivalent to
    /// re-admitting the row under the new requirement.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is beyond the coordinator's slice capacity.
    pub fn resize_slice(&mut self, slice: SliceId, sla: Sla) {
        self.admit_slice(slice, sla);
    }

    /// Whether slice row `slice` is currently in the projection.
    pub fn slice_active(&self, slice: SliceId) -> bool {
        self.active[slice.0]
    }

    /// Slice `slice`'s live `Umin` (tracks renegotiated SLAs).
    pub fn slice_umin(&self, slice: SliceId) -> f64 {
        self.slas[slice.0].umin
    }

    /// Adjusts the dual safeguard bound (default 50).
    pub fn set_dual_clamp(&mut self, bound: f64) {
        assert!(bound > 0.0, "dual clamp must be positive");
        self.dual_clamp = bound;
    }

    /// Number of slices.
    pub fn n_slices(&self) -> usize {
        self.slas.len()
    }

    /// Number of RAs.
    pub fn n_ras(&self) -> usize {
        self.n_ras
    }

    /// The current auxiliary variables `z`.
    pub fn z(&self) -> &[Vec<f64>] {
        &self.z
    }

    /// The current scaled duals `y`.
    pub fn y(&self) -> &[Vec<f64>] {
        &self.y
    }

    /// The ADMM configuration in effect.
    pub fn config(&self) -> &AdmmConfig {
        &self.config
    }

    /// The coordinating information `z − y` for all agents.
    pub fn coordination_info(&self) -> CoordinationInfo {
        let zy = self
            .z
            .iter()
            .zip(&self.y)
            .map(|(zr, yr)| zr.iter().zip(yr).map(|(z, y)| z - y).collect())
            .collect();
        CoordinationInfo { zy }
    }

    /// One coordination round (Alg. 1 lines 7–10): given the achieved
    /// per-period performance `Σ_t U_{i,j}` (indexed `[slice][ra]`),
    /// update `z` by solving `P2` and `y` by the scaled dual ascent.
    /// Returns this round's residuals.
    ///
    /// # Panics
    ///
    /// Panics if `achieved` is not `n_slices × n_ras`.
    pub fn update(&mut self, achieved: &[Vec<f64>]) -> AdmmResiduals {
        let present = vec![true; self.n_ras];
        self.update_partial(achieved, &present)
    }

    /// One coordination round with a possibly incomplete set of RA reports.
    ///
    /// `present[j]` says whether RA `j`'s report made this round's
    /// deadline; for missing RAs, `achieved[·][j]` is ignored. The
    /// degradation policy (module docs) substitutes last-known reports
    /// within the staleness budget, freezes missing RAs' dual columns,
    /// drops dead RAs from the projection and revives rejoining ones with
    /// zeroed duals.
    ///
    /// # Panics
    ///
    /// Panics if `achieved` is not `n_slices × n_ras` or
    /// `present.len() != n_ras`.
    pub fn update_partial(&mut self, achieved: &[Vec<f64>], present: &[bool]) -> AdmmResiduals {
        assert_eq!(achieved.len(), self.slas.len(), "slice count mismatch");
        assert_eq!(present.len(), self.n_ras, "presence flag count mismatch");

        // Liveness bookkeeping first: arrival of a report always revives.
        for j in 0..self.n_ras {
            if present[j] {
                if self.dead[j] {
                    // Rejoin after death: the RA restarts from checkpointed
                    // policy; stale duals would mis-steer it.
                    for yr in &mut self.y {
                        yr[j] = 0.0;
                    }
                }
                self.dead[j] = false;
                self.staleness[j] = 0;
            } else {
                self.staleness[j] += 1;
                if self.staleness[j] > self.staleness_budget {
                    self.dead[j] = true;
                    for row in self.z.iter_mut().chain(self.y.iter_mut()) {
                        row[j] = 0.0;
                    }
                }
            }
        }

        // Effective reports: fresh where present, last-known otherwise.
        for (i, row) in achieved.iter().enumerate() {
            assert_eq!(row.len(), self.n_ras, "RA count mismatch for slice {i}");
            for (j, &u) in row.iter().enumerate() {
                if present[j] {
                    self.last_known[i][j] = u;
                }
            }
        }
        let alive: Vec<usize> = (0..self.n_ras).filter(|&j| !self.dead[j]).collect();

        let z_prev: Vec<f64> = self.z.iter().flatten().copied().collect();
        for i in 0..self.slas.len() {
            if alive.is_empty() {
                break; // Total blackout: hold z and y until someone rejoins.
            }
            if !self.active[i] {
                continue; // Departed/pending row: stays zeroed, no updates.
            }
            // c = Σ_t U + y over the alive columns only; project onto
            // { Σ_{j alive} z ≥ Umin_i } — a dead RA's share of the SLA is
            // redistributed across the survivors, not silently zeroed.
            let c: Vec<f64> = alive
                .iter()
                .map(|&j| self.last_known[i][j] + self.y[i][j])
                .collect();
            let projected = project_sum_halfspace(&c, self.slas[i].umin);
            for (slot, &j) in alive.iter().enumerate() {
                self.z[i][j] = projected[slot];
            }
            // y ← y + (Σ_t U − z) (Eq. 10) for *reporting* RAs only: a
            // stale report must not drive dual ascent.
            let mut u_alive = vec![0.0; alive.len()];
            let mut z_alive = vec![0.0; alive.len()];
            let mut y_alive = vec![0.0; alive.len()];
            for (slot, &j) in alive.iter().enumerate() {
                u_alive[slot] = self.last_known[i][j];
                z_alive[slot] = self.z[i][j];
                y_alive[slot] = self.y[i][j];
            }
            dual_update(&mut y_alive, &u_alive, &z_alive);
            for (slot, &j) in alive.iter().enumerate() {
                if present[j] {
                    self.y[i][j] = y_alive[slot].clamp(-self.dual_clamp, self.dual_clamp);
                }
            }
        }
        let z_now: Vec<f64> = self.z.iter().flatten().copied().collect();
        let effective_flat: Vec<f64> = self.last_known.iter().flatten().copied().collect();
        let residuals = AdmmResiduals::compute(&effective_flat, &z_now, &z_prev, self.config.rho);
        self.tracker.record(residuals);
        residuals
    }

    /// Sets the number of consecutive missed rounds tolerated before an RA
    /// is declared dead (default 3).
    pub fn set_staleness_budget(&mut self, rounds: usize) {
        self.staleness_budget = rounds;
    }

    /// The staleness budget in effect, rounds.
    pub fn staleness_budget(&self) -> usize {
        self.staleness_budget
    }

    /// Consecutive rounds RA `ra` has gone without reporting.
    pub fn staleness(&self, ra: RaId) -> usize {
        self.staleness[ra.0]
    }

    /// Whether `ra` is currently declared dead.
    pub fn is_dead(&self, ra: RaId) -> bool {
        self.dead[ra.0]
    }

    /// RAs currently declared dead.
    pub fn dead_ras(&self) -> Vec<RaId> {
        (0..self.n_ras)
            .filter(|&j| self.dead[j])
            .map(RaId)
            .collect()
    }

    /// True once the coordination loop should stop (converged or at the
    /// round cap — Alg. 1 line 12).
    pub fn converged(&self) -> bool {
        self.tracker.should_stop(&self.config)
    }

    /// Coordination rounds run so far.
    pub fn rounds(&self) -> usize {
        self.tracker.rounds()
    }

    /// Captures the complete mutable state for a durable snapshot.
    pub fn snapshot(&self) -> CoordinatorState {
        CoordinatorState {
            z: self.z.clone(),
            y: self.y.clone(),
            last_known: self.last_known.clone(),
            staleness: self.staleness.clone(),
            dead: self.dead.clone(),
            residual_history: self.tracker.history().to_vec(),
            dual_clamp: self.dual_clamp,
            staleness_budget: self.staleness_budget,
            active: self.active.clone(),
            umins: self.slas.iter().map(|s| s.umin).collect(),
        }
    }

    /// Restores the mutable state captured by [`PerformanceCoordinator::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::EdgeSliceError::SnapshotMismatch`] when the state's
    /// dimensions disagree with this coordinator's slice/RA counts.
    pub fn restore(&mut self, state: &CoordinatorState) -> Result<(), crate::EdgeSliceError> {
        let n_slices = self.slas.len();
        let shape_ok = state.z.len() == n_slices
            && state.y.len() == n_slices
            && state.last_known.len() == n_slices
            && state
                .z
                .iter()
                .chain(&state.y)
                .chain(&state.last_known)
                .all(|row| row.len() == self.n_ras)
            && state.staleness.len() == self.n_ras
            && state.dead.len() == self.n_ras
            // Lifecycle fields: empty means "static defaults" (a pre-churn
            // snapshot), otherwise one entry per slice row.
            && (state.active.is_empty() || state.active.len() == n_slices)
            && (state.umins.is_empty() || state.umins.len() == n_slices);
        if !shape_ok {
            return Err(crate::EdgeSliceError::SnapshotMismatch {
                reason: format!(
                    "coordinator state shaped for {}x{} does not fit {}x{} (slices x RAs)",
                    state.z.len(),
                    state.z.first().map_or(0, Vec::len),
                    n_slices,
                    self.n_ras
                ),
            });
        }
        self.z = state.z.clone();
        self.y = state.y.clone();
        self.last_known = state.last_known.clone();
        self.staleness = state.staleness.clone();
        self.dead = state.dead.clone();
        self.tracker = ConvergenceTracker::from_history(state.residual_history.clone());
        self.dual_clamp = state.dual_clamp;
        self.staleness_budget = state.staleness_budget;
        if !state.active.is_empty() {
            self.active = state.active.clone();
        }
        if !state.umins.is_empty() {
            for (sla, &umin) in self.slas.iter_mut().zip(&state.umins) {
                *sla = Sla::new(umin);
            }
        }
        Ok(())
    }

    /// Whether slice `i`'s SLA is met by the achieved performance.
    pub fn sla_met(&self, slice: SliceId, achieved: &[Vec<f64>]) -> bool {
        let total: f64 = achieved[slice.0].iter().sum();
        total >= self.slas[slice.0].umin - 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coordinator() -> PerformanceCoordinator {
        PerformanceCoordinator::new(
            &[Sla::new(-50.0), Sla::new(-50.0)],
            2,
            AdmmConfig::default(),
        )
    }

    #[test]
    fn initialization_is_feasible() {
        let c = coordinator();
        for (i, zr) in c.z().iter().enumerate() {
            let sum: f64 = zr.iter().sum();
            assert!(sum >= c.slas[i].umin - 1e-9);
            assert_eq!(zr.len(), 2);
        }
        assert!(c.y().iter().flatten().all(|&y| y == 0.0));
    }

    #[test]
    fn z_update_keeps_sla_feasible() {
        let mut c = coordinator();
        // Achieved performance far below SLA.
        let achieved = vec![vec![-100.0, -80.0], vec![-10.0, -5.0]];
        c.update(&achieved);
        for (i, zr) in c.z().iter().enumerate() {
            let sum: f64 = zr.iter().sum();
            assert!(sum >= c.slas[i].umin - 1e-9, "slice {i} z-sum {sum}");
        }
    }

    #[test]
    fn z_equals_c_when_sla_already_met() {
        let mut c = coordinator();
        let achieved = vec![vec![-10.0, -10.0], vec![-5.0, -5.0]];
        c.update(&achieved);
        // y was zero, c = achieved, Σc = -20 ≥ -50 ⇒ z = achieved, y stays 0.
        assert_eq!(c.z()[0], vec![-10.0, -10.0]);
        assert!(c.y()[0].iter().all(|&y| y.abs() < 1e-12));
    }

    #[test]
    fn duals_accumulate_infeasibility() {
        let mut c = coordinator();
        let achieved = vec![vec![-100.0, -100.0], vec![0.0, 0.0]];
        c.update(&achieved);
        // Slice 0 misses its SLA: z is lifted above achieved ⇒ y < 0.
        assert!(c.y()[0].iter().all(|&y| y < 0.0));
        // Slice 1 is fine ⇒ duals untouched.
        assert!(c.y()[1].iter().all(|&y| y.abs() < 1e-12));
    }

    #[test]
    fn coordination_info_is_z_minus_y() {
        let mut c = coordinator();
        c.update(&[vec![-100.0, -100.0], vec![0.0, 0.0]]);
        let info = c.coordination_info();
        for i in 0..2 {
            for j in 0..2 {
                assert!((info.zy[i][j] - (c.z()[i][j] - c.y()[i][j])).abs() < 1e-12);
            }
        }
        assert_eq!(info.for_ra(RaId(1)), vec![info.zy[0][1], info.zy[1][1]]);
    }

    #[test]
    fn convergence_when_agents_deliver_targets() {
        let mut c = coordinator();
        // An oracle agent that always delivers exactly z − y (consensus).
        for _ in 0..50 {
            let info = c.coordination_info();
            let achieved: Vec<Vec<f64>> = info.zy.clone();
            c.update(&achieved);
            if c.converged() {
                break;
            }
        }
        assert!(c.converged(), "oracle consensus should converge");
        assert!(c.rounds() < 50);
    }

    #[test]
    fn sla_check() {
        let c = coordinator();
        assert!(c.sla_met(SliceId(0), &[vec![-20.0, -20.0], vec![0.0, 0.0]]));
        assert!(!c.sla_met(SliceId(0), &[vec![-40.0, -20.0], vec![0.0, 0.0]]));
    }

    #[test]
    fn full_update_equals_update_partial_with_all_present() {
        let mut a = coordinator();
        let mut b = coordinator();
        let achieved = vec![vec![-100.0, -80.0], vec![-10.0, -5.0]];
        a.update(&achieved);
        b.update_partial(&achieved, &[true, true]);
        assert_eq!(a.z(), b.z());
        assert_eq!(a.y(), b.y());
    }

    #[test]
    fn missing_ra_freezes_its_dual_column() {
        let mut c = coordinator();
        c.update(&[vec![-100.0, -100.0], vec![-100.0, -100.0]]);
        let y_before: Vec<f64> = c.y().iter().map(|row| row[1]).collect();
        // RA 1 misses the next round: its duals must not move.
        c.update_partial(&[vec![-120.0, -90.0], vec![-80.0, -70.0]], &[true, false]);
        let y_after: Vec<f64> = c.y().iter().map(|row| row[1]).collect();
        assert_eq!(y_before, y_after, "missing RA's duals moved");
        assert_eq!(c.staleness(RaId(1)), 1);
        assert!(!c.is_dead(RaId(1)));
    }

    #[test]
    fn exceeding_the_staleness_budget_declares_death_and_redistributes() {
        let mut c = coordinator();
        c.set_staleness_budget(1);
        let achieved = vec![vec![-100.0, -100.0], vec![-100.0, -100.0]];
        c.update(&achieved);
        c.update_partial(&achieved, &[true, false]); // within budget
        assert!(!c.is_dead(RaId(1)));
        c.update_partial(&achieved, &[true, false]); // budget exceeded
        assert!(c.is_dead(RaId(1)));
        assert_eq!(c.dead_ras(), vec![RaId(1)]);
        for (i, zr) in c.z().iter().enumerate() {
            assert_eq!(zr[1], 0.0, "dead column must leave the projection");
            assert!(
                zr[0] >= c.slas[i].umin - 1e-9,
                "slice {i}: survivor must absorb the whole SLA, z = {}",
                zr[0]
            );
        }
    }

    #[test]
    fn rejoin_revives_with_zeroed_duals() {
        let mut c = coordinator();
        c.set_staleness_budget(0);
        let achieved = vec![vec![-100.0, -100.0], vec![-100.0, -100.0]];
        c.update(&achieved);
        c.update_partial(&achieved, &[true, false]);
        assert!(c.is_dead(RaId(1)));
        c.update_partial(&achieved, &[true, true]);
        assert!(!c.is_dead(RaId(1)));
        assert_eq!(c.staleness(RaId(1)), 0);
        // The revived column's duals restarted from zero before this
        // round's ascent; after one ascent they are small relative to the
        // survivor's accumulated duals.
        assert!(c.y()[0][1].abs() <= c.y()[0][0].abs() + 1e-9);
    }

    #[test]
    fn snapshot_restore_round_trips_and_validates_shape() {
        let mut c = coordinator();
        c.set_staleness_budget(2);
        let achieved = vec![vec![-100.0, -80.0], vec![-10.0, -5.0]];
        c.update(&achieved);
        c.update_partial(&achieved, &[true, false]);
        let state = c.snapshot();

        let mut fresh = coordinator();
        fresh.restore(&state).unwrap();
        assert_eq!(fresh.z(), c.z());
        assert_eq!(fresh.y(), c.y());
        assert_eq!(fresh.rounds(), c.rounds());
        assert_eq!(fresh.staleness(RaId(1)), c.staleness(RaId(1)));
        assert_eq!(fresh.staleness_budget(), 2);
        assert_eq!(fresh.snapshot(), state);

        // The restored coordinator continues exactly as the original.
        let next = vec![vec![-90.0, -70.0], vec![-8.0, -4.0]];
        let ra = c.update_partial(&next, &[true, true]);
        let rb = fresh.update_partial(&next, &[true, true]);
        assert_eq!(ra, rb);
        assert_eq!(fresh.z(), c.z());
        assert_eq!(fresh.y(), c.y());

        // A state shaped for a different system is rejected, not applied.
        let mut small = PerformanceCoordinator::new(&[Sla::new(-50.0)], 1, AdmmConfig::default());
        assert!(matches!(
            small.restore(&state),
            Err(crate::EdgeSliceError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn departed_row_leaves_the_projection_and_survivors_absorb_it() {
        let mut c = coordinator();
        let achieved = vec![vec![-100.0, -100.0], vec![-100.0, -100.0]];
        c.update(&achieved);
        c.depart_slice(SliceId(0));
        assert!(!c.slice_active(SliceId(0)));
        assert!(c.z()[0].iter().all(|&z| z == 0.0));
        assert!(c.y()[0].iter().all(|&y| y == 0.0));
        // Updates no longer move the departed row, and the live row still
        // gets its full SLA.
        c.update(&achieved);
        assert!(c.z()[0].iter().all(|&z| z == 0.0));
        assert!(c.y()[0].iter().all(|&y| y == 0.0));
        let live_sum: f64 = c.z()[1].iter().sum();
        assert!(live_sum >= c.slas[1].umin - 1e-9);
    }

    #[test]
    fn admitted_row_reenters_with_even_split_and_fresh_duals() {
        let mut c = coordinator();
        let achieved = vec![vec![-100.0, -100.0], vec![-100.0, -100.0]];
        c.update(&achieved);
        c.depart_slice(SliceId(0));
        c.update(&achieved);
        c.admit_slice(SliceId(0), Sla::new(-30.0));
        assert!(c.slice_active(SliceId(0)));
        assert_eq!(c.slice_umin(SliceId(0)), -30.0);
        assert_eq!(c.z()[0], vec![-15.0, -15.0]);
        assert!(c.y()[0].iter().all(|&y| y == 0.0));
        // The new SLA governs the projection from the next update on.
        c.update(&achieved);
        let sum: f64 = c.z()[0].iter().sum();
        assert!(
            sum >= -30.0 - 1e-9,
            "row must satisfy the *new* Umin: {sum}"
        );
    }

    #[test]
    fn admit_skips_dead_columns() {
        let mut c = coordinator();
        c.set_staleness_budget(0);
        let achieved = vec![vec![-100.0, -100.0], vec![-100.0, -100.0]];
        c.update(&achieved);
        c.update_partial(&achieved, &[true, false]);
        assert!(c.is_dead(RaId(1)));
        c.admit_slice(SliceId(0), Sla::new(-40.0));
        assert_eq!(c.z()[0], vec![-40.0, 0.0], "dead column stays zeroed");
    }

    #[test]
    fn lifecycle_state_round_trips_through_snapshot() {
        let mut c = coordinator();
        let achieved = vec![vec![-100.0, -100.0], vec![-100.0, -100.0]];
        c.update(&achieved);
        c.depart_slice(SliceId(1));
        c.resize_slice(SliceId(0), Sla::new(-35.0));
        let state = c.snapshot();
        assert_eq!(state.active, vec![true, false]);
        assert_eq!(state.umins, vec![-35.0, -50.0]);
        let mut fresh = coordinator();
        fresh.restore(&state).unwrap();
        assert!(!fresh.slice_active(SliceId(1)));
        assert_eq!(fresh.slice_umin(SliceId(0)), -35.0);
        assert_eq!(fresh.snapshot(), state);
    }

    #[test]
    fn restore_accepts_pre_churn_snapshots_with_empty_lifecycle_fields() {
        let mut c = coordinator();
        c.update(&[vec![-100.0, -80.0], vec![-10.0, -5.0]]);
        let mut state = c.snapshot();
        state.active.clear();
        state.umins.clear();
        let mut fresh = coordinator();
        fresh.restore(&state).unwrap();
        assert!(fresh.slice_active(SliceId(0)) && fresh.slice_active(SliceId(1)));
        assert_eq!(fresh.slice_umin(SliceId(0)), -50.0);
    }

    #[test]
    fn total_blackout_holds_state() {
        let mut c = coordinator();
        c.set_staleness_budget(0);
        let achieved = vec![vec![-100.0, -100.0], vec![-100.0, -100.0]];
        c.update(&achieved);
        let (z, y) = (c.z().to_vec(), c.y().to_vec());
        c.update_partial(&achieved, &[false, false]);
        c.update_partial(&achieved, &[false, false]);
        assert!(c.dead_ras() == vec![RaId(0), RaId(1)]);
        // z/y zeroed for dead columns is the only change; a later rejoin
        // rebuilds them. No NaNs, no panics.
        assert!(c.z().iter().flatten().all(|v| v.is_finite()));
        assert!(c.y().iter().flatten().all(|v| v.is_finite()));
        let _ = (z, y);
    }
}
