//! The central performance coordinator (paper Sec. IV-A).
//!
//! Solves the `z`-update `P2` (Eq. 11) — a per-slice Euclidean projection of
//! `c_{i,·} = Σ_t U_{i,·} + y_{i,·}` onto the SLA half-space
//! `Σ_j z_{i,j} ≥ Umin_i` — and the scaled dual update
//! `y ← y + (Σ_t U − z)` (Eq. 10). The only message it exchanges with the
//! orchestration agents is the coordinating information `z − y` per
//! (slice, RA), which is what keeps EdgeSlice's communication overhead low.

use edgeslice_optim::{
    dual_update, project_sum_halfspace, AdmmConfig, AdmmResiduals, ConvergenceTracker,
};
use serde::{Deserialize, Serialize};

use crate::{RaId, Sla, SliceId};

/// The per-(slice, RA) coordinating information sent to an orchestration
/// agent: `z_{i,j} − y_{i,j}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinationInfo {
    /// `z − y` indexed `[slice][ra]`.
    pub zy: Vec<Vec<f64>>,
}

impl CoordinationInfo {
    /// The message for one RA: `z_{i,j} − y_{i,j}` for all slices `i`.
    pub fn for_ra(&self, ra: RaId) -> Vec<f64> {
        self.zy.iter().map(|row| row[ra.0]).collect()
    }
}

/// The performance coordinator.
#[derive(Debug, Clone)]
pub struct PerformanceCoordinator {
    slas: Vec<Sla>,
    n_ras: usize,
    /// Auxiliary variables `z`, `[slice][ra]`.
    z: Vec<Vec<f64>>,
    /// Scaled dual variables `y`, `[slice][ra]`.
    y: Vec<Vec<f64>>,
    config: AdmmConfig,
    tracker: ConvergenceTracker,
    /// Safeguard bound on |y|: scaled duals are clamped into
    /// `[-dual_clamp, dual_clamp]`. With a feasible SLA the duals stay far
    /// inside the bound and the clamp is inert; with a (transiently)
    /// infeasible SLA it prevents dual divergence from driving the
    /// coordination signal outside the agents' trained input range — the
    /// standard safeguarded-ADMM device.
    dual_clamp: f64,
}

impl PerformanceCoordinator {
    /// Creates a coordinator for `slas.len()` slices over `n_ras` RAs.
    ///
    /// `z` is initialized to an even split of each slice's SLA across RAs
    /// (a feasible starting point); `y` to zero (Alg. 1 line 1).
    ///
    /// # Panics
    ///
    /// Panics if there are no slices or no RAs.
    pub fn new(slas: &[Sla], n_ras: usize, config: AdmmConfig) -> Self {
        assert!(!slas.is_empty(), "need at least one slice");
        assert!(n_ras > 0, "need at least one RA");
        let z = slas
            .iter()
            .map(|sla| vec![sla.umin / n_ras as f64; n_ras])
            .collect();
        let y = vec![vec![0.0; n_ras]; slas.len()];
        Self {
            slas: slas.to_vec(),
            n_ras,
            z,
            y,
            config,
            tracker: ConvergenceTracker::new(),
            dual_clamp: 50.0,
        }
    }

    /// Adjusts the dual safeguard bound (default 50).
    pub fn set_dual_clamp(&mut self, bound: f64) {
        assert!(bound > 0.0, "dual clamp must be positive");
        self.dual_clamp = bound;
    }

    /// Number of slices.
    pub fn n_slices(&self) -> usize {
        self.slas.len()
    }

    /// Number of RAs.
    pub fn n_ras(&self) -> usize {
        self.n_ras
    }

    /// The current auxiliary variables `z`.
    pub fn z(&self) -> &[Vec<f64>] {
        &self.z
    }

    /// The current scaled duals `y`.
    pub fn y(&self) -> &[Vec<f64>] {
        &self.y
    }

    /// The ADMM configuration in effect.
    pub fn config(&self) -> &AdmmConfig {
        &self.config
    }

    /// The coordinating information `z − y` for all agents.
    pub fn coordination_info(&self) -> CoordinationInfo {
        let zy = self
            .z
            .iter()
            .zip(&self.y)
            .map(|(zr, yr)| zr.iter().zip(yr).map(|(z, y)| z - y).collect())
            .collect();
        CoordinationInfo { zy }
    }

    /// One coordination round (Alg. 1 lines 7–10): given the achieved
    /// per-period performance `Σ_t U_{i,j}` (indexed `[slice][ra]`),
    /// update `z` by solving `P2` and `y` by the scaled dual ascent.
    /// Returns this round's residuals.
    ///
    /// # Panics
    ///
    /// Panics if `achieved` is not `n_slices × n_ras`.
    pub fn update(&mut self, achieved: &[Vec<f64>]) -> AdmmResiduals {
        assert_eq!(achieved.len(), self.slas.len(), "slice count mismatch");
        let z_prev: Vec<f64> = self.z.iter().flatten().copied().collect();
        for (i, sla) in self.slas.iter().enumerate() {
            assert_eq!(achieved[i].len(), self.n_ras, "RA count mismatch for slice {i}");
            // c = Σ_t U + y ; project onto { Σ_j z ≥ Umin_i } (P2).
            let c: Vec<f64> =
                achieved[i].iter().zip(&self.y[i]).map(|(u, y)| u + y).collect();
            self.z[i] = project_sum_halfspace(&c, sla.umin);
            // y ← y + (Σ_t U − z) (Eq. 10), safeguarded.
            dual_update(&mut self.y[i], &achieved[i], &self.z[i]);
            for y in &mut self.y[i] {
                *y = y.clamp(-self.dual_clamp, self.dual_clamp);
            }
        }
        let z_now: Vec<f64> = self.z.iter().flatten().copied().collect();
        let achieved_flat: Vec<f64> = achieved.iter().flatten().copied().collect();
        let residuals =
            AdmmResiduals::compute(&achieved_flat, &z_now, &z_prev, self.config.rho);
        self.tracker.record(residuals);
        residuals
    }

    /// True once the coordination loop should stop (converged or at the
    /// round cap — Alg. 1 line 12).
    pub fn converged(&self) -> bool {
        self.tracker.should_stop(&self.config)
    }

    /// Coordination rounds run so far.
    pub fn rounds(&self) -> usize {
        self.tracker.rounds()
    }

    /// Whether slice `i`'s SLA is met by the achieved performance.
    pub fn sla_met(&self, slice: SliceId, achieved: &[Vec<f64>]) -> bool {
        let total: f64 = achieved[slice.0].iter().sum();
        total >= self.slas[slice.0].umin - 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coordinator() -> PerformanceCoordinator {
        PerformanceCoordinator::new(&[Sla::new(-50.0), Sla::new(-50.0)], 2, AdmmConfig::default())
    }

    #[test]
    fn initialization_is_feasible() {
        let c = coordinator();
        for (i, zr) in c.z().iter().enumerate() {
            let sum: f64 = zr.iter().sum();
            assert!(sum >= c.slas[i].umin - 1e-9);
            assert_eq!(zr.len(), 2);
        }
        assert!(c.y().iter().flatten().all(|&y| y == 0.0));
    }

    #[test]
    fn z_update_keeps_sla_feasible() {
        let mut c = coordinator();
        // Achieved performance far below SLA.
        let achieved = vec![vec![-100.0, -80.0], vec![-10.0, -5.0]];
        c.update(&achieved);
        for (i, zr) in c.z().iter().enumerate() {
            let sum: f64 = zr.iter().sum();
            assert!(sum >= c.slas[i].umin - 1e-9, "slice {i} z-sum {sum}");
        }
    }

    #[test]
    fn z_equals_c_when_sla_already_met() {
        let mut c = coordinator();
        let achieved = vec![vec![-10.0, -10.0], vec![-5.0, -5.0]];
        c.update(&achieved);
        // y was zero, c = achieved, Σc = -20 ≥ -50 ⇒ z = achieved, y stays 0.
        assert_eq!(c.z()[0], vec![-10.0, -10.0]);
        assert!(c.y()[0].iter().all(|&y| y.abs() < 1e-12));
    }

    #[test]
    fn duals_accumulate_infeasibility() {
        let mut c = coordinator();
        let achieved = vec![vec![-100.0, -100.0], vec![0.0, 0.0]];
        c.update(&achieved);
        // Slice 0 misses its SLA: z is lifted above achieved ⇒ y < 0.
        assert!(c.y()[0].iter().all(|&y| y < 0.0));
        // Slice 1 is fine ⇒ duals untouched.
        assert!(c.y()[1].iter().all(|&y| y.abs() < 1e-12));
    }

    #[test]
    fn coordination_info_is_z_minus_y() {
        let mut c = coordinator();
        c.update(&[vec![-100.0, -100.0], vec![0.0, 0.0]]);
        let info = c.coordination_info();
        for i in 0..2 {
            for j in 0..2 {
                assert!((info.zy[i][j] - (c.z()[i][j] - c.y()[i][j])).abs() < 1e-12);
            }
        }
        assert_eq!(info.for_ra(RaId(1)), vec![info.zy[0][1], info.zy[1][1]]);
    }

    #[test]
    fn convergence_when_agents_deliver_targets() {
        let mut c = coordinator();
        // An oracle agent that always delivers exactly z − y (consensus).
        for _ in 0..50 {
            let info = c.coordination_info();
            let achieved: Vec<Vec<f64>> = info.zy.clone();
            c.update(&achieved);
            if c.converged() {
                break;
            }
        }
        assert!(c.converged(), "oracle consensus should converge");
        assert!(c.rounds() < 50);
    }

    #[test]
    fn sla_check() {
        let c = coordinator();
        assert!(c.sla_met(SliceId(0), &[vec![-20.0, -20.0], vec![0.0, 0.0]]));
        assert!(!c.sla_met(SliceId(0), &[vec![-40.0, -20.0], vec![0.0, 0.0]]));
    }
}
