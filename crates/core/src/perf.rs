//! Slice performance functions.
//!
//! The evaluation defines `U = −(l)^α` with `α = 2` over the queue length
//! `l` (Sec. VII), deliberately *not* revealed to the coordinator or agents
//! — EdgeSlice must learn it. Fig. 11a varies `α ∈ {1.0, 1.5, 2.0, 2.5}`;
//! Fig. 11b swaps in a performance function that only depends on the
//! service time, eliminating the value of observing traffic.

use serde::{Deserialize, Serialize};

/// A per-interval slice performance metric `U_{i,j}^{(t)}`.
///
/// Implementations receive the slice's queue length at the end of the
/// interval and the per-task service time produced by the current resource
/// orchestration.
pub trait PerformanceFunction: Send + Sync {
    /// Evaluates the performance (higher is better; the paper's functions
    /// are ≤ 0).
    fn evaluate(&self, queue_len: f64, service_time_s: f64) -> f64;

    /// A short label for reports.
    fn label(&self) -> String;
}

/// The paper's default: `U = −l^α` (Sec. VII, Fig. 11a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueuePenalty {
    /// The exponent α.
    pub alpha: f64,
}

impl QueuePenalty {
    /// Creates the penalty with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        Self { alpha }
    }

    /// The paper's default `α = 2`.
    pub fn paper() -> Self {
        Self::new(2.0)
    }
}

impl PerformanceFunction for QueuePenalty {
    fn evaluate(&self, queue_len: f64, _service_time_s: f64) -> f64 {
        -queue_len.max(0.0).powf(self.alpha)
    }

    fn label(&self) -> String {
        format!("-l^{}", self.alpha)
    }
}

/// Fig. 11b's alternative: the negative service time of slice users,
/// independent of the queue — designed so that observing traffic carries no
/// information.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NegServiceTime {
    /// Cap applied to unserved (infinite) service times, seconds.
    pub cap_s: f64,
}

impl NegServiceTime {
    /// Creates the metric with a cap for unserved intervals.
    pub fn new(cap_s: f64) -> Self {
        Self { cap_s }
    }

    /// A sensible default cap (10 s).
    pub fn paper() -> Self {
        Self::new(10.0)
    }
}

impl PerformanceFunction for NegServiceTime {
    fn evaluate(&self, _queue_len: f64, service_time_s: f64) -> f64 {
        -service_time_s.min(self.cap_s)
    }

    fn label(&self) -> String {
        "-service_time".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_penalty_matches_paper_default() {
        let u = QueuePenalty::paper();
        assert_eq!(u.evaluate(0.0, 1.0), 0.0);
        assert_eq!(u.evaluate(5.0, 1.0), -25.0);
        assert_eq!(u.evaluate(10.0, 99.0), -100.0);
    }

    #[test]
    fn larger_alpha_reports_worse_performance() {
        // Fig. 11a's premise: same queue, larger α ⇒ lower U.
        let l = 7.0;
        let mut prev = QueuePenalty::new(1.0).evaluate(l, 0.0);
        for alpha in [1.5, 2.0, 2.5] {
            let u = QueuePenalty::new(alpha).evaluate(l, 0.0);
            assert!(u < prev, "alpha {alpha}");
            prev = u;
        }
    }

    #[test]
    fn queue_penalty_ignores_service_time() {
        let u = QueuePenalty::paper();
        assert_eq!(u.evaluate(3.0, 0.1), u.evaluate(3.0, 100.0));
    }

    #[test]
    fn neg_service_time_ignores_queue() {
        let u = NegServiceTime::paper();
        assert_eq!(u.evaluate(0.0, 0.5), u.evaluate(100.0, 0.5));
        assert_eq!(u.evaluate(0.0, 0.5), -0.5);
    }

    #[test]
    fn neg_service_time_caps_unserved() {
        let u = NegServiceTime::new(10.0);
        assert_eq!(u.evaluate(0.0, f64::INFINITY), -10.0);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(QueuePenalty::paper().label(), "-l^2");
        assert_eq!(NegServiceTime::paper().label(), "-service_time");
    }
}
