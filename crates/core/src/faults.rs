//! Deterministic fault injection for the orchestration loop.
//!
//! Real wireless-edge deployments lose resource autonomies (node reboots,
//! backhaul cuts), drop or delay the coordinator's `z − y` broadcasts, and
//! see substrate capacity sag under interference or co-tenancy. This module
//! injects all of those against [`crate::EdgeSliceSystem`] so the
//! degradation policy can be exercised and measured:
//!
//! * a [`FaultConfig`] describes *stochastic* fault processes; a seeded
//!   [`FaultPlan::generate`] expands it into a concrete, reproducible
//!   schedule (same seed ⇒ byte-identical plan ⇒ byte-identical run);
//! * [`FaultPlan::scripted`] builds a hand-written schedule for targeted
//!   tests (e.g. "RA 1 is dark for rounds 3..6");
//! * a [`FaultInjector`] compiles the plan into per-(RA, round) lookups the
//!   orchestrator queries each round as a [`RaFaultView`].
//!
//! The injector is pure bookkeeping: all *reactions* (stale-report reuse,
//! frozen duals, checkpoint re-sync, slice redistribution) live in the
//! coordinator and orchestrator.

use crate::error::EdgeSliceError;
use crate::ids::{RaId, ResourceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the stochastic fault processes, expanded by
/// [`FaultPlan::generate`].
///
/// Rates are per-RA, per-round Bernoulli probabilities; durations are
/// inclusive `(min, max)` ranges in coordination rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the fault stream (independent of the traffic seed).
    pub seed: u64,
    /// Number of resource autonomies in the system.
    pub n_ras: usize,
    /// Rounds the plan covers.
    pub horizon_rounds: usize,
    /// Probability an up RA starts an outage this round.
    pub outage_rate: f64,
    /// Outage duration range, rounds (inclusive).
    pub outage_rounds: (usize, usize),
    /// Probability an up RA's `z − y` broadcast is lost this round (the RA
    /// orchestrates on the previous round's coordination).
    pub broadcast_drop_rate: f64,
    /// Probability an up RA's `Σ_t U` report misses the round deadline
    /// (it serves traffic but the coordinator sees it one round late).
    pub straggler_rate: f64,
    /// Probability a capacity-degradation window starts on an up RA.
    pub degradation_rate: f64,
    /// Capacity multiplier during a degradation window (e.g. `0.5` halves
    /// the affected domain's `R^{tot}`).
    pub degradation_factor: f64,
    /// Degradation duration range, rounds (inclusive).
    pub degradation_rounds: (usize, usize),
    /// Probability an up RA's worker *panics* at the top of a round — a
    /// real crash for the runtime supervisor to catch, not a simulated
    /// flag. Defaults to `0.0` in every pre-existing preset so older fault
    /// schedules are reproduced byte-for-byte.
    pub panic_rate: f64,
}

impl FaultConfig {
    /// A configuration that injects nothing (the fault-free baseline).
    pub fn quiet(n_ras: usize, horizon_rounds: usize) -> Self {
        Self {
            seed: 0,
            n_ras,
            horizon_rounds,
            outage_rate: 0.0,
            outage_rounds: (1, 1),
            broadcast_drop_rate: 0.0,
            straggler_rate: 0.0,
            degradation_rate: 0.0,
            degradation_factor: 1.0,
            degradation_rounds: (1, 1),
            panic_rate: 0.0,
        }
    }

    /// A moderately hostile environment: occasional short outages, lossy
    /// coordination, stragglers and capacity sags.
    pub fn stress(n_ras: usize, horizon_rounds: usize, seed: u64) -> Self {
        Self {
            seed,
            n_ras,
            horizon_rounds,
            outage_rate: 0.05,
            outage_rounds: (1, 3),
            broadcast_drop_rate: 0.10,
            straggler_rate: 0.10,
            degradation_rate: 0.05,
            degradation_factor: 0.5,
            degradation_rounds: (1, 4),
            panic_rate: 0.0,
        }
    }

    /// The [`FaultConfig::stress`] environment plus real worker crashes:
    /// every fault channel active at once, for chaos testing the
    /// supervised runtime.
    pub fn chaos(n_ras: usize, horizon_rounds: usize, seed: u64) -> Self {
        Self {
            panic_rate: 0.08,
            ..Self::stress(n_ras, horizon_rounds, seed)
        }
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The RA is unreachable for `rounds` rounds starting at `start_round`:
    /// no reports, no broadcasts received, no traffic served.
    RaOutage {
        /// The affected RA.
        ra: RaId,
        /// First dark round.
        start_round: usize,
        /// Outage length, rounds.
        rounds: usize,
    },
    /// The coordinator's `z − y` broadcast to `ra` is lost in `round`; the
    /// RA orchestrates on its previous coordination info.
    BroadcastDrop {
        /// The affected RA.
        ra: RaId,
        /// The lossy round.
        round: usize,
    },
    /// `ra`'s `Σ_t U` report misses `round`'s deadline and reaches the
    /// coordinator one round late.
    Straggler {
        /// The affected RA.
        ra: RaId,
        /// The round whose deadline is missed.
        round: usize,
    },
    /// One substrate domain's total capacity is scaled by `factor` for
    /// `rounds` rounds (the paper's `R^{tot}_{j,k}` temporarily shrinks).
    CapacityDegradation {
        /// The affected RA.
        ra: RaId,
        /// The degraded domain.
        domain: ResourceKind,
        /// First degraded round.
        start_round: usize,
        /// Window length, rounds.
        rounds: usize,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
    },
    /// `ra`'s worker panics at the top of `round`: the runtime supervisor
    /// catches the unwind, restarts the worker under its backoff budget,
    /// and reports the RA down for that round. This is a *real* panic
    /// crossing `catch_unwind`, not a simulated missing report.
    WorkerPanic {
        /// The affected RA.
        ra: RaId,
        /// The round whose `run_round` panics.
        round: usize,
    },
    /// `ra`'s worker process freezes for `rounds` rounds starting at
    /// `start_round`: it stays connected but sends neither reports nor
    /// lease refreshes — the networked runtime detects it via *lease
    /// expiry*, never via a channel disconnect. In-process schedulers
    /// ignore this fault (there is no lease to lapse); it exists to
    /// script deterministic failure-detection tests for the multi-process
    /// transport. Scripted-only: [`FaultPlan::generate`] never emits it,
    /// so stochastic plans are byte-stable.
    WorkerSilence {
        /// The affected RA.
        ra: RaId,
        /// First silent round.
        start_round: usize,
        /// Silence length, rounds.
        rounds: usize,
    },
}

impl FaultEvent {
    fn ra(&self) -> RaId {
        match *self {
            FaultEvent::RaOutage { ra, .. }
            | FaultEvent::BroadcastDrop { ra, .. }
            | FaultEvent::Straggler { ra, .. }
            | FaultEvent::CapacityDegradation { ra, .. }
            | FaultEvent::WorkerPanic { ra, .. }
            | FaultEvent::WorkerSilence { ra, .. } => ra,
        }
    }
}

/// A concrete, reproducible schedule of [`FaultEvent`]s over a horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    n_ras: usize,
    horizon_rounds: usize,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (fault-free baseline).
    pub fn none(n_ras: usize, horizon_rounds: usize) -> Self {
        Self {
            n_ras,
            horizon_rounds,
            events: Vec::new(),
        }
    }

    /// Expands `config` into a concrete schedule with a dedicated
    /// `StdRng` seeded from `config.seed`: the same configuration always
    /// yields the same plan, independent of the traffic/training streams.
    pub fn generate(config: &FaultConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ FAULT_STREAM_TAG);
        let mut events = Vec::new();
        for j in 0..config.n_ras {
            let ra = RaId(j);
            // Outage process: while down, no other fault can start.
            let mut down_until = 0usize;
            let mut degraded_until = 0usize;
            for round in 0..config.horizon_rounds {
                if round < down_until {
                    continue;
                }
                if config.outage_rate > 0.0 && rng.gen_bool(config.outage_rate) {
                    let (lo, hi) = config.outage_rounds;
                    let len = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                    events.push(FaultEvent::RaOutage {
                        ra,
                        start_round: round,
                        rounds: len,
                    });
                    down_until = round + len;
                    continue;
                }
                if config.broadcast_drop_rate > 0.0 && rng.gen_bool(config.broadcast_drop_rate) {
                    events.push(FaultEvent::BroadcastDrop { ra, round });
                }
                if config.straggler_rate > 0.0 && rng.gen_bool(config.straggler_rate) {
                    events.push(FaultEvent::Straggler { ra, round });
                }
                // Guarded draw: a zero panic_rate consumes no randomness,
                // so pre-existing configs reproduce their plans exactly.
                if config.panic_rate > 0.0 && rng.gen_bool(config.panic_rate) {
                    events.push(FaultEvent::WorkerPanic { ra, round });
                }
                if round >= degraded_until
                    && config.degradation_rate > 0.0
                    && rng.gen_bool(config.degradation_rate)
                {
                    let (lo, hi) = config.degradation_rounds;
                    let len = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                    let domain = ResourceKind::ALL[rng.gen_range(0..ResourceKind::COUNT)];
                    events.push(FaultEvent::CapacityDegradation {
                        ra,
                        domain,
                        start_round: round,
                        rounds: len,
                        factor: config.degradation_factor,
                    });
                    degraded_until = round + len;
                }
            }
        }
        Self {
            n_ras: config.n_ras,
            horizon_rounds: config.horizon_rounds,
            events,
        }
    }

    /// Builds a hand-written schedule, validating every event against the
    /// system size and horizon.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeSliceError::InvalidFaultPlan`] when an event references
    /// an RA `≥ n_ras`, starts at/after the horizon, has a zero duration,
    /// or a degradation factor outside `(0, 1]`.
    pub fn scripted(
        n_ras: usize,
        horizon_rounds: usize,
        events: Vec<FaultEvent>,
    ) -> Result<Self, EdgeSliceError> {
        for ev in &events {
            let bad = |msg: String| Err(EdgeSliceError::InvalidFaultPlan(msg));
            if ev.ra().0 >= n_ras {
                return bad(format!("{:?} references RA ≥ {n_ras}", ev));
            }
            match *ev {
                FaultEvent::RaOutage {
                    start_round,
                    rounds,
                    ..
                }
                | FaultEvent::CapacityDegradation {
                    start_round,
                    rounds,
                    ..
                }
                | FaultEvent::WorkerSilence {
                    start_round,
                    rounds,
                    ..
                } if start_round >= horizon_rounds || rounds == 0 => {
                    return bad(format!(
                        "{ev:?} outside horizon {horizon_rounds} or zero-length"
                    ));
                }
                FaultEvent::BroadcastDrop { round, .. }
                | FaultEvent::Straggler { round, .. }
                | FaultEvent::WorkerPanic { round, .. }
                    if round >= horizon_rounds =>
                {
                    return bad(format!("{ev:?} outside horizon {horizon_rounds}"));
                }
                FaultEvent::CapacityDegradation { factor, .. }
                    if !(factor > 0.0 && factor <= 1.0) =>
                {
                    return bad(format!("{ev:?} factor must be in (0, 1]"));
                }
                _ => {}
            }
        }
        Ok(Self {
            n_ras,
            horizon_rounds,
            events,
        })
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of RAs the plan covers.
    pub fn n_ras(&self) -> usize {
        self.n_ras
    }

    /// Rounds the plan covers.
    pub fn horizon_rounds(&self) -> usize {
        self.horizon_rounds
    }
}

/// Domain-separation tag keeping the fault stream independent of every
/// other consumer of the same user-facing seed.
const FAULT_STREAM_TAG: u64 = 0xFA17_0000_0000_0001;

/// What one RA experiences in one round, as queried by the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaFaultView {
    /// The RA is dark this round: serves nothing, reports nothing.
    pub down: bool,
    /// First up round after an outage: the orchestrator re-syncs the RA
    /// from its [`crate::PolicyCheckpoint`] and flushes its queues.
    pub rejoining: bool,
    /// The `z − y` broadcast was lost: the RA keeps last round's
    /// coordination info.
    pub broadcast_dropped: bool,
    /// The report misses the deadline: the coordinator treats the RA as
    /// missing this round even though traffic was served.
    pub straggler: bool,
    /// The worker genuinely panics at the top of this round; the runtime
    /// supervisor catches it and reports the RA down.
    pub panic: bool,
    /// The worker process is frozen this round: connected but sending
    /// neither reports nor lease refreshes. Only the networked runtime
    /// reacts (lease expiry); in-process schedulers ignore it.
    pub silent: bool,
    /// Per-domain capacity multipliers `[radio, transport, compute]`,
    /// `1.0` when healthy.
    pub capacity_scale: [f64; 3],
}

impl RaFaultView {
    /// The healthy view.
    pub fn healthy() -> Self {
        Self {
            down: false,
            rejoining: false,
            broadcast_dropped: false,
            straggler: false,
            panic: false,
            silent: false,
            capacity_scale: [1.0; 3],
        }
    }

    /// Whether anything at all is wrong this round.
    pub fn is_healthy(&self) -> bool {
        *self == Self::healthy()
    }
}

/// A [`FaultPlan`] compiled into O(1) per-(RA, round) lookups.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// `[round][ra]` flags / scales.
    down: Vec<Vec<bool>>,
    dropped: Vec<Vec<bool>>,
    straggle: Vec<Vec<bool>>,
    panics: Vec<Vec<bool>>,
    silence: Vec<Vec<bool>>,
    scale: Vec<Vec<[f64; 3]>>,
}

impl FaultInjector {
    /// Compiles `plan` into round-indexed tables.
    pub fn new(plan: FaultPlan) -> Self {
        let (rounds, n_ras) = (plan.horizon_rounds, plan.n_ras);
        let mut down = vec![vec![false; n_ras]; rounds];
        let mut dropped = vec![vec![false; n_ras]; rounds];
        let mut straggle = vec![vec![false; n_ras]; rounds];
        let mut panics = vec![vec![false; n_ras]; rounds];
        let mut silence = vec![vec![false; n_ras]; rounds];
        let mut scale = vec![vec![[1.0f64; 3]; n_ras]; rounds];
        for ev in &plan.events {
            match *ev {
                FaultEvent::RaOutage {
                    ra,
                    start_round,
                    rounds: len,
                } => {
                    let end = (start_round + len).min(rounds);
                    for row in &mut down[start_round..end] {
                        row[ra.0] = true;
                    }
                }
                FaultEvent::BroadcastDrop { ra, round } => {
                    if round < rounds {
                        dropped[round][ra.0] = true;
                    }
                }
                FaultEvent::Straggler { ra, round } => {
                    if round < rounds {
                        straggle[round][ra.0] = true;
                    }
                }
                FaultEvent::CapacityDegradation {
                    ra,
                    domain,
                    start_round,
                    rounds: len,
                    factor,
                } => {
                    let end = (start_round + len).min(rounds);
                    for row in &mut scale[start_round..end] {
                        row[ra.0][domain.index()] *= factor;
                    }
                }
                FaultEvent::WorkerPanic { ra, round } => {
                    if round < rounds {
                        panics[round][ra.0] = true;
                    }
                }
                FaultEvent::WorkerSilence {
                    ra,
                    start_round,
                    rounds: len,
                } => {
                    let end = (start_round + len).min(rounds);
                    for row in &mut silence[start_round..end] {
                        row[ra.0] = true;
                    }
                }
            }
        }
        Self {
            plan,
            down,
            dropped,
            straggle,
            panics,
            silence,
            scale,
        }
    }

    /// The fault-free injector.
    pub fn none(n_ras: usize, horizon_rounds: usize) -> Self {
        Self::new(FaultPlan::none(n_ras, horizon_rounds))
    }

    /// The compiled plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What `ra` experiences in `round`. Rounds beyond the horizon are
    /// healthy (the plan simply ran out).
    pub fn view(&self, ra: RaId, round: usize) -> RaFaultView {
        if round >= self.plan.horizon_rounds || ra.0 >= self.plan.n_ras {
            return RaFaultView::healthy();
        }
        let down = self.down[round][ra.0];
        let was_down = round > 0 && self.down[round - 1][ra.0];
        RaFaultView {
            down,
            rejoining: !down && was_down,
            broadcast_dropped: self.dropped[round][ra.0] && !down,
            straggler: self.straggle[round][ra.0] && !down,
            // A frozen process can't crash: silence masks the panic draw.
            panic: self.panics[round][ra.0] && !down && !self.silence[round][ra.0],
            silent: self.silence[round][ra.0] && !down,
            capacity_scale: if down {
                [1.0; 3]
            } else {
                self.scale[round][ra.0]
            },
        }
    }

    /// Whether `ra` is dark in `round`.
    pub fn ra_down(&self, ra: RaId, round: usize) -> bool {
        self.view(ra, round).down
    }

    /// RAs dark in `round`.
    pub fn down_ras(&self, round: usize) -> Vec<RaId> {
        (0..self.plan.n_ras)
            .map(RaId)
            .filter(|&ra| self.ra_down(ra, round))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_in_the_seed() {
        let cfg = FaultConfig::stress(4, 50, 1234);
        let a = FaultPlan::generate(&cfg);
        let b = FaultPlan::generate(&cfg);
        assert_eq!(a, b);
        let c = FaultPlan::generate(&FaultConfig { seed: 1235, ..cfg });
        assert_ne!(a, c, "different seeds should differ for a hostile config");
    }

    #[test]
    fn quiet_config_generates_nothing() {
        let plan = FaultPlan::generate(&FaultConfig::quiet(3, 100));
        assert!(plan.events().is_empty());
    }

    #[test]
    fn scripted_validates_events() {
        let ok = FaultPlan::scripted(
            2,
            10,
            vec![FaultEvent::RaOutage {
                ra: RaId(1),
                start_round: 3,
                rounds: 2,
            }],
        );
        assert!(ok.is_ok());
        let bad_ra = FaultPlan::scripted(
            2,
            10,
            vec![FaultEvent::BroadcastDrop {
                ra: RaId(2),
                round: 0,
            }],
        );
        assert!(matches!(bad_ra, Err(EdgeSliceError::InvalidFaultPlan(_))));
        let bad_factor = FaultPlan::scripted(
            2,
            10,
            vec![FaultEvent::CapacityDegradation {
                ra: RaId(0),
                domain: ResourceKind::Radio,
                start_round: 0,
                rounds: 2,
                factor: 0.0,
            }],
        );
        assert!(matches!(
            bad_factor,
            Err(EdgeSliceError::InvalidFaultPlan(_))
        ));
    }

    #[test]
    fn injector_compiles_outage_windows_and_rejoin() {
        let plan = FaultPlan::scripted(
            2,
            10,
            vec![FaultEvent::RaOutage {
                ra: RaId(1),
                start_round: 2,
                rounds: 3,
            }],
        )
        .unwrap();
        let inj = FaultInjector::new(plan);
        assert!(!inj.ra_down(RaId(1), 1));
        for r in 2..5 {
            assert!(inj.ra_down(RaId(1), r));
            assert!(!inj.ra_down(RaId(0), r));
        }
        assert!(!inj.ra_down(RaId(1), 5));
        assert!(inj.view(RaId(1), 5).rejoining);
        assert!(!inj.view(RaId(1), 6).rejoining);
        assert_eq!(inj.down_ras(3), vec![RaId(1)]);
    }

    #[test]
    fn degradation_scales_one_domain() {
        let plan = FaultPlan::scripted(
            1,
            6,
            vec![FaultEvent::CapacityDegradation {
                ra: RaId(0),
                domain: ResourceKind::Transport,
                start_round: 1,
                rounds: 2,
                factor: 0.5,
            }],
        )
        .unwrap();
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.view(RaId(0), 0).capacity_scale, [1.0; 3]);
        assert_eq!(inj.view(RaId(0), 1).capacity_scale, [1.0, 0.5, 1.0]);
        assert_eq!(inj.view(RaId(0), 2).capacity_scale, [1.0, 0.5, 1.0]);
        assert_eq!(inj.view(RaId(0), 3).capacity_scale, [1.0; 3]);
    }

    #[test]
    fn worker_panics_compile_and_are_suppressed_while_down() {
        let plan = FaultPlan::scripted(
            2,
            10,
            vec![
                FaultEvent::RaOutage {
                    ra: RaId(0),
                    start_round: 2,
                    rounds: 2,
                },
                FaultEvent::WorkerPanic {
                    ra: RaId(0),
                    round: 2,
                },
                FaultEvent::WorkerPanic {
                    ra: RaId(0),
                    round: 5,
                },
            ],
        )
        .unwrap();
        let inj = FaultInjector::new(plan);
        // A dark RA has no worker to crash: down wins over panic.
        assert!(!inj.view(RaId(0), 2).panic);
        assert!(inj.view(RaId(0), 5).panic);
        assert!(!inj.view(RaId(1), 5).panic);
        let out_of_range = FaultPlan::scripted(
            2,
            10,
            vec![FaultEvent::WorkerPanic {
                ra: RaId(0),
                round: 10,
            }],
        );
        assert!(matches!(
            out_of_range,
            Err(EdgeSliceError::InvalidFaultPlan(_))
        ));
    }

    #[test]
    fn zero_panic_rate_consumes_no_randomness() {
        // The panic draw is guarded by `panic_rate > 0.0`, so disabling
        // panics in a chaos config reproduces the stress plan exactly —
        // pre-existing fault schedules are byte-for-byte stable.
        let stress = FaultPlan::generate(&FaultConfig::stress(3, 60, 7));
        let defanged = FaultPlan::generate(&FaultConfig {
            panic_rate: 0.0,
            ..FaultConfig::chaos(3, 60, 7)
        });
        assert_eq!(stress, defanged);
        let chaos = FaultPlan::generate(&FaultConfig::chaos(3, 60, 7));
        assert!(
            chaos
                .events()
                .iter()
                .any(|e| matches!(e, FaultEvent::WorkerPanic { .. })),
            "chaos preset should schedule at least one panic over 180 RA-rounds"
        );
    }

    #[test]
    fn worker_silence_compiles_and_masks_panics() {
        let plan = FaultPlan::scripted(
            2,
            10,
            vec![
                FaultEvent::WorkerSilence {
                    ra: RaId(1),
                    start_round: 2,
                    rounds: 3,
                },
                FaultEvent::WorkerPanic {
                    ra: RaId(1),
                    round: 3,
                },
            ],
        )
        .unwrap();
        let inj = FaultInjector::new(plan);
        assert!(!inj.view(RaId(1), 1).silent);
        for r in 2..5 {
            assert!(inj.view(RaId(1), r).silent);
            assert!(!inj.view(RaId(0), r).silent);
        }
        assert!(!inj.view(RaId(1), 5).silent);
        // A frozen process can't crash: the round-3 panic is masked.
        assert!(!inj.view(RaId(1), 3).panic);
        let zero_len = FaultPlan::scripted(
            2,
            10,
            vec![FaultEvent::WorkerSilence {
                ra: RaId(0),
                start_round: 0,
                rounds: 0,
            }],
        );
        assert!(matches!(zero_len, Err(EdgeSliceError::InvalidFaultPlan(_))));
    }

    #[test]
    fn out_of_horizon_queries_are_healthy() {
        let inj = FaultInjector::none(2, 4);
        assert!(inj.view(RaId(0), 99).is_healthy());
        assert!(inj.view(RaId(9), 0).is_healthy());
    }

    proptest::proptest! {
        /// Same seed ⇒ bit-for-bit identical plan *and* identical compiled
        /// per-(RA, round) views, for arbitrary seeds and system sizes.
        #[test]
        fn same_seed_reproduces_the_fault_stream(
            seed in 0u64..u64::MAX,
            n_ras in 1usize..6,
            horizon in 1usize..40,
        ) {
            let cfg = FaultConfig::stress(n_ras, horizon, seed);
            let a = FaultPlan::generate(&cfg);
            let b = FaultPlan::generate(&cfg);
            proptest::prop_assert_eq!(&a, &b);
            let ia = FaultInjector::new(a);
            let ib = FaultInjector::new(b);
            for round in 0..horizon {
                for j in 0..n_ras {
                    proptest::prop_assert_eq!(
                        ia.view(RaId(j), round),
                        ib.view(RaId(j), round)
                    );
                }
            }
        }
    }
}
