//! Service-level agreements and slice specifications (the SR interface's
//! payload, Sec. V-D).

use edgeslice_netsim::AppProfile;
use serde::{Deserialize, Serialize};

use crate::SliceId;

/// A slice tenant's SLA: the minimum network-wide performance
/// `Umin_i` over a time period `T` (constraint (2) of problem `P0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sla {
    /// Minimum `Σ_{t,j} U_{i,j}^{(t)}` per period.
    pub umin: f64,
}

impl Sla {
    /// Creates an SLA.
    pub fn new(umin: f64) -> Self {
        Self { umin }
    }

    /// The paper's experimental requirement `Umin = −50` (Sec. VII).
    pub fn paper() -> Self {
        Self::new(-50.0)
    }
}

/// Everything a tenant submits through the SR (slice request) interface to
/// instantiate a slice: its identity, application profile, and SLA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceSpec {
    /// The slice's identity.
    pub id: SliceId,
    /// The application the slice carries (drives per-task resource
    /// demands).
    pub app: AppProfile,
    /// The negotiated SLA.
    pub sla: Sla,
}

impl SliceSpec {
    /// Creates a slice specification.
    pub fn new(id: SliceId, app: AppProfile, sla: Sla) -> Self {
        Self { id, app, sla }
    }

    /// The experiments' slice 1: traffic-heavy app, `Umin = −50`.
    pub fn experiment_slice1() -> Self {
        Self::new(SliceId(0), AppProfile::traffic_heavy(), Sla::paper())
    }

    /// The experiments' slice 2: compute-heavy app, `Umin = −50`.
    pub fn experiment_slice2() -> Self {
        Self::new(SliceId(1), AppProfile::compute_heavy(), Sla::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sla_is_minus_fifty() {
        assert_eq!(Sla::paper().umin, -50.0);
    }

    #[test]
    fn experiment_slices_have_opposite_apps() {
        let s1 = SliceSpec::experiment_slice1();
        let s2 = SliceSpec::experiment_slice2();
        assert_ne!(s1.id, s2.id);
        assert!(s1.app.radio_bits() > s2.app.radio_bits());
        assert!(s2.app.compute_gflops() > s1.app.compute_gflops());
    }
}
