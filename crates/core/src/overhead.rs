//! Coordination-overhead accounting.
//!
//! A core argument for EdgeSlice's decentralization (Sec. II) is that a
//! centralized learning agent "needs to obtain network performance data
//! from all the network nodes, which introduces excessive communication
//! overhead and delay", while the coordinator "only exchanges slight
//! coordinating information with orchestration agents". This module makes
//! that claim measurable: it counts the bytes EdgeSlice's control plane
//! exchanges per coordination round and compares them with what an
//! equivalent centralized design would ship.

use serde::{Deserialize, Serialize};

/// Size of one scalar on the wire (f64).
const SCALAR: usize = 8;

/// The control-plane traffic of one coordination round, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTraffic {
    /// Coordinator → agents: the coordinating information `z − y`.
    pub downlink: usize,
    /// Agents → coordinator: the achieved per-period performance.
    pub uplink: usize,
}

impl RoundTraffic {
    /// Total bytes per round.
    pub fn total(&self) -> usize {
        self.downlink + self.uplink
    }
}

/// Communication model of a slicing control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Number of slices `|I|`.
    pub n_slices: usize,
    /// Number of RAs `|J|`.
    pub n_ras: usize,
    /// Number of resources `|K|`.
    pub n_resources: usize,
    /// Time intervals per period `T`.
    pub period: usize,
}

impl OverheadModel {
    /// EdgeSlice (decentralized): per round, each agent receives one scalar
    /// per slice (`z−y`) and sends one scalar per slice (`Σ_t U`); states,
    /// actions and rewards never leave the RA.
    pub fn edgeslice_round(&self) -> RoundTraffic {
        let per_ra = self.n_slices * SCALAR;
        RoundTraffic {
            downlink: per_ra * self.n_ras,
            uplink: per_ra * self.n_ras,
        }
    }

    /// A centralized learner: every interval, each RA ships its full local
    /// state (queue lengths per slice) and performance (per slice) to the
    /// center and receives its resource orchestration (one scalar per
    /// slice×resource) — `T` exchanges per period instead of one.
    pub fn centralized_round(&self) -> RoundTraffic {
        let uplink_per_interval = self.n_ras * (2 * self.n_slices) * SCALAR;
        let downlink_per_interval = self.n_ras * self.n_slices * self.n_resources * SCALAR;
        RoundTraffic {
            downlink: downlink_per_interval * self.period,
            uplink: uplink_per_interval * self.period,
        }
    }

    /// Overhead reduction factor of EdgeSlice vs the centralized design.
    pub fn reduction_factor(&self) -> f64 {
        self.centralized_round().total() as f64 / self.edgeslice_round().total().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OverheadModel {
        OverheadModel {
            n_slices: 5,
            n_ras: 10,
            n_resources: 3,
            period: 24,
        }
    }

    #[test]
    fn edgeslice_round_is_two_scalars_per_slice_ra() {
        let t = model().edgeslice_round();
        assert_eq!(t.downlink, 5 * 10 * 8);
        assert_eq!(t.uplink, 5 * 10 * 8);
        assert_eq!(t.total(), 800);
    }

    #[test]
    fn centralized_ships_every_interval() {
        let t = model().centralized_round();
        // Uplink: 10 RAs × (queues + perf = 10 scalars) × 24 intervals.
        assert_eq!(t.uplink, 10 * 10 * 8 * 24);
        // Downlink: 10 RAs × 15 action scalars × 24 intervals.
        assert_eq!(t.downlink, 10 * 15 * 8 * 24);
    }

    #[test]
    fn decentralization_wins_by_more_than_an_order_of_magnitude() {
        let f = model().reduction_factor();
        assert!(f > 10.0, "reduction factor {f}");
    }

    #[test]
    fn reduction_grows_with_period_length() {
        let short = OverheadModel {
            period: 10,
            ..model()
        }
        .reduction_factor();
        let long = OverheadModel {
            period: 100,
            ..model()
        }
        .reduction_factor();
        assert!(long > short);
    }
}
