//! Identifier newtypes and resource kinds (paper Table I: slices `i ∈ I`,
//! RAs `j ∈ J`, resources `k ∈ K`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A network-slice index `i ∈ I`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SliceId(pub usize);

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice-{}", self.0)
    }
}

/// A resource-autonomy index `j ∈ J`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RaId(pub usize);

impl fmt::Display for RaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ra-{}", self.0)
    }
}

/// The three end-to-end resource kinds `k ∈ K` EdgeSlice orchestrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Radio access network bandwidth (PRBs).
    Radio,
    /// Transport network bandwidth (meters).
    Transport,
    /// Edge computing capacity (CUDA threads).
    Computing,
}

impl ResourceKind {
    /// All kinds in canonical order (matching action-vector layout).
    pub const ALL: [ResourceKind; 3] = [
        ResourceKind::Radio,
        ResourceKind::Transport,
        ResourceKind::Computing,
    ];

    /// Number of resource kinds.
    pub const COUNT: usize = 3;

    /// Position of this kind in the canonical order.
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Radio => 0,
            ResourceKind::Transport => 1,
            ResourceKind::Computing => 2,
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Radio => "radio",
            ResourceKind::Transport => "transport",
            ResourceKind::Computing => "computing",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(SliceId(2).to_string(), "slice-2");
        assert_eq!(RaId(0).to_string(), "ra-0");
        assert_eq!(ResourceKind::Radio.to_string(), "radio");
    }

    #[test]
    fn kind_indices_are_canonical() {
        for (i, k) in ResourceKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(ResourceKind::COUNT, ResourceKind::ALL.len());
    }
}
