//! The orchestration layer's bindings to the [`edgeslice_runtime`]
//! execution engine: one [`RaExecWorker`] per resource autonomy (policy +
//! environment + private RNG stream + fault view + checkpoints) and one
//! [`SystemExecCoordinator`] wrapping the ADMM coordinator and the system
//! monitor.
//!
//! Both the sequential and the threaded schedulers drive exactly this
//! code, so `EdgeSliceSystem::run*` has a single round-loop implementation
//! regardless of topology — and, because every worker owns a
//! domain-separated RNG stream, the two topologies produce bit-identical
//! [`crate::RunReport`]s for the same seed.

use std::time::Duration;

use edgeslice_runtime::{Control, CoordInfo, RaReport, RoundCoordinator, RoundWorker};
use rand::rngs::StdRng;

use crate::{
    project_action_per_resource, FaultInjector, FrozenPolicy, IntervalStatus, MonitorRecord,
    OrchestrationAgent, PerformanceCoordinator, PolicyCheckpoint, RaId, RaSliceEnv, RoundRecord,
    RunReport, SliceId, SliceSpec, SystemMonitor, Taro,
};

/// The policy a worker decides with.
pub(crate) enum WorkerPolicy<'a> {
    /// A trained per-RA DRL agent (decisions only; training never runs
    /// inside a coordination round).
    Learned(&'a OrchestrationAgent),
    /// The TARO proportional baseline.
    Taro(Taro),
}

/// One RA's round outcome, carried in [`RaReport::body`]: the achieved
/// per-slice `Σ_t U`, the end-of-round backlog, and this round's monitor
/// rows (the VR-interface reports, shipped to the central monitor in one
/// batch per round).
pub(crate) struct RaRoundBody {
    /// `Σ_t U_{i,j}` per slice `i` for this RA `j`.
    pub u: Vec<f64>,
    /// End-of-round queue backlog per slice.
    pub load: Vec<f64>,
    /// The round's per-(interval, slice) monitor rows.
    pub records: Vec<MonitorRecord>,
}

/// A per-RA execution worker: everything one resource autonomy needs to
/// run coordination rounds without touching any other RA's state.
pub(crate) struct RaExecWorker<'a> {
    ra: RaId,
    env: &'a mut RaSliceEnv,
    policy: WorkerPolicy<'a>,
    injector: &'a FaultInjector,
    /// This worker's private, domain-separated traffic stream.
    rng: StdRng,
    period: usize,
    n_slices: usize,
    project_actions: bool,
    /// Global round index of this run's round 0 (monitor rounds keep
    /// counting across runs).
    round_base: usize,
    /// Policy snapshot taken at outage start (learned kinds only).
    checkpoint: Option<PolicyCheckpoint>,
    /// Policy restored from the checkpoint at rejoin; decisions after a
    /// rejoin are bit-identical to the pre-outage policy.
    restored: Option<FrozenPolicy>,
    was_down: bool,
    /// Real wall-clock delay applied when this worker straggles, making
    /// the late report physically late on the channel (zero by default so
    /// determinism tests stay instant).
    straggle_sleep: Duration,
}

impl<'a> RaExecWorker<'a> {
    #[allow(clippy::too_many_arguments)] // plain construction-time wiring
    pub(crate) fn new(
        ra: RaId,
        env: &'a mut RaSliceEnv,
        policy: WorkerPolicy<'a>,
        injector: &'a FaultInjector,
        rng: StdRng,
        period: usize,
        project_actions: bool,
        round_base: usize,
        straggle_sleep: Duration,
    ) -> Self {
        let n_slices = env.n_slices();
        Self {
            ra,
            env,
            policy,
            injector,
            rng,
            period,
            n_slices,
            project_actions,
            round_base,
            checkpoint: None,
            restored: None,
            was_down: false,
            straggle_sleep,
        }
    }
}

impl RoundWorker for RaExecWorker<'_> {
    type Body = RaRoundBody;

    fn ra(&self) -> usize {
        self.ra.0
    }

    fn run_round(&mut self, info: &CoordInfo) -> RaReport<RaRoundBody> {
        let round_off = info.round;
        let round = self.round_base + round_off;
        let view = self.injector.view(self.ra, round_off);
        if view.down {
            // Outage start: make-before-break — snapshot the policy the
            // RA will be re-deployed from when it rejoins.
            if !self.was_down {
                self.handle_control(&Control::Checkpoint);
            }
            self.was_down = true;
            return RaReport {
                ra: self.ra.0,
                round: round_off,
                deadline_missed: false,
                body: None,
            };
        }
        if view.rejoining || self.was_down {
            self.handle_control(&Control::Rejoin { round: round_off });
            self.was_down = false;
        }
        self.env.set_capacity_scale(view.capacity_scale);
        if !view.broadcast_dropped {
            self.env.set_coordination(&info.zy);
        }
        let mut u = vec![0.0; self.n_slices];
        let mut records = Vec::with_capacity(self.period * self.n_slices);
        for t in 0..self.period {
            let mut action = match &self.policy {
                WorkerPolicy::Learned(agent) => match &self.restored {
                    Some(policy) => policy.decide(&self.env.observe()),
                    None => agent.decide(&self.env.observe()),
                },
                WorkerPolicy::Taro(taro) => taro.action(&self.env.queue_lengths()),
            };
            if self.project_actions {
                project_action_per_resource(&mut action, self.n_slices);
            }
            let (_, perf) = self.env.advance(&action, &mut self.rng);
            let queues = self.env.queue_lengths();
            let shares = self.env.last_shares();
            for i in 0..self.n_slices {
                u[i] += perf[i];
                records.push(MonitorRecord {
                    round,
                    interval: t,
                    ra: self.ra,
                    slice: SliceId(i),
                    queue: queues[i],
                    performance: perf[i],
                    shares: shares[i].as_array(),
                    status: IntervalStatus::Served,
                });
            }
        }
        if view.straggler && !self.straggle_sleep.is_zero() {
            std::thread::sleep(self.straggle_sleep);
        }
        RaReport {
            ra: self.ra.0,
            round: round_off,
            deadline_missed: view.straggler,
            body: Some(RaRoundBody {
                u,
                load: self.env.queue_lengths(),
                records,
            }),
        }
    }

    fn handle_control(&mut self, ctl: &Control) {
        match ctl {
            Control::Checkpoint => {
                if let WorkerPolicy::Learned(agent) = &self.policy {
                    if self.checkpoint.is_none() {
                        self.checkpoint = Some(PolicyCheckpoint::from_agent(agent));
                    }
                }
            }
            Control::Rejoin { .. } => {
                // The node rebooted: backlog is gone, and the policy is
                // re-deployed from the outage-start checkpoint.
                self.env.clear_queues();
                if let Some(ckpt) = self.checkpoint.take() {
                    self.restored = Some(ckpt.into_frozen_policy(self.ra));
                }
            }
            Control::Shutdown => {}
        }
    }
}

/// The coordinator task: folds per-RA reports into the ADMM update, the
/// monitor database and the [`RunReport`].
pub(crate) struct SystemExecCoordinator<'a> {
    coordinator: &'a mut PerformanceCoordinator,
    monitor: &'a mut SystemMonitor,
    slices: &'a [SliceSpec],
    n_ras: usize,
    period: usize,
    round_base: usize,
    /// The per-round records accumulated so far.
    pub report: RunReport,
}

impl<'a> SystemExecCoordinator<'a> {
    pub(crate) fn new(
        coordinator: &'a mut PerformanceCoordinator,
        monitor: &'a mut SystemMonitor,
        slices: &'a [SliceSpec],
        n_ras: usize,
        period: usize,
        round_base: usize,
    ) -> Self {
        Self {
            coordinator,
            monitor,
            slices,
            n_ras,
            period,
            round_base,
            report: RunReport::default(),
        }
    }
}

impl RoundCoordinator for SystemExecCoordinator<'_> {
    type Body = RaRoundBody;

    fn broadcast(&mut self, _round: usize) -> Vec<Vec<f64>> {
        let info = self.coordinator.coordination_info();
        (0..self.n_ras).map(|j| info.for_ra(RaId(j))).collect()
    }

    fn collect(&mut self, round_off: usize, reports: Vec<Option<RaReport<RaRoundBody>>>) -> bool {
        let round = self.round_base + round_off;
        let n_slices = self.slices.len();
        let mut achieved = vec![vec![0.0; self.n_ras]; n_slices];
        let mut present = vec![true; self.n_ras];
        let mut load = vec![0.0; self.n_ras];
        let mut outages = Vec::new();
        for (j, slot) in reports.into_iter().enumerate() {
            match slot {
                // The report never arrived (wall-clock deadline expiry on
                // a hung worker): the RA is missing this round and its
                // monitor rows are lost with the message.
                None => present[j] = false,
                Some(rep) => match rep.body {
                    // A dark RA: nothing served, explicit outage rows.
                    None => {
                        present[j] = false;
                        outages.push(RaId(j));
                        for t in 0..self.period {
                            for i in 0..n_slices {
                                self.monitor.record(MonitorRecord::outage(
                                    round,
                                    t,
                                    RaId(j),
                                    SliceId(i),
                                ));
                            }
                        }
                    }
                    Some(body) => {
                        for (row, &u) in achieved.iter_mut().zip(&body.u) {
                            row[j] = u;
                        }
                        load[j] = body.load.iter().sum();
                        for record in body.records {
                            self.monitor.record(record);
                        }
                        // Served but reported late: the coordinator treats
                        // the RA as missing (the late report is superseded
                        // by the next one).
                        if rep.deadline_missed {
                            present[j] = false;
                        }
                    }
                },
            }
        }
        let residuals = self.coordinator.update_partial(&achieved, &present);
        let slice_performance: Vec<f64> = achieved.iter().map(|row| row.iter().sum()).collect();
        // Dark intervals are excluded from SLA accounting: the target
        // shrinks with the fraction of (RA, interval) pairs served.
        let served_fraction = self
            .monitor
            .round_served_fraction(round, self.n_ras, self.period);
        let sla_met: Vec<bool> = self
            .slices
            .iter()
            .map(|s| slice_performance[s.id.0] >= s.sla.umin * served_fraction - 1e-9)
            .collect();
        let usage: Vec<[f64; 3]> = (0..n_slices)
            .map(|i| self.monitor.round_usage(round, SliceId(i)))
            .collect();
        self.report.rounds.push(RoundRecord {
            round,
            system_performance: slice_performance.iter().sum(),
            slice_performance,
            usage,
            residuals,
            sla_met,
            outages,
            served_fraction,
            load,
        });
        self.coordinator.converged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worker and every type it owns must be shippable to a worker
    /// thread; this fails to compile if anyone reintroduces non-`Send`
    /// shared state (the `Send` audit, enforced forever).
    #[test]
    fn worker_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<RaSliceEnv>();
        assert_send::<OrchestrationAgent>();
        assert_send::<RaExecWorker<'_>>();
        assert_send::<RaRoundBody>();
        fn assert_sync<T: Sync>() {}
        assert_sync::<FaultInjector>();
        assert_sync::<OrchestrationAgent>();
    }
}
